"""Tests for the bulk word accessor on BitVector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.bitvector import BitVector


class TestWordSlice:
    def test_within_one_word(self):
        bv = BitVector([1, 0, 1, 1, 0, 0, 1]).seal()
        assert bv.word_slice(0, 4) == 0b1101
        assert bv.word_slice(2, 3) == 0b011

    def test_across_word_boundary(self):
        bits = [0] * 60 + [1, 1, 1, 1] + [1, 0, 1, 0]
        bv = BitVector(bits).seal()
        assert bv.word_slice(60, 8) == 0b01011111

    def test_zero_length(self):
        bv = BitVector([1]).seal()
        assert bv.word_slice(0, 0) == 0

    def test_full_256_bit_node(self):
        bits = [(index % 3 == 0) for index in range(512)]
        bv = BitVector(bits).seal()
        value = bv.word_slice(256, 256)
        for offset in range(256):
            assert (value >> offset) & 1 == bits[256 + offset]

    def test_out_of_range(self):
        bv = BitVector([1, 0]).seal()
        with pytest.raises(IndexError):
            bv.word_slice(1, 5)
        with pytest.raises(IndexError):
            bv.word_slice(-1, 1)


@settings(max_examples=50)
@given(st.lists(st.booleans(), min_size=1, max_size=300), st.data())
def test_word_slice_matches_bits(bits, data):
    bv = BitVector(bits).seal()
    start = data.draw(st.integers(min_value=0, max_value=len(bits) - 1))
    length = data.draw(st.integers(min_value=0, max_value=len(bits) - start))
    value = bv.word_slice(start, length)
    for offset in range(length):
        assert (value >> offset) & 1 == bits[start + offset]
    assert value >> length == 0
