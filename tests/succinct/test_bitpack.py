"""Tests for fixed-width bit-packed arrays."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.bitpack import PackedIntArray, bits_required, pack


class TestBitsRequired:
    def test_zero_needs_one_bit(self):
        assert bits_required(0) == 1

    def test_powers_of_two(self):
        assert bits_required(1) == 1
        assert bits_required(2) == 2
        assert bits_required(255) == 8
        assert bits_required(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_required(-1)


class TestPackedIntArray:
    def test_roundtrip(self):
        values = [5, 0, 31, 17]
        packed = PackedIntArray(values)
        assert packed.to_list() == values
        assert len(packed) == 4

    def test_auto_width_is_minimal(self):
        assert PackedIntArray([7]).width == 3
        assert PackedIntArray([8]).width == 4
        assert PackedIntArray([0]).width == 1

    def test_empty(self):
        packed = PackedIntArray([])
        assert len(packed) == 0
        assert packed.to_list() == []
        assert packed.size_bytes() == 0

    def test_explicit_width_enforced(self):
        with pytest.raises(ValueError):
            PackedIntArray([16], width=4)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            PackedIntArray([-1])

    def test_random_access(self):
        values = list(range(100))
        packed = PackedIntArray(values)
        assert packed[0] == 0
        assert packed[50] == 50
        assert packed[-1] == 99

    def test_index_out_of_range(self):
        packed = PackedIntArray([1, 2])
        with pytest.raises(IndexError):
            packed[2]

    def test_equality(self):
        assert PackedIntArray([1, 2, 3]) == PackedIntArray([1, 2, 3])
        assert PackedIntArray([1, 2, 3]) != PackedIntArray([1, 2, 4])
        assert PackedIntArray([1], width=2) != PackedIntArray([1], width=3)

    def test_size_bytes_rounds_up(self):
        # 10 values x 3 bits = 30 bits -> 4 bytes
        assert PackedIntArray([7] * 10).size_bytes() == 4

    def test_size_smaller_than_plain_ints(self):
        values = list(range(1000))
        packed = PackedIntArray(values)
        assert packed.size_bytes() < 8 * len(values)

    def test_pack_helper(self):
        assert pack(v for v in [3, 1, 2]).to_list() == [3, 1, 2]


@settings(max_examples=80)
@given(st.lists(st.integers(min_value=0, max_value=2**48), max_size=200))
def test_roundtrip_property(values):
    packed = PackedIntArray(values)
    assert packed.to_list() == values
    assert list(packed) == values
    for index, value in enumerate(values):
        assert packed[index] == value
