"""Tests for the LZ77-style compressor."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.lz import lz_compress, lz_decompress


class TestRoundtrip:
    def test_empty(self):
        assert lz_decompress(lz_compress(b"")) == b""

    def test_short_literal(self):
        data = b"abc"
        assert lz_decompress(lz_compress(data)) == data

    def test_repetitive_compresses(self):
        data = b"abcdefgh" * 200
        compressed = lz_compress(data)
        assert lz_decompress(compressed) == data
        assert len(compressed) < len(data) / 4

    def test_incompressible_random(self):
        import random

        random.seed(0)
        data = bytes(random.randrange(256) for _ in range(2000))
        compressed = lz_compress(data)
        assert lz_decompress(compressed) == data

    def test_zero_page(self):
        data = b"\x00" * 4096
        compressed = lz_compress(data)
        assert lz_decompress(compressed) == data
        assert len(compressed) < 200

    def test_overlapping_match(self):
        # RLE-style data forces matches that overlap their own output.
        data = b"a" * 1000
        assert lz_decompress(lz_compress(data)) == data

    def test_leaf_page_image_ratio(self):
        # A 70%-occupancy slotted page: sorted 8-byte keys + values + gap.
        page = bytearray()
        for key in range(0, 178):
            page += (10_000_000 + key * 37).to_bytes(8, "little")
            page += (key * 11).to_bytes(8, "little")
        page += b"\x00" * (77 * 16)
        compressed = lz_compress(bytes(page))
        assert lz_decompress(compressed) == bytes(page)
        # The paper reports up to 47% savings on such pages.
        assert len(compressed) < 0.75 * len(page)

    def test_type_error(self):
        with pytest.raises(TypeError):
            lz_compress("not bytes")


class TestMalformedStreams:
    def test_truncated_literal(self):
        with pytest.raises(ValueError):
            lz_decompress(bytes([10]) + b"ab")

    def test_truncated_match(self):
        with pytest.raises(ValueError):
            lz_decompress(bytes([0x80, 0x01]))

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            lz_decompress(bytes([0x00, ord("a"), 0x80, 0xFF, 0x00]))

    def test_zero_distance(self):
        with pytest.raises(ValueError):
            lz_decompress(bytes([0x00, ord("a"), 0x80, 0x00, 0x00]))


@settings(max_examples=60)
@given(st.binary(max_size=4000))
def test_roundtrip_property(data):
    assert lz_decompress(lz_compress(data)) == data


@settings(max_examples=30)
@given(st.binary(min_size=1, max_size=64), st.integers(min_value=1, max_value=100))
def test_repeated_blocks_roundtrip(block, repeats):
    data = block * repeats
    assert lz_decompress(lz_compress(data)) == data
