"""Tests for frame-of-reference encoding."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.for_codec import for_decode, for_encode


class TestForEncode:
    def test_roundtrip_sorted(self):
        values = [100, 105, 110, 250]
        block = for_encode(values)
        assert for_decode(block) == values

    def test_roundtrip_unsorted(self):
        values = [50, 10, 99, 10]
        block = for_encode(values)
        assert for_decode(block) == values

    def test_base_is_minimum(self):
        block = for_encode([7, 3, 9])
        assert block.base == 3

    def test_random_access(self):
        block = for_encode([1000, 1001, 1050])
        assert block[0] == 1000
        assert block[2] == 1050
        assert len(block) == 3

    def test_empty(self):
        block = for_encode([])
        assert len(block) == 0
        assert block.to_list() == []

    def test_single_value(self):
        block = for_encode([42])
        assert block[0] == 42

    def test_negative_values(self):
        values = [-100, -50, -75]
        assert for_decode(for_encode(values)) == values

    def test_size_benefits_from_clustering(self):
        clustered = for_encode(list(range(10**12, 10**12 + 256)))
        spread = for_encode(list(range(0, 256 * 2**40, 2**40)))
        assert clustered.size_bytes() < spread.size_bytes()

    def test_size_includes_base(self):
        block = for_encode([5])
        assert block.size_bytes() >= 8


@settings(max_examples=80)
@given(st.lists(st.integers(min_value=-(2**60), max_value=2**60), max_size=150))
def test_roundtrip_property(values):
    block = for_encode(values)
    assert for_decode(block) == values
    for index, value in enumerate(values):
        assert block[index] == value
