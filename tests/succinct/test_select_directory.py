"""The sampled select directory must agree with a reference select.

``select1``/``select0`` used to binary-search the whole rank directory;
they now bracket the search between two sampled word positions and then
step bytes inside one word.  These tests pin the fast path to a
straightforward reference implementation, including the all-zeros /
all-ones edges where one of the two sample arrays is empty.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.bitvector import SELECT_SAMPLE_RATE, BitVector


def make(bits):
    return BitVector(bits).seal()


def reference_select(bits, wanted, index):
    """Position of the ``index``-th (1-based) occurrence of ``wanted``."""
    seen = 0
    for position, bit in enumerate(bits):
        if bit == wanted:
            seen += 1
            if seen == index:
                return position
    raise AssertionError("reference select out of range")


class TestAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=700))
    def test_select1_matches_reference(self, bits):
        vector = make(bits)
        for index in range(1, vector.ones + 1):
            assert vector.select1(index) == reference_select(bits, 1, index)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=700))
    def test_select0_matches_reference(self, bits):
        vector = make(bits)
        zeros = len(bits) - vector.ones
        for index in range(1, zeros + 1):
            assert vector.select0(index) == reference_select(bits, 0, index)

    def test_large_random_vector_crosses_many_samples(self):
        rng = random.Random(0xC0FFEE)
        bits = [rng.randint(0, 1) for _ in range(8 * SELECT_SAMPLE_RATE)]
        vector = make(bits)
        positions1 = [i for i, bit in enumerate(bits) if bit]
        positions0 = [i for i, bit in enumerate(bits) if not bit]
        for index, expected in enumerate(positions1, start=1):
            assert vector.select1(index) == expected
        for index, expected in enumerate(positions0, start=1):
            assert vector.select0(index) == expected


class TestEdges:
    def test_all_ones(self):
        size = 3 * SELECT_SAMPLE_RATE + 17
        vector = make([1] * size)
        for index in (1, 2, SELECT_SAMPLE_RATE, size):
            assert vector.select1(index) == index - 1
        with pytest.raises(ValueError):
            vector.select0(1)

    def test_all_zeros(self):
        size = 3 * SELECT_SAMPLE_RATE + 17
        vector = make([0] * size)
        for index in (1, 2, SELECT_SAMPLE_RATE, size):
            assert vector.select0(index) == index - 1
        with pytest.raises(ValueError):
            vector.select1(1)

    def test_empty_vector(self):
        vector = make([])
        with pytest.raises(ValueError):
            vector.select1(1)
        with pytest.raises(ValueError):
            vector.select0(1)

    def test_out_of_range(self):
        vector = make([1, 0, 1])
        with pytest.raises(ValueError):
            vector.select1(3)
        with pytest.raises(ValueError):
            vector.select0(2)

    def test_sparse_ones_far_apart(self):
        bits = [0] * 5000
        for position in (0, 63, 64, 1000, 4095, 4999):
            bits[position] = 1
        vector = make(bits)
        expected = [i for i, bit in enumerate(bits) if bit]
        for index, position in enumerate(expected, start=1):
            assert vector.select1(index) == position

    def test_rank_select_inverse(self):
        rng = random.Random(7)
        bits = [rng.randint(0, 1) for _ in range(2000)]
        vector = make(bits)
        for index in range(1, vector.ones + 1):
            assert vector.rank1(vector.select1(index) + 1) == index
