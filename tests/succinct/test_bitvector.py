"""Tests for the rank/select bitvector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.succinct.bitvector import BitVector


def make(bits):
    return BitVector(bits).seal()


class TestConstruction:
    def test_empty(self):
        bv = make([])
        assert len(bv) == 0
        assert bv.ones == 0

    def test_append_and_index(self):
        bv = BitVector()
        bv.append(1)
        bv.append(0)
        bv.append(1)
        bv.seal()
        assert [bv[0], bv[1], bv[2]] == [1, 0, 1]

    def test_negative_index(self):
        bv = make([1, 0, 0, 1])
        assert bv[-1] == 1
        assert bv[-4] == 1

    def test_out_of_range_index(self):
        bv = make([1, 0])
        with pytest.raises(IndexError):
            bv[2]

    def test_append_after_seal_raises(self):
        bv = make([1])
        with pytest.raises(ValueError):
            bv.append(1)

    def test_seal_idempotent(self):
        bv = make([1, 0])
        assert bv.seal() is bv

    def test_extend(self):
        bv = BitVector()
        bv.extend([1, 1, 0])
        bv.seal()
        assert list(bv) == [1, 1, 0]

    def test_query_before_seal_raises(self):
        bv = BitVector([1, 0])
        with pytest.raises(ValueError):
            bv.rank1(1)

    def test_truthy_bits(self):
        bv = make(["x", "", None, 7])
        assert list(bv) == [1, 0, 0, 1]


class TestRank:
    def test_rank1_exclusive(self):
        bv = make([1, 0, 1, 1])
        assert bv.rank1(0) == 0
        assert bv.rank1(1) == 1
        assert bv.rank1(2) == 1
        assert bv.rank1(4) == 3

    def test_rank0(self):
        bv = make([1, 0, 1, 0, 0])
        assert bv.rank0(5) == 3
        assert bv.rank0(1) == 0

    def test_rank_end_equals_total(self):
        bits = [1, 0] * 100
        bv = make(bits)
        assert bv.rank1(len(bits)) == 100

    def test_rank_out_of_range(self):
        bv = make([1])
        with pytest.raises(IndexError):
            bv.rank1(2)

    def test_rank_across_word_boundaries(self):
        bits = [1] * 65 + [0] * 65 + [1] * 10
        bv = make(bits)
        assert bv.rank1(64) == 64
        assert bv.rank1(65) == 65
        assert bv.rank1(130) == 65
        assert bv.rank1(140) == 75


class TestSelect:
    def test_select1_basic(self):
        bv = make([0, 1, 0, 1, 1])
        assert bv.select1(1) == 1
        assert bv.select1(2) == 3
        assert bv.select1(3) == 4

    def test_select0_basic(self):
        bv = make([1, 0, 0, 1, 0])
        assert bv.select0(1) == 1
        assert bv.select0(2) == 2
        assert bv.select0(3) == 4

    def test_select1_out_of_range(self):
        bv = make([1, 0])
        with pytest.raises(ValueError):
            bv.select1(2)
        with pytest.raises(ValueError):
            bv.select1(0)

    def test_select0_out_of_range(self):
        bv = make([1, 1])
        with pytest.raises(ValueError):
            bv.select0(1)

    def test_select_across_words(self):
        bits = [0] * 100 + [1] + [0] * 100 + [1]
        bv = make(bits)
        assert bv.select1(1) == 100
        assert bv.select1(2) == 201


class TestSizeAccounting:
    def test_size_includes_directory_after_seal(self):
        open_bv = BitVector([1] * 128)
        open_size = open_bv.size_bytes()
        sealed_size = open_bv.seal().size_bytes()
        assert sealed_size > open_size

    def test_size_grows_with_bits(self):
        small = make([1] * 64)
        large = make([1] * 640)
        assert large.size_bytes() > small.size_bytes()


@settings(max_examples=60)
@given(st.lists(st.booleans(), max_size=400))
def test_rank_select_agree_with_naive(bits):
    bv = make(bits)
    ones_positions = [index for index, bit in enumerate(bits) if bit]
    zero_positions = [index for index, bit in enumerate(bits) if not bit]
    for index in range(len(bits) + 1):
        assert bv.rank1(index) == sum(bits[:index])
        assert bv.rank0(index) == index - sum(bits[:index])
    for count, position in enumerate(ones_positions, start=1):
        assert bv.select1(count) == position
    for count, position in enumerate(zero_positions, start=1):
        assert bv.select0(count) == position


@settings(max_examples=40)
@given(st.lists(st.booleans(), min_size=1, max_size=300))
def test_select_is_inverse_of_rank(bits):
    bv = make(bits)
    for count in range(1, bv.ones + 1):
        position = bv.select1(count)
        assert bv.rank1(position + 1) == count
        assert bv[position] == 1
