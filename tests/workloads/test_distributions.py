"""Tests for the key-selection distributions."""

import numpy as np
import pytest

from repro.workloads.distributions import (
    indices_for,
    lognormal_indices,
    normal_indices,
    uniform_indices,
    zipf_cdf,
    zipf_indices,
)


class TestZipf:
    def test_indices_in_range(self):
        indices = zipf_indices(1000, 5000, alpha=1.0, rng=0)
        assert indices.min() >= 0
        assert indices.max() < 1000

    def test_rank_contiguous_hot_head(self):
        indices = zipf_indices(10_000, 50_000, alpha=1.0, rng=0)
        head_share = np.mean(indices < 100)
        assert head_share > 0.4  # the hot head is the low ranks

    def test_higher_alpha_more_skew(self):
        mild = zipf_indices(10_000, 30_000, alpha=0.5, rng=0)
        sharp = zipf_indices(10_000, 30_000, alpha=1.5, rng=0)
        assert np.mean(sharp < 10) > np.mean(mild < 10)

    def test_alpha_zero_is_uniform(self):
        indices = zipf_indices(1000, 50_000, alpha=0.0, rng=0)
        head_share = np.mean(indices < 100)
        assert 0.07 < head_share < 0.13

    def test_permute_scatters_hot_set(self):
        plain = zipf_indices(10_000, 20_000, alpha=1.2, rng=0, permute=False)
        permuted = zipf_indices(10_000, 20_000, alpha=1.2, rng=0, permute=True)
        assert np.mean(plain < 100) > 0.4
        assert np.mean(permuted < 100) < 0.1

    def test_cdf_normalized(self):
        cdf = zipf_cdf(100, 1.0)
        assert cdf[-1] == pytest.approx(1.0)
        assert np.all(np.diff(cdf) > 0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            zipf_cdf(0, 1.0)
        with pytest.raises(ValueError):
            zipf_cdf(10, -1.0)


class TestNormal:
    def test_centered_band(self):
        indices = normal_indices(10_000, 30_000, rng=0)
        assert 4500 < np.median(indices) < 5500
        # sigma = 3% -> nearly everything within +-4 sigma of the center.
        assert np.mean(np.abs(indices - 5000) < 1200) > 0.99

    def test_clipped_to_range(self):
        indices = normal_indices(100, 10_000, mu=0.0, sigma=0.5, rng=0)
        assert indices.min() >= 0
        assert indices.max() <= 99


class TestLognormal:
    def test_concentrated_band(self):
        indices = lognormal_indices(10_000, 30_000, rng=0)
        low, high = np.percentile(indices, [1, 99])
        # A narrow band compared to uniform's ~9800 (Figure 11's steep CDF).
        assert (high - low) < 4000

    def test_sigma_controls_width(self):
        narrow = lognormal_indices(10_000, 30_000, sigma=0.002, rng=0)
        wide = lognormal_indices(10_000, 30_000, sigma=0.2, rng=0)
        assert narrow.std() < wide.std()

    def test_in_range(self):
        indices = lognormal_indices(50, 10_000, sigma=1.0, rng=0)
        assert indices.min() >= 0
        assert indices.max() <= 49


class TestUniform:
    def test_covers_range(self):
        indices = uniform_indices(100, 20_000, rng=0)
        assert set(np.unique(indices)) == set(range(100))


class TestDispatch:
    def test_indices_for_names(self):
        for name in ("zipf", "normal", "lognormal", "uniform"):
            indices = indices_for(name, 500, 100, rng=0)
            assert len(indices) == 100

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            indices_for("pareto", 10, 10)

    def test_params_forwarded(self):
        indices = indices_for("zipf", 1000, 5000, rng=0, alpha=1.5)
        assert np.mean(indices < 10) > 0.3

    def test_seeded_reproducibility(self):
        a = indices_for("zipf", 1000, 100, rng=42)
        b = indices_for("zipf", 1000, 100, rng=42)
        assert np.array_equal(a, b)


class TestHotspot:
    def test_hot_set_receives_hot_probability_mass(self):
        from repro.workloads.distributions import hotspot_indices

        indices = hotspot_indices(10_000, 50_000, rng=0)
        hot_share = np.mean(indices < 100)
        assert 0.85 < hot_share < 0.95

    def test_cold_accesses_outside_hot_set(self):
        from repro.workloads.distributions import hotspot_indices

        indices = hotspot_indices(10_000, 50_000, rng=0)
        cold = indices[indices >= 100]
        assert len(cold) > 0
        assert cold.max() < 10_000

    def test_parameters_validated(self):
        from repro.workloads.distributions import hotspot_indices

        with pytest.raises(ValueError):
            hotspot_indices(100, 10, hot_fraction=0.0)
        with pytest.raises(ValueError):
            hotspot_indices(100, 10, hot_probability=1.5)

    def test_dispatch(self):
        indices = indices_for("hotspot", 1000, 5000, rng=0, hot_fraction=0.05)
        assert np.mean(indices < 50) > 0.8
