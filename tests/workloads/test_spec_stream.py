"""Tests for workload specs (Table 3) and operation-stream generation."""

import numpy as np
import pytest

from repro.workloads.datasets import prefix_random_keys
from repro.workloads.spec import (
    OpKind,
    OpMix,
    PhaseSpec,
    w1_sequence,
    w2,
    w3,
    w4,
    w5_sequence,
    w11,
    w12,
    w13,
    w51,
    w61,
    w62,
)
from repro.workloads.stream import Operation, generate_operations, generate_phase


class TestSpecs:
    def test_table3_mixes(self):
        spec = w11()
        mix = {entry.kind: entry.fraction for entry in spec.phases[0].mix}
        assert mix == {OpKind.READ: 0.49, OpKind.SCAN: 0.49, OpKind.INSERT: 0.02}

        spec = w4()
        mix = {entry.kind: entry.fraction for entry in spec.phases[0].mix}
        assert mix == {OpKind.READ: 0.75, OpKind.SCAN: 0.25}
        assert spec.phases[0].scan_length == (100, 250)

        spec = w51()
        mix = {entry.kind: entry.fraction for entry in spec.phases[0].mix}
        assert mix[OpKind.INSERT] == 0.80

        assert all(
            entry.kind is OpKind.SCAN for entry in w62().phases[0].mix
        )

    def test_distributions_per_table3(self):
        assert w12().phases[0].mix[0].distribution == "normal"
        assert w13().phases[0].mix[0].distribution == "lognormal"
        assert w2().phases[0].mix[0].distribution == "uniform"
        assert w3().phases[0].mix[0].distribution == "prefix"

    def test_sequences(self):
        spec = w1_sequence(num_ops=100)
        assert len(spec.phases) == 3
        assert spec.total_ops == 300
        assert len(w5_sequence(num_ops=10).phases) == 2

    def test_scaled(self):
        spec = w11().scaled(123)
        assert all(phase.num_ops == 123 for phase in spec.phases)

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PhaseSpec("bad", 10, (OpMix(OpKind.READ, 0.5, "uniform"),))

    def test_w61_alpha_param(self):
        spec = w61(alpha=1.4)
        assert dict(spec.phases[0].mix[0].params)["alpha"] == 1.4


class TestGeneratePhase:
    def test_operation_counts_and_kinds(self):
        keys = np.arange(1000) * 10
        operations = generate_phase(keys, w11(num_ops=5000).phases[0], rng=0)
        assert len(operations) == 5000
        kinds = {}
        for op in operations:
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
        assert abs(kinds[OpKind.READ] / 5000 - 0.49) < 0.03
        assert abs(kinds[OpKind.SCAN] / 5000 - 0.49) < 0.03
        assert 0.005 < kinds[OpKind.INSERT] / 5000 < 0.04

    def test_reads_use_existing_keys(self):
        keys = np.arange(100) * 7
        operations = generate_phase(keys, w61(num_ops=500).phases[0], rng=0)
        key_set = set(keys.tolist())
        assert all(op.key in key_set for op in operations)

    def test_inserts_are_new_nearby_keys(self):
        keys = np.arange(0, 10_000_000, 100_000)
        operations = generate_phase(keys, w51(num_ops=2000).phases[0], rng=0)
        inserts = [op for op in operations if op.kind is OpKind.INSERT]
        assert inserts
        key_set = set(keys.tolist())
        for op in inserts:
            # New keys sit in the offset window just above an existing key.
            assert op.key not in key_set
            base = (op.key // 100_000) * 100_000
            assert 0 < op.key - base <= 4096

    def test_scan_lengths_in_bounds(self):
        keys = np.arange(500)
        operations = generate_phase(keys, w62(num_ops=1000).phases[0], rng=0)
        lengths = [op.scan_length for op in operations if op.kind is OpKind.SCAN]
        assert min(lengths) >= 10
        assert max(lengths) <= 50

    def test_empty_keys_rejected(self):
        with pytest.raises(ValueError):
            generate_phase(np.array([], dtype=np.int64), w61(num_ops=10).phases[0])

    def test_reproducible_with_seed(self):
        keys = np.arange(100)
        a = generate_phase(keys, w61(num_ops=200).phases[0], rng=5)
        b = generate_phase(keys, w61(num_ops=200).phases[0], rng=5)
        assert a == b


class TestPrefixWorkload:
    def test_phases_have_different_hot_ranges(self):
        keys = prefix_random_keys(20_000, num_prefixes=64, rng=0)
        spec = w3(num_ops=5000, num_phases=2)
        phase0 = generate_phase(keys, spec.phases[0], rng=1, phase_index=0)
        phase1 = generate_phase(keys, spec.phases[1], rng=1, phase_index=1)

        def hot_buckets(operations):
            ranks = np.searchsorted(keys, [op.key for op in operations])
            buckets = ranks // (len(keys) // 32 + 1)
            unique, counts = np.unique(buckets, return_counts=True)
            return set(unique[counts > len(operations) / 16].tolist())

        hot0 = hot_buckets(phase0)
        hot1 = hot_buckets(phase1)
        assert hot0 and hot1
        assert hot0 != hot1

    def test_prefix_ops_use_existing_keys(self):
        keys = prefix_random_keys(5000, rng=0)
        operations = generate_phase(keys, w3(num_ops=1000).phases[0], rng=2)
        key_set = set(keys.tolist())
        assert all(op.key in key_set for op in operations)

    def test_prefix_hot_set_is_concentrated(self):
        keys = prefix_random_keys(20_000, num_prefixes=64, rng=0)
        operations = generate_phase(keys, w3(num_ops=5000).phases[0], rng=3)
        distinct = len({op.key for op in operations})
        # 10% of 64 ranges are hot -> far fewer distinct keys than ops.
        assert distinct < 20_000 * 0.25


class TestGenerateOperations:
    def test_yields_per_phase(self):
        keys = np.arange(200)
        phases = list(generate_operations(keys, w1_sequence(num_ops=100), rng=0))
        assert len(phases) == 3
        assert all(len(operations) == 100 for operations in phases)

    def test_operation_is_frozen(self):
        op = Operation(OpKind.READ, 5)
        with pytest.raises(Exception):
            op.key = 6
