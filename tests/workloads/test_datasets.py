"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.workloads.datasets import (
    consecutive_keys,
    email_keys,
    key_prefix,
    osm_like_keys,
    prefix_random_keys,
    prefix_suffix_bits,
    ycsb_keys,
)


class TestOsmLikeKeys:
    def test_sorted_unique_exact_count(self):
        keys = osm_like_keys(5000, rng=0)
        assert len(keys) == 5000
        assert np.all(np.diff(keys) > 0)

    def test_clustered_structure(self):
        keys = osm_like_keys(10_000, rng=0)
        gaps = np.diff(keys)
        # Clustered data: most gaps tiny, a few huge (cluster boundaries).
        assert np.median(gaps) < np.mean(gaps) / 10

    def test_reproducible(self):
        assert np.array_equal(osm_like_keys(1000, rng=7), osm_like_keys(1000, rng=7))


class TestConsecutiveKeys:
    def test_dense_range(self):
        keys = consecutive_keys(100, start=5)
        assert keys[0] == 5
        assert keys[-1] == 104
        assert len(keys) == 100


class TestYcsbKeys:
    def test_sorted_unique(self):
        keys = ycsb_keys(3000, rng=0)
        assert len(keys) == 3000
        assert np.all(np.diff(keys) > 0)


class TestPrefixRandomKeys:
    def test_limited_prefix_count(self):
        keys = prefix_random_keys(5000, num_prefixes=32, rng=0)
        bits = prefix_suffix_bits(5000, 32)
        prefixes = {key_prefix(int(key), bits) for key in keys}
        assert len(prefixes) <= 32

    def test_suffix_bits_scale_with_density(self):
        small = prefix_suffix_bits(1000, 64)
        large = prefix_suffix_bits(1_000_000, 64)
        assert large > small

    def test_explicit_suffix_bits(self):
        keys = prefix_random_keys(2000, num_prefixes=16, suffix_bits=12, rng=0)
        prefixes = {int(key) >> 12 for key in keys}
        assert len(prefixes) <= 16

    def test_sorted_unique(self):
        keys = prefix_random_keys(2000, rng=0)
        assert np.all(np.diff(keys) > 0)


class TestEmailKeys:
    def test_count_and_sorted(self):
        emails = email_keys(500, rng=0)
        assert len(emails) == 500
        assert emails == sorted(emails)
        assert len(set(emails)) == 500

    def test_host_reversed_shape(self):
        emails = email_keys(200, rng=0)
        for email in emails[:20]:
            text = email.decode("ascii")
            host, _, local = text.partition("@")
            assert host.count(".") >= 1
            assert local

    def test_average_length_near_paper(self):
        emails = email_keys(500, rng=0)
        average = sum(len(email) for email in emails) / len(emails)
        assert 15 < average < 30  # paper: average 22 bytes

    def test_zipf_domain_popularity(self):
        emails = email_keys(2000, rng=0)
        domains = {}
        for email in emails:
            host = email.split(b"@")[0]
            domains[host] = domains.get(host, 0) + 1
        counts = sorted(domains.values(), reverse=True)
        assert counts[0] > 5 * counts[len(counts) // 2]


class TestGuards:
    def test_generator_shortfall_raises(self):
        with pytest.raises(ValueError):
            # 12-bit suffix space with 1 prefix cannot produce 100k keys.
            prefix_random_keys(100_000, num_prefixes=1, suffix_bits=12, rng=0)
