"""Guardrails for the top-level public API."""

import importlib

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_headline_classes_present(self):
        assert repro.AdaptiveBPlusTree is not None
        assert repro.HybridTrie is not None
        assert repro.AdaptationManager is not None
        assert repro.MemoryBudget is not None


class TestSubpackageExports:
    def test_every_subpackage_all_resolves(self):
        for module_name in (
            "repro.core",
            "repro.succinct",
            "repro.bptree",
            "repro.art",
            "repro.fst",
            "repro.hybridtrie",
            "repro.dualstage",
            "repro.workloads",
            "repro.sim",
            "repro.harness",
            "repro.hashmap",
            "repro.obs",
            "repro.service",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert getattr(module, name, None) is not None, (module_name, name)

    def test_quickstart_docstring_example_works(self):
        from repro import AdaptiveBPlusTree, MemoryBudget

        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            [(key, key * 2) for key in range(2_000)],
            budget=MemoryBudget.absolute(2_000_000),
        )
        assert tree.lookup(42) == 84
        assert tree.manager.events is not None
