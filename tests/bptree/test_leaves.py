"""Tests for the three leaf encodings and the stable leaf wrapper."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bptree.leaves import (
    GappedStorage,
    LeafEncoding,
    LeafNode,
    PackedStorage,
    SuccinctStorage,
)

ENCODINGS = list(LeafEncoding)
STORAGES = [GappedStorage, PackedStorage, SuccinctStorage]


def pairs_of(*keys):
    return [(key, key * 10) for key in keys]


@pytest.fixture(params=STORAGES, ids=lambda cls: cls.encoding.value)
def storage_class(request):
    return request.param


class TestStorageCommon:
    def test_lookup_hit_and_miss(self, storage_class):
        storage = storage_class(pairs_of(1, 5, 9), capacity=8)
        assert storage.lookup(5) == 50
        assert storage.lookup(4) is None

    def test_insert_new(self, storage_class):
        storage = storage_class(pairs_of(1, 9), capacity=8)
        assert storage.insert(5, 55)
        assert storage.lookup(5) == 55
        assert storage.to_pairs() == [(1, 10), (5, 55), (9, 90)]

    def test_insert_overwrites(self, storage_class):
        storage = storage_class(pairs_of(1, 5), capacity=8)
        assert storage.insert(5, 99)
        assert storage.lookup(5) == 99
        assert storage.num_entries() == 2

    def test_insert_full_returns_false(self, storage_class):
        storage = storage_class(pairs_of(1, 2, 3), capacity=3)
        assert not storage.insert(4, 40)
        assert storage.num_entries() == 3

    def test_update(self, storage_class):
        storage = storage_class(pairs_of(1, 5), capacity=8)
        assert storage.update(1, 111)
        assert storage.lookup(1) == 111
        assert not storage.update(7, 70)

    def test_delete(self, storage_class):
        storage = storage_class(pairs_of(1, 5, 9), capacity=8)
        assert storage.delete(5)
        assert storage.lookup(5) is None
        assert storage.num_entries() == 2
        assert not storage.delete(5)

    def test_min_max(self, storage_class):
        storage = storage_class(pairs_of(3, 7, 11), capacity=8)
        assert storage.min_key() == 3
        assert storage.max_key() == 11

    def test_empty(self, storage_class):
        storage = storage_class([], capacity=8)
        assert storage.num_entries() == 0
        assert storage.min_key() is None
        assert storage.max_key() is None
        assert storage.lookup(1) is None

    def test_entries_from(self, storage_class):
        storage = storage_class(pairs_of(2, 4, 6, 8), capacity=8)
        assert list(storage.entries_from(4)) == [(4, 40), (6, 60), (8, 80)]
        assert list(storage.entries_from(5)) == [(6, 60), (8, 80)]
        assert list(storage.entries_from(99)) == []

    def test_rejects_unsorted(self, storage_class):
        with pytest.raises(ValueError):
            storage_class([(5, 1), (1, 2)], capacity=8)

    def test_rejects_overflow(self, storage_class):
        with pytest.raises(ValueError):
            storage_class(pairs_of(1, 2, 3), capacity=2)


class TestSizeModel:
    def test_gapped_size_fixed(self):
        small = GappedStorage(pairs_of(1), capacity=255)
        large = GappedStorage(pairs_of(*range(1, 200)), capacity=255)
        assert small.size_bytes() == large.size_bytes() == 16 + 255 * 16

    def test_packed_size_tracks_entries(self):
        storage = PackedStorage(pairs_of(*range(1, 101)), capacity=255)
        assert storage.size_bytes() == 16 + 100 * 16

    def test_succinct_smaller_on_clustered_keys(self):
        pairs = [(10**12 + i, i) for i in range(178)]
        succinct = SuccinctStorage(pairs, capacity=255)
        packed = PackedStorage(pairs, capacity=255)
        gapped = GappedStorage(pairs, capacity=255)
        assert succinct.size_bytes() < packed.size_bytes() < gapped.size_bytes()
        # The paper's Table 1 reports ~73% savings vs gapped.
        assert succinct.size_bytes() < 0.4 * gapped.size_bytes()

    def test_succinct_blockwise_outlier_isolation(self):
        clustered = [(1000 + i, i) for i in range(64)]
        with_outlier = clustered[:-1] + [(2**60, 63)]
        a = SuccinctStorage(clustered, capacity=255).size_bytes()
        b = SuccinctStorage(sorted(with_outlier), capacity=255).size_bytes()
        # One outlier inflates only its own block, not the whole leaf:
        # a whole-leaf FOR frame would put 60-bit deltas on all 64 keys.
        whole_leaf_floor = 64 * 60 // 8
        assert b < 4 * a
        assert b < whole_leaf_floor + a

    def test_succinct_tracks_rebuilds(self):
        storage = SuccinctStorage(pairs_of(1, 5), capacity=8)
        storage.insert(3, 30)
        storage.delete(1)
        assert storage.rebuilds == 2


class TestLeafNode:
    def test_identity_stable_across_migration(self):
        leaf = LeafNode(pairs_of(1, 2, 3), LeafEncoding.SUCCINCT, capacity=8)
        original_hash = hash(leaf)
        assert leaf.migrate_to(LeafEncoding.GAPPED)
        assert hash(leaf) == original_hash
        assert leaf.encoding is LeafEncoding.GAPPED
        assert leaf.to_pairs() == pairs_of(1, 2, 3)

    def test_migrate_to_same_encoding_noop(self):
        leaf = LeafNode(pairs_of(1), LeafEncoding.PACKED, capacity=8)
        assert not leaf.migrate_to(LeafEncoding.PACKED)

    def test_equality_is_identity(self):
        a = LeafNode(pairs_of(1), LeafEncoding.GAPPED, capacity=8)
        b = LeafNode(pairs_of(1), LeafEncoding.GAPPED, capacity=8)
        assert a == a
        assert a != b

    def test_delegation(self):
        leaf = LeafNode(pairs_of(1, 5), LeafEncoding.PACKED, capacity=8)
        assert leaf.lookup(5) == 50
        leaf.insert(3, 33)
        assert leaf.num_entries() == 3
        assert leaf.min_key() == 1
        assert leaf.max_key() == 5

    def test_next_leaf_chain(self):
        a = LeafNode(pairs_of(1), LeafEncoding.GAPPED, capacity=8)
        b = LeafNode(pairs_of(2), LeafEncoding.GAPPED, capacity=8)
        a.next_leaf = b
        assert a.next_leaf is b
        assert b.next_leaf is None


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=2**48), unique=True, max_size=60),
    st.sampled_from(ENCODINGS),
)
def test_all_encodings_agree(keys, encoding):
    keys = sorted(keys)
    pairs = [(key, key ^ 0xABC) for key in keys]
    leaf = LeafNode(pairs, encoding, capacity=128)
    reference = dict(pairs)
    for key in keys:
        assert leaf.lookup(key) == reference[key]
    assert leaf.to_pairs() == pairs


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(st.sampled_from(["insert", "delete", "update"]), st.integers(0, 50)),
        max_size=40,
    )
)
def test_succinct_matches_dict_semantics(operations):
    storage = SuccinctStorage([], capacity=128)
    reference = {}
    for action, key in operations:
        if action == "insert":
            storage.insert(key, key + 1)
            reference[key] = key + 1
        elif action == "delete":
            assert storage.delete(key) == (key in reference)
            reference.pop(key, None)
        else:
            assert storage.update(key, key * 7) == (key in reference)
            if key in reference:
                reference[key] = key * 7
    assert storage.to_pairs() == sorted(reference.items())
