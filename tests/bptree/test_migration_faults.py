"""A fault at every injection point of a leaf migration must be harmless.

The pattern: an observer injector first enumerates the injection points
one migration crosses; the tests then re-run the migration with a fault
armed at each point in turn and prove — via the invariant validator and
a full key-set diff against a dict oracle — that the tree is exactly as
it was before the attempt.
"""

import pytest

from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.migrate import migrate_leaf
from repro.bptree.tree import BPlusTree
from repro.core.invariants import violations_of
from repro.faults import FaultInjector, InjectedFault

PAIRS = [(key, key * 11 + 5) for key in range(400)]


def make_tree(encoding=LeafEncoding.SUCCINCT):
    return BPlusTree.bulk_load(PAIRS, encoding, leaf_capacity=32)


def enumerate_sites(target=LeafEncoding.GAPPED):
    """Observer mode: which injection points does one migration cross?"""
    tree = make_tree()
    leaf = next(iter(tree.leaves()))
    with FaultInjector() as observer:
        assert migrate_leaf(leaf, target)
    return observer.sites_seen()


MIGRATION_SITES = enumerate_sites()


def test_migration_crosses_the_expected_sites():
    assert MIGRATION_SITES == {
        "bptree.migrate.read": 1,
        "bptree.migrate.encode": 1,
        "bptree.migrate.swap": 1,
    }


class TestFaultAtEveryPoint:
    @pytest.mark.parametrize("fail_at", range(1, sum(MIGRATION_SITES.values()) + 1))
    @pytest.mark.parametrize(
        "target", [LeafEncoding.GAPPED, LeafEncoding.PACKED], ids=str
    )
    def test_faulted_migration_leaves_tree_intact(self, fail_at, target):
        tree = make_tree()
        leaf = next(iter(tree.leaves()))
        pairs_before = leaf.to_pairs()
        with FaultInjector(fail_at=fail_at) as injector, pytest.raises(InjectedFault):
            migrate_leaf(leaf, target)
        assert injector.failures_injected == 1
        assert leaf.encoding is LeafEncoding.SUCCINCT  # swap never happened
        assert leaf.to_pairs() == pairs_before
        assert violations_of(tree) == []
        assert list(tree.items()) == PAIRS

    @pytest.mark.parametrize("fail_at", range(1, sum(MIGRATION_SITES.values()) + 1))
    def test_migration_succeeds_after_the_fault_clears(self, fail_at):
        tree = make_tree()
        leaf = next(iter(tree.leaves()))
        with FaultInjector(fail_at=fail_at), pytest.raises(InjectedFault):
            migrate_leaf(leaf, LeafEncoding.GAPPED)
        before = leaf.size_bytes()
        assert migrate_leaf(leaf, LeafEncoding.GAPPED)  # no injector now
        tree.note_leaf_resized(leaf.size_bytes() - before)
        assert leaf.encoding is LeafEncoding.GAPPED
        assert violations_of(tree) == []
        assert list(tree.items()) == PAIRS


class TestAdaptiveTreeUnderFaults:
    def test_eager_expansion_fault_does_not_break_insert(self):
        tree = AdaptiveBPlusTree.bulk_load_adaptive(PAIRS, leaf_capacity=32)
        oracle = dict(PAIRS)
        with FaultInjector(site="bptree.migrate.*", rate=1.0):
            for key in range(1000, 1100):
                assert tree.insert(key, key)
                oracle[key] = key
        assert violations_of(tree) == []
        assert dict(tree.items()) == oracle
        assert tree.counters.get("eager_expansion_failed:succinct") > 0

    def test_byte_accounting_survives_faulted_migrations(self):
        tree = make_tree()
        for fail_at in (1, 2, 3):
            leaf = list(tree.leaves())[fail_at]
            with FaultInjector(fail_at=fail_at), pytest.raises(InjectedFault):
                migrate_leaf(leaf, LeafEncoding.GAPPED)
        # _leaf_bytes is checked against a recount inside violations_of.
        assert violations_of(tree) == []
