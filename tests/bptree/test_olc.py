"""Tests for Optimistic Lock Coupling (Section 4.1.5)."""

import random
import threading

import pytest

from repro.bptree.leaves import LeafEncoding
from repro.bptree.olc import OlcBPlusTree, OlcRestart, VersionedLock


class TestVersionedLock:
    def test_read_version_even_when_free(self):
        lock = VersionedLock()
        assert lock.read_version() == 0
        assert not lock.locked

    def test_read_version_restarts_while_locked(self):
        lock = VersionedLock()
        lock.write_lock()
        with pytest.raises(OlcRestart):
            lock.read_version()
        lock.write_unlock()
        assert lock.read_version() == 2

    def test_validate_detects_writer(self):
        lock = VersionedLock()
        version = lock.read_version()
        lock.write_lock()
        lock.write_unlock()
        with pytest.raises(OlcRestart):
            lock.validate(version)

    def test_upgrade_success_and_stale(self):
        lock = VersionedLock()
        version = lock.read_version()
        lock.upgrade(version)
        assert lock.locked
        lock.write_unlock()
        with pytest.raises(OlcRestart):
            lock.upgrade(version)  # version moved on

    def test_upgrade_fails_when_held(self):
        lock = VersionedLock()
        version = lock.read_version()
        lock.write_lock()
        with pytest.raises(OlcRestart):
            lock.upgrade(version)
        lock.write_unlock()


class TestSingleThreadedSemantics:
    """OLC must behave exactly like the plain tree without concurrency."""

    def test_insert_lookup_delete(self):
        tree = OlcBPlusTree(LeafEncoding.GAPPED, leaf_capacity=8)
        rng = random.Random(0)
        data = rng.sample(range(10**6), 1200)
        for key in data:
            assert tree.insert(key, key + 1)
        tree.check_invariants()
        for key in data:
            assert tree.lookup(key) == key + 1
        for key in data[:600]:
            assert tree.delete(key)
        tree.check_invariants()
        assert len(tree) == 600

    def test_update(self):
        tree = OlcBPlusTree(leaf_capacity=8)
        tree.insert(1, 1)
        assert tree.update(1, 99)
        assert tree.lookup(1) == 99
        assert not tree.update(2, 0)

    def test_scan(self):
        tree = OlcBPlusTree(leaf_capacity=8)
        for key in range(200):
            tree.insert(key, key)
        assert tree.scan(50, 10) == [(key, key) for key in range(50, 60)]
        assert tree.scan(500, 5) == []

    def test_bulk_load_then_olc_ops(self):
        pairs = [(key, key) for key in range(500)]
        tree = OlcBPlusTree(leaf_capacity=16)
        tree._bulk_load_into(pairs, 0.7)
        assert tree.lookup(123) == 123
        tree.insert(10_000, 1)
        assert tree.lookup(10_000) == 1
        tree.check_invariants()

    def test_all_leaf_encodings(self):
        for encoding in LeafEncoding:
            tree = OlcBPlusTree(encoding, leaf_capacity=8)
            for key in range(150):
                tree.insert(key, key * 2)
            assert tree.lookup(77) == 154
            tree.check_invariants()


class TestConcurrent:
    def test_readers_with_concurrent_writers(self):
        tree = OlcBPlusTree(LeafEncoding.GAPPED, leaf_capacity=16)
        for key in range(0, 4000, 2):
            tree.insert(key, key)
        errors = []
        stop = threading.Event()

        def reader():
            rng = random.Random(threading.get_ident())
            try:
                while not stop.is_set():
                    key = rng.randrange(0, 4000)
                    value = tree.lookup(key)
                    if key % 2 == 0:
                        assert value == key, f"even key {key} -> {value}"
                    # Odd keys may or may not have been inserted yet; if a
                    # value exists it must be correct.
                    elif value is not None:
                        assert value == key
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer(base):
            try:
                for key in range(base, 4000, 8):
                    tree.insert(key, key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        readers = [threading.Thread(target=reader) for _ in range(3)]
        writers = [threading.Thread(target=writer, args=(base,)) for base in (1, 3, 5, 7)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert not errors
        tree.check_invariants()
        for key in range(4000):
            assert tree.lookup(key) == key

    def test_concurrent_disjoint_writers(self):
        tree = OlcBPlusTree(LeafEncoding.GAPPED, leaf_capacity=8)
        errors = []

        def writer(base):
            try:
                for offset in range(800):
                    tree.insert(base * 10_000 + offset, offset)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(tree) == 3200
        tree.check_invariants()

    def test_scans_during_writes_return_consistent_prefixes(self):
        tree = OlcBPlusTree(LeafEncoding.GAPPED, leaf_capacity=16)
        for key in range(0, 2000, 2):
            tree.insert(key, key)
        errors = []
        stop = threading.Event()

        def scanner():
            rng = random.Random(99)
            try:
                while not stop.is_set():
                    start = rng.randrange(0, 2000)
                    for key, value in tree.scan(start, 20):
                        assert key >= start
                        assert value == key
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        def writer():
            for key in range(1, 2000, 4):
                tree.insert(key, key)

        scan_thread = threading.Thread(target=scanner)
        write_thread = threading.Thread(target=writer)
        scan_thread.start()
        write_thread.start()
        write_thread.join()
        stop.set()
        scan_thread.join()
        assert not errors

    def test_restart_counter_moves_under_contention(self):
        tree = OlcBPlusTree(LeafEncoding.GAPPED, leaf_capacity=8)

        def writer(base):
            for offset in range(400):
                tree.insert(base + offset, offset)

        threads = [threading.Thread(target=writer, args=(t * 350,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Overlapping ranges force version conflicts; at least the
        # machinery must not deadlock, and the tree must be intact.
        tree.check_invariants()
        assert tree.restarts >= 0
