"""Tests for leaf encoding migrations and their cost accounting."""

import itertools

from repro.bptree.leaves import LeafEncoding, LeafNode
from repro.bptree.migrate import migrate_leaf, migration_kind
from repro.sim.counters import OpCounters


def make_leaf(encoding, n=20):
    return LeafNode([(key, key) for key in range(n)], encoding, capacity=64)


class TestMigrationKind:
    def test_plain_pairs_are_cheap(self):
        assert migration_kind(LeafEncoding.GAPPED, LeafEncoding.PACKED) == "cheap"
        assert migration_kind(LeafEncoding.PACKED, LeafEncoding.GAPPED) == "cheap"

    def test_succinct_pairs_recode(self):
        for other in (LeafEncoding.GAPPED, LeafEncoding.PACKED):
            assert migration_kind(LeafEncoding.SUCCINCT, other) == "recode"
            assert migration_kind(other, LeafEncoding.SUCCINCT) == "recode"


class TestMigrateLeaf:
    def test_all_pairs_preserve_contents(self):
        for source, target in itertools.permutations(LeafEncoding, 2):
            leaf = make_leaf(source)
            assert migrate_leaf(leaf, target)
            assert leaf.encoding is target
            assert leaf.to_pairs() == [(key, key) for key in range(20)]

    def test_noop_migration(self):
        leaf = make_leaf(LeafEncoding.PACKED)
        assert not migrate_leaf(leaf, LeafEncoding.PACKED)

    def test_counters_record_migration_and_entries(self):
        counters = OpCounters()
        leaf = make_leaf(LeafEncoding.SUCCINCT, n=30)
        migrate_leaf(leaf, LeafEncoding.GAPPED, counters)
        assert counters.get("migration:succinct->gapped") == 1
        assert counters.get("migration_entry:recode") == 30

    def test_cheap_migration_counted_separately(self):
        counters = OpCounters()
        leaf = make_leaf(LeafEncoding.GAPPED, n=10)
        migrate_leaf(leaf, LeafEncoding.PACKED, counters)
        assert counters.get("migration_entry:cheap") == 10
        assert counters.get("migration_entry:recode") == 0

    def test_noop_not_counted(self):
        counters = OpCounters()
        leaf = make_leaf(LeafEncoding.GAPPED)
        migrate_leaf(leaf, LeafEncoding.GAPPED, counters)
        assert len(counters) == 0
