"""Tests for the stateful tree iterator."""

import pytest

from repro.bptree.hybrid import BTREE_ENCODING_ORDER, AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.core.manager import ManagerConfig


def make_tree(n=200, encoding=LeafEncoding.GAPPED):
    return BPlusTree.bulk_load(
        [(key * 2, key) for key in range(n)], encoding, leaf_capacity=8
    )


class TestPositioning:
    def test_seek_first(self):
        tree = make_tree()
        iterator = tree.iterator()
        assert iterator.valid
        assert iterator.entry() == (0, 0)

    def test_seek_existing(self):
        tree = make_tree()
        iterator = tree.iterator(100)
        assert iterator.key == 100

    def test_seek_missing_lands_on_successor(self):
        tree = make_tree()
        iterator = tree.iterator(101)
        assert iterator.key == 102

    def test_seek_past_end(self):
        tree = make_tree()
        iterator = tree.iterator(10**9)
        assert not iterator.valid
        with pytest.raises(StopIteration):
            iterator.entry()

    def test_empty_tree(self):
        tree = BPlusTree(LeafEncoding.GAPPED, leaf_capacity=8)
        iterator = tree.iterator()
        assert not iterator.valid


class TestAdvancing:
    def test_full_traversal_matches_items(self):
        tree = make_tree(300)
        assert list(tree.iterator()) == list(tree.items())

    def test_advance_across_leaf_boundaries(self):
        tree = make_tree(100)
        iterator = tree.iterator()
        count = 1
        while iterator.advance():
            count += 1
        assert count == 100
        assert not iterator.valid
        assert not iterator.advance()

    def test_partial_then_python_iteration(self):
        tree = make_tree(50)
        iterator = tree.iterator(40)
        first = next(iterator)
        assert first == (40, 20)
        rest = list(iterator)
        assert rest[0] == (42, 21)

    def test_key_value_accessors(self):
        tree = make_tree(10)
        iterator = tree.iterator(4)
        assert iterator.key == 4
        assert iterator.value == 2


class TestAllEncodings:
    @pytest.mark.parametrize("encoding", list(LeafEncoding), ids=lambda e: e.value)
    def test_traversal_per_encoding(self, encoding):
        tree = make_tree(150, encoding)
        assert list(tree.iterator(100)) == [(key, key // 2) for key in range(100, 300, 2)]


class TestAdaptiveTracking:
    def test_iterator_samples_leaf_transitions(self):
        config = ManagerConfig(
            encoding_order=BTREE_ENCODING_ORDER,
            initial_skip_length=0,
            skip_min=0,
            skip_max=5,
            initial_sample_size=10_000,
            use_bloom_filter=False,
        )
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            [(key, key) for key in range(200)],
            leaf_capacity=8,
            manager_config=config,
        )
        before = tree.manager.counters.sampled
        list(tree.iterator())
        # Skip 0 -> every leaf transition was sampled and tracked.
        sampled = tree.manager.counters.sampled - before
        assert sampled >= tree.num_leaves

    def test_plain_tree_iterator_does_not_track(self):
        tree = make_tree(100)
        list(tree.iterator())  # no manager: must simply not raise
