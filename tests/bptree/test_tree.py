"""Tests for the B+-tree over all three leaf encodings."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree


def sorted_pairs(n, seed=0, spread=10**9):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(spread), n))
    return [(key, key * 3) for key in keys]


@pytest.fixture(params=list(LeafEncoding), ids=lambda e: e.value)
def encoding(request):
    return request.param


class TestBulkLoad:
    def test_lookup_all(self, encoding):
        pairs = sorted_pairs(2000)
        tree = BPlusTree.bulk_load(pairs, encoding, leaf_capacity=32)
        tree.check_invariants()
        for key, value in pairs[::37]:
            assert tree.lookup(key) == value

    def test_misses(self, encoding):
        pairs = [(key * 2, key) for key in range(100)]
        tree = BPlusTree.bulk_load(pairs, encoding, leaf_capacity=16)
        assert tree.lookup(1) is None
        assert tree.lookup(1999) is None

    def test_fill_factor_controls_leaf_count(self):
        pairs = sorted_pairs(1000)
        full = BPlusTree.bulk_load(pairs, fill_factor=1.0, leaf_capacity=50)
        seventy = BPlusTree.bulk_load(pairs, fill_factor=0.7, leaf_capacity=50)
        assert full.num_leaves == 20
        assert seventy.num_leaves == 1000 // 35 + (1 if 1000 % 35 else 0)

    def test_empty_bulk_load(self, encoding):
        tree = BPlusTree.bulk_load([], encoding)
        assert len(tree) == 0
        assert tree.lookup(1) is None

    def test_requires_sorted_unique(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([(2, 0), (1, 0)])
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([(1, 0), (1, 0)])

    def test_requires_empty_tree(self):
        tree = BPlusTree()
        tree.insert(1, 1)
        with pytest.raises(ValueError):
            tree._bulk_load_into([(2, 2)], 0.7)

    def test_invalid_fill_factor(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([(1, 1)], fill_factor=0.01)

    def test_items_sorted(self, encoding):
        pairs = sorted_pairs(500)
        tree = BPlusTree.bulk_load(pairs, encoding, leaf_capacity=16)
        assert list(tree.items()) == pairs


class TestInserts:
    def test_random_inserts(self, encoding):
        tree = BPlusTree(encoding, leaf_capacity=16)
        rng = random.Random(1)
        data = rng.sample(range(10**6), 1500)
        for key in data:
            assert tree.insert(key, key + 7)
        tree.check_invariants()
        assert len(tree) == 1500
        for key in data:
            assert tree.lookup(key) == key + 7

    def test_insert_existing_overwrites(self, encoding):
        tree = BPlusTree(encoding, leaf_capacity=8)
        tree.insert(5, 1)
        assert not tree.insert(5, 2)
        assert tree.lookup(5) == 2
        assert len(tree) == 1

    def test_sequential_inserts_split_correctly(self, encoding):
        tree = BPlusTree(encoding, leaf_capacity=8)
        for key in range(300):
            tree.insert(key, key)
        tree.check_invariants()
        assert tree.height > 1

    def test_descending_inserts(self, encoding):
        tree = BPlusTree(encoding, leaf_capacity=8)
        for key in reversed(range(300)):
            tree.insert(key, key)
        tree.check_invariants()
        assert list(tree.items()) == [(key, key) for key in range(300)]


class TestUpdatesAndDeletes:
    def test_update(self, encoding):
        pairs = sorted_pairs(200)
        tree = BPlusTree.bulk_load(pairs, encoding, leaf_capacity=16)
        key = pairs[50][0]
        assert tree.update(key, 999)
        assert tree.lookup(key) == 999
        assert not tree.update(-1, 0)

    def test_delete(self, encoding):
        pairs = sorted_pairs(300)
        tree = BPlusTree.bulk_load(pairs, encoding, leaf_capacity=16)
        for key, _ in pairs[:150]:
            assert tree.delete(key)
        tree.check_invariants()
        assert len(tree) == 150
        for key, _ in pairs[:150]:
            assert tree.lookup(key) is None
        for key, value in pairs[150:]:
            assert tree.lookup(key) == value

    def test_delete_missing(self, encoding):
        tree = BPlusTree.bulk_load(sorted_pairs(50), encoding)
        assert not tree.delete(-5)


class TestScans:
    def test_scan_within_leaf(self, encoding):
        pairs = [(key, key) for key in range(0, 100, 2)]
        tree = BPlusTree.bulk_load(pairs, encoding, leaf_capacity=64)
        assert tree.scan(10, 3) == [(10, 10), (12, 12), (14, 14)]

    def test_scan_across_leaves(self, encoding):
        pairs = [(key, key) for key in range(500)]
        tree = BPlusTree.bulk_load(pairs, encoding, leaf_capacity=8)
        assert tree.scan(200, 50) == [(key, key) for key in range(200, 250)]

    def test_scan_from_missing_key(self, encoding):
        pairs = [(key * 10, key) for key in range(100)]
        tree = BPlusTree.bulk_load(pairs, encoding, leaf_capacity=8)
        assert tree.scan(55, 2) == [(60, 6), (70, 7)]

    def test_scan_past_end(self, encoding):
        tree = BPlusTree.bulk_load([(1, 1), (2, 2)], encoding)
        assert tree.scan(5, 10) == []
        assert tree.scan(1, 100) == [(1, 1), (2, 2)]

    def test_scan_zero_count(self, encoding):
        tree = BPlusTree.bulk_load([(1, 1)], encoding)
        assert tree.scan(0, 0) == []


class TestCountersAndSizes:
    def test_leaf_visit_counted_by_encoding(self):
        tree = BPlusTree.bulk_load(sorted_pairs(100), LeafEncoding.PACKED)
        tree.lookup(1)
        assert tree.counters.get("leaf_visit:packed") == 1

    def test_size_tracks_encoding(self):
        pairs = sorted_pairs(2000)
        sizes = {
            encoding: BPlusTree.bulk_load(pairs, encoding, leaf_capacity=64).size_bytes()
            for encoding in LeafEncoding
        }
        assert sizes[LeafEncoding.SUCCINCT] < sizes[LeafEncoding.PACKED]
        assert sizes[LeafEncoding.PACKED] < sizes[LeafEncoding.GAPPED]

    def test_incremental_size_matches_walk(self, encoding):
        tree = BPlusTree(encoding, leaf_capacity=8)
        rng = random.Random(3)
        for key in rng.sample(range(10**5), 400):
            tree.insert(key, key)
        for key in rng.sample(range(10**5), 200):
            tree.delete(key)
        tree.check_invariants()  # includes leaf-byte reconciliation

    def test_census(self):
        tree = BPlusTree.bulk_load(sorted_pairs(500), LeafEncoding.SUCCINCT, leaf_capacity=16)
        census = tree.leaf_encoding_census()
        count, avg = census[LeafEncoding.SUCCINCT]
        assert count == tree.num_leaves
        assert avg > 0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "lookup"]),
            st.integers(min_value=0, max_value=500),
        ),
        max_size=120,
    ),
    st.sampled_from(list(LeafEncoding)),
)
def test_tree_matches_dict(operations, encoding):
    tree = BPlusTree(encoding, leaf_capacity=8)
    reference = {}
    for action, key in operations:
        if action == "insert":
            tree.insert(key, key * 2)
            reference[key] = key * 2
        elif action == "delete":
            assert tree.delete(key) == (key in reference)
            reference.pop(key, None)
        else:
            assert tree.lookup(key) == reference.get(key)
    tree.check_invariants()
    assert list(tree.items()) == sorted(reference.items())
