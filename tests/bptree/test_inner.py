"""Tests for B+-tree inner nodes."""

import pytest

from repro.bptree.inner import InnerNode
from repro.bptree.leaves import LeafEncoding, LeafNode


def leaf(*keys):
    return LeafNode([(key, key) for key in keys], LeafEncoding.GAPPED, capacity=16)


class TestRouting:
    def test_child_index_boundaries(self):
        node = InnerNode([10, 20], [leaf(1), leaf(10), leaf(20)])
        assert node.child_index(5) == 0
        assert node.child_index(10) == 1   # separator belongs to the right
        assert node.child_index(15) == 1
        assert node.child_index(20) == 2
        assert node.child_index(99) == 2

    def test_route_returns_child(self):
        children = [leaf(1), leaf(10)]
        node = InnerNode([10], children)
        assert node.route(3) is children[0]
        assert node.route(11) is children[1]

    def test_shape_validated(self):
        with pytest.raises(ValueError):
            InnerNode([10], [leaf(1)])


class TestMutation:
    def test_insert_child(self):
        node = InnerNode([10], [leaf(1), leaf(10)])
        new_right = leaf(5)
        node.insert_child(0, 5, new_right)
        assert node.keys == [5, 10]
        assert node.children[1] is new_right

    def test_overfull(self):
        node = InnerNode([10], [leaf(1), leaf(10)])
        assert not node.is_overfull(4)
        node.insert_child(1, 20, leaf(20))
        node.insert_child(2, 30, leaf(30))
        assert node.is_overfull(3)

    def test_split(self):
        children = [leaf(i * 10) for i in range(5)]
        node = InnerNode([10, 20, 30, 40], children)
        left, separator, right = node.split()
        assert left is node
        assert separator == 30
        assert left.keys == [10, 20]
        assert right.keys == [40]
        assert len(left.children) + len(right.children) == 5

    def test_find_child_position(self):
        children = [leaf(1), leaf(10)]
        node = InnerNode([10], children)
        assert node.find_child_position(children[1]) == 1
        assert node.find_child_position(leaf(99)) is None


class TestSize:
    def test_size_model(self):
        node = InnerNode([10, 20], [leaf(1), leaf(10), leaf(20)])
        assert node.size_bytes() == 16 + 2 * 8 + 3 * 8
