"""Tests for the adaptive Hybrid B+-tree (AHI-BTree)."""

import random

import numpy as np

from repro.bptree.hybrid import BTREE_ENCODING_ORDER, AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.core.budget import MemoryBudget
from repro.core.manager import ManagerConfig


def sorted_pairs(n, seed=0):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(10**10), n))
    return [(key, key + 1) for key in keys]


def fast_config(budget=None, **overrides):
    defaults = dict(
        encoding_order=BTREE_ENCODING_ORDER,
        budget=budget or MemoryBudget.unbounded(),
        initial_skip_length=0,
        skip_min=0,
        skip_max=10,
        initial_sample_size=500,
        max_sample_size=500,
        use_bloom_filter=False,
    )
    defaults.update(overrides)
    return ManagerConfig(**defaults)


class TestConstruction:
    def test_bulk_load_starts_cold(self):
        tree = AdaptiveBPlusTree.bulk_load_adaptive(sorted_pairs(1000), leaf_capacity=32)
        assert tree.encoding_counts() == {LeafEncoding.SUCCINCT: tree.num_leaves}

    def test_encoding_order_compact_to_fast(self):
        assert BTREE_ENCODING_ORDER[0] is LeafEncoding.SUCCINCT
        assert BTREE_ENCODING_ORDER[-1] is LeafEncoding.GAPPED


class TestAdaptation:
    def test_hot_leaves_expand_under_skew(self):
        pairs = sorted_pairs(3000)
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs, leaf_capacity=32, manager_config=fast_config()
        )
        hot_keys = [key for key, _ in pairs[:50]]
        rng = np.random.default_rng(0)
        for _ in range(3000):
            tree.lookup(hot_keys[rng.integers(0, len(hot_keys))])
        counts = tree.encoding_counts()
        assert counts.get(LeafEncoding.GAPPED, 0) >= 1
        # Cold majority stays succinct.
        assert counts.get(LeafEncoding.SUCCINCT, 0) > counts.get(LeafEncoding.GAPPED, 0)
        tree.check_invariants()

    def test_shifted_workload_compacts_old_hot_set(self):
        pairs = sorted_pairs(3000)
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs, leaf_capacity=32, manager_config=fast_config()
        )
        first_hot = [key for key, _ in pairs[:40]]
        second_hot = [key for key, _ in pairs[-40:]]
        rng = np.random.default_rng(1)
        for _ in range(2000):
            tree.lookup(first_hot[rng.integers(0, 40)])
        expanded_before = tree.encoding_counts().get(LeafEncoding.GAPPED, 0)
        assert expanded_before >= 1
        for _ in range(4000):
            tree.lookup(second_hot[rng.integers(0, 40)])
        assert tree.manager.events.total_compactions >= 1

    def test_lookup_results_survive_migrations(self):
        pairs = sorted_pairs(2000)
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs, leaf_capacity=32, manager_config=fast_config()
        )
        rng = np.random.default_rng(2)
        reference = dict(pairs)
        keys = [key for key, _ in pairs]
        for _ in range(3000):
            key = keys[min(int(rng.exponential(40)), len(keys) - 1)]
            assert tree.lookup(key) == reference[key]
        tree.check_invariants()


class TestEagerInsertExpansion:
    def test_insert_into_succinct_leaf_expands_it(self):
        tree = AdaptiveBPlusTree.bulk_load_adaptive(sorted_pairs(500), leaf_capacity=32)
        key = sorted_pairs(500)[100][0] + 1
        tree.insert(key, 42)
        assert tree.counters.get("eager_expansion:succinct") == 1
        assert tree.lookup(key) == 42
        tree.check_invariants()

    def test_eagerly_expanded_leaf_registered_for_compaction(self):
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            sorted_pairs(500), leaf_capacity=32, manager_config=fast_config()
        )
        key = sorted_pairs(500)[100][0] + 1
        tree.insert(key, 42)
        expanded = [
            leaf for leaf in tree.leaves() if leaf.encoding is LeafEncoding.GAPPED
        ]
        assert len(expanded) == 1
        assert tree.manager.stats_of(expanded[0]) is not None

    def test_eager_expansion_disabled(self):
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            sorted_pairs(500), leaf_capacity=32, eager_insert_expansion=False
        )
        key = sorted_pairs(500)[100][0] + 1
        tree.insert(key, 42)
        assert tree.counters.get("eager_expansion:succinct") == 0
        assert tree.lookup(key) == 42

    def test_eager_expansion_respects_budget(self):
        pairs = sorted_pairs(500)
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs,
            leaf_capacity=32,
            manager_config=fast_config(
                budget=MemoryBudget.absolute(1)  # already exceeded
            ),
        )
        tree.insert(pairs[100][0] + 1, 42)
        assert tree.counters.get("eager_expansion:succinct") == 0


class TestBudget:
    def test_budget_limits_expansion(self):
        pairs = sorted_pairs(3000)
        base = AdaptiveBPlusTree.bulk_load_adaptive(pairs, leaf_capacity=32)
        budget_bytes = int(base.size_bytes() * 1.2)
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs,
            leaf_capacity=32,
            manager_config=fast_config(budget=MemoryBudget.absolute(budget_bytes)),
        )
        rng = np.random.default_rng(3)
        keys = [key for key, _ in pairs]
        for _ in range(5000):
            tree.lookup(keys[rng.integers(0, 400)])
        assert tree.size_bytes() <= budget_bytes * 1.1  # small transient slack


class TestScanTracking:
    def test_scan_returns_correct_pairs_and_samples(self):
        pairs = sorted_pairs(1000)
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs, leaf_capacity=32, manager_config=fast_config()
        )
        result = tree.scan(pairs[10][0], 25)
        assert result == pairs[10:35]
        assert tree.manager.counters.sampled > 0


class TestProtocol:
    def test_adaptive_index_callbacks(self):
        tree = AdaptiveBPlusTree.bulk_load_adaptive(sorted_pairs(300), leaf_capacity=32)
        assert tree.tracked_population() == tree.num_leaves
        assert tree.used_memory() == tree.size_bytes()
        leaf = next(tree.leaves())
        assert tree.encoding_of(leaf) is LeafEncoding.SUCCINCT
        assert tree.migrate(leaf, LeafEncoding.GAPPED, None)
        assert tree.encoding_of(leaf) is LeafEncoding.GAPPED
        assert not tree.migrate(leaf, LeafEncoding.GAPPED, None)
        census = tree.encoding_census()
        assert census[LeafEncoding.GAPPED][0] == 1

    def test_encoding_of_foreign_object(self):
        tree = AdaptiveBPlusTree.bulk_load_adaptive(sorted_pairs(100))
        assert tree.encoding_of("not-a-leaf") is None

    def test_total_size_includes_manager(self):
        tree = AdaptiveBPlusTree.bulk_load_adaptive(sorted_pairs(100))
        assert tree.total_size_bytes() >= tree.size_bytes()

    def test_migration_updates_incremental_size(self):
        tree = AdaptiveBPlusTree.bulk_load_adaptive(sorted_pairs(600), leaf_capacity=32)
        for leaf in list(tree.leaves())[:5]:
            tree.migrate(leaf, LeafEncoding.GAPPED, None)
        tree.check_invariants()


class TestDeleteForgetting:
    def test_emptied_leaf_forgotten(self):
        pairs = [(key, key) for key in range(40)]
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs, leaf_capacity=8, manager_config=fast_config()
        )
        first_leaf = next(tree.leaves())
        tree.manager.register(first_leaf)
        for key, _ in first_leaf.to_pairs():
            tree.delete(key)
        assert tree.manager.stats_of(first_leaf) is None
