"""Histogram.quantile / summary and the latency boundary set."""

import pytest

from repro.obs.metrics import LATENCY_BUCKETS, SIZE_BUCKETS, Histogram


def test_latency_buckets_strictly_increase_and_cover_tails():
    assert all(a < b for a, b in zip(LATENCY_BUCKETS, LATENCY_BUCKETS[1:]))
    assert LATENCY_BUCKETS[0] <= 0.0001  # sub-100us resolution
    assert LATENCY_BUCKETS[-1] >= 10.0   # queueing-collapse territory


def test_quantile_empty_histogram_is_zero():
    h = Histogram("t", SIZE_BUCKETS)
    assert h.quantile(0.5) == 0.0
    assert h.summary()["p99"] == 0.0


def test_quantile_rejects_out_of_range():
    h = Histogram("t", SIZE_BUCKETS)
    with pytest.raises(ValueError):
        h.quantile(-0.1)
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_quantile_interpolates_within_bucket():
    # 100 observations, all in the (4, 8] bucket: ranks interpolate
    # linearly between the bucket's edges.
    h = Histogram("t", (2.0, 4.0, 8.0, 16.0))
    for _ in range(100):
        h.record(5.0)
    assert h.quantile(0.0) == pytest.approx(4.0)
    assert h.quantile(0.5) == pytest.approx(6.0)
    assert h.quantile(1.0) == pytest.approx(8.0)


def test_quantile_spans_buckets_by_rank():
    h = Histogram("t", (1.0, 2.0, 4.0))
    for _ in range(50):
        h.record(0.5)   # (0, 1]
    for _ in range(50):
        h.record(3.0)   # (2, 4]
    # Median rank 50 sits exactly at the top of the first bucket.
    assert h.quantile(0.5) == pytest.approx(1.0)
    # Rank 75 is halfway through the (2, 4] bucket.
    assert h.quantile(0.75) == pytest.approx(3.0)


def test_quantile_first_bucket_interpolates_from_zero():
    h = Histogram("t", (10.0, 20.0))
    for _ in range(10):
        h.record(7.0)
    assert h.quantile(0.5) == pytest.approx(5.0)


def test_quantile_negative_first_boundary_sets_lower_edge():
    h = Histogram("t", (-10.0, 0.0, 10.0))
    for _ in range(10):
        h.record(-5.0)
    # All mass in the (-10, 0] bucket: median interpolates to -5.
    assert h.quantile(0.5) == pytest.approx(-5.0)


def test_quantile_overflow_bucket_clamps_to_last_boundary():
    h = Histogram("t", (1.0, 2.0))
    for _ in range(10):
        h.record(100.0)  # all in +Inf
    assert h.quantile(0.99) == 2.0
    assert h.summary()["p999"] == 2.0


def test_quantile_matches_exact_quantiles_on_dense_boundaries():
    # With one boundary per integer, interpolation error is < 1 unit.
    bounds = tuple(float(v) for v in range(1, 1001))
    h = Histogram("t", bounds)
    values = [float((i * 37) % 1000) for i in range(10_000)]
    for v in values:
        h.record(v)
    values.sort()
    for q in (0.5, 0.9, 0.99, 0.999):
        exact = values[min(len(values) - 1, int(q * len(values)))]
        assert abs(h.quantile(q) - exact) <= 1.5


def test_summary_shape():
    h = Histogram("t", LATENCY_BUCKETS)
    h.record(0.003)
    s = h.summary()
    assert set(s) == {"count", "sum", "mean", "p50", "p90", "p99", "p999"}
    assert s["count"] == 1.0
    assert 0.0025 <= s["p50"] <= 0.005
