"""Tests for the console exporter."""

from repro.obs.report import render_metrics, render_telemetry, render_trace_summary
from repro.obs.runtime import Telemetry


class TestRenderMetrics:
    def test_empty_snapshot(self):
        assert render_metrics({}) == "(no instruments recorded)"

    def test_sections_render(self):
        telemetry = Telemetry()
        telemetry.registry.counter("manager.phases").inc(3)
        telemetry.registry.gauge("index.bytes").set(2048)
        telemetry.registry.histogram("batch.size", boundaries=(4,)).record(2)
        text = render_metrics(telemetry.registry.snapshot())
        assert "counters:" in text and "manager.phases" in text
        assert "gauges:" in text and "index.bytes" in text
        assert "histograms:" in text and "batch.size" in text

    def test_counter_overflow_is_elided(self):
        telemetry = Telemetry()
        for index in range(30):
            telemetry.registry.counter(f"c{index:02d}").inc()
        text = render_metrics(telemetry.registry.snapshot(), max_counters=24)
        assert "... and 6 more" in text


class TestRenderTraceSummary:
    def test_empty(self):
        assert render_trace_summary({}) == "(no spans emitted)"

    def test_counts(self):
        text = render_trace_summary({"lookup": 10, "descent": 10, "merge": 1})
        assert text.startswith("spans: 21 total")
        assert "lookup" in text and "merge" in text


class TestRenderTelemetry:
    def test_full_report(self):
        telemetry = Telemetry.with_memory_trace(op_sample_every=8)
        telemetry.registry.counter("c").inc()
        telemetry.tracer.end(telemetry.tracer.start("lookup"))
        text = render_telemetry(telemetry, title="fig12")
        assert text.startswith("== telemetry report: fig12 ==")
        assert "1 spans emitted" in text
        assert "op sampling 1/8" in text

    def test_metrics_only_report_omits_tracing(self):
        text = render_telemetry(Telemetry())
        assert "tracing:" not in text
