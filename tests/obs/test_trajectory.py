"""The cross-PR trajectory aggregator over committed BENCH_PR*.json."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "trajectory", REPO_ROOT / "benchmarks" / "trajectory.py"
)
assert spec is not None and spec.loader is not None
trajectory = importlib.util.module_from_spec(spec)
spec.loader.exec_module(trajectory)


def write(tmp_path, name, payload):
    (tmp_path / name).write_text(json.dumps(payload))


class TestCollect:
    def test_known_suite_rows_carry_their_own_bounds(self, tmp_path):
        write(
            tmp_path,
            "BENCH_PR4.json",
            {
                "suite": "PR4 sharded index service bench",
                "headline": {"shards": 4, "modeled_speedup": 3.5, "required": 2.0},
            },
        )
        rows, errors = trajectory.collect(tmp_path)
        assert errors == []
        (row,) = rows
        assert row["ok"] is True
        assert row["file"] == "BENCH_PR4.json"
        assert row["metric"] == "modeled_speedup@4shards"

    def test_violated_bound_is_flagged_not_raised(self, tmp_path):
        write(
            tmp_path,
            "BENCH_PR4.json",
            {
                "suite": "PR4 sharded index service bench",
                "headline": {"shards": 4, "modeled_speedup": 1.1, "required": 2.0},
            },
        )
        rows, _errors = trajectory.collect(tmp_path)
        assert rows[0]["ok"] is False

    def test_unknown_future_pr_is_listed_not_an_error(self, tmp_path):
        write(tmp_path, "BENCH_PR99.json", {"suite": "PR99 future bench"})
        rows, errors = trajectory.collect(tmp_path)
        assert errors == []
        assert rows[0]["suite"] == "PR99 future bench"
        assert rows[0]["ok"] is None

    def test_malformed_files_become_errors(self, tmp_path):
        (tmp_path / "BENCH_PR50.json").write_text("{not json")
        write(tmp_path, "BENCH_PR51.json", ["no", "suite"])
        write(tmp_path, "BENCH_PR52.json", {"suite": "PR4-shaped", "headline": {}})
        (tmp_path / "BENCH_PR52.json").rename(tmp_path / "BENCH_PR4.json")
        rows, errors = trajectory.collect(tmp_path)
        assert rows == []
        assert len(errors) == 3

    def test_files_sort_by_pr_number(self, tmp_path):
        # PR numbers without extractors, so ordering is all that matters;
        # 12 vs 101 sorts numerically, not lexicographically.
        write(tmp_path, "BENCH_PR101.json", {"suite": "one-oh-one"})
        write(tmp_path, "BENCH_PR12.json", {"suite": "twelve"})
        rows, _errors = trajectory.collect(tmp_path)
        assert [row["suite"] for row in rows] == ["twelve", "one-oh-one"]


class TestCommittedArtifacts:
    def test_repo_root_results_are_all_clean(self):
        """The committed BENCH_PR*.json must satisfy their own bounds."""
        rows, errors = trajectory.collect(REPO_ROOT)
        assert errors == []
        assert rows, "expected committed BENCH_PR*.json files at the repo root"
        failing = [row for row in rows if row["ok"] is False]
        assert failing == []
        # Every known suite contributed at least one checked bound.
        checked_files = {row["file"] for row in rows if row["ok"] is not None}
        assert {"BENCH_PR3.json", "BENCH_PR8.json"} <= checked_files


class TestCli:
    def test_check_passes_on_clean_root(self, tmp_path, capsys):
        write(
            tmp_path,
            "BENCH_PR4.json",
            {
                "suite": "s",
                "headline": {"shards": 4, "modeled_speedup": 3.5, "required": 2.0},
            },
        )
        assert trajectory.main(["--root", str(tmp_path), "--check"]) == 0
        assert "trajectory ok" in capsys.readouterr().out

    def test_check_fails_on_violation_and_malformed(self, tmp_path, capsys):
        write(
            tmp_path,
            "BENCH_PR4.json",
            {
                "suite": "s",
                "headline": {"shards": 4, "modeled_speedup": 1.0, "required": 2.0},
            },
        )
        assert trajectory.main(["--root", str(tmp_path), "--check"]) == 1
        assert "TRAJECTORY FAILURE" in capsys.readouterr().err
        (tmp_path / "BENCH_PR4.json").write_text("{broken")
        assert trajectory.main(["--root", str(tmp_path), "--check"]) == 1

    def test_json_format_is_machine_readable(self, tmp_path, capsys):
        write(tmp_path, "BENCH_PR77.json", {"suite": "s"})
        assert trajectory.main(["--root", str(tmp_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == []
        assert payload["rows"][0]["suite"] == "s"
