"""Every index family honors the uniform stats()/describe() contract."""

import json

import pytest

from repro.art.tree import ART, terminated
from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.dualstage.index import DualStageIndex, StaticEncoding
from repro.fst.trie import FST
from repro.hybridtrie.tree import HybridTrie

INT_PAIRS = [(key, key * 2) for key in range(0, 600, 2)]
BYTE_PAIRS = [
    (terminated(word), index)
    for index, word in enumerate(
        sorted({f"user{index:04d}".encode() for index in range(300)})
    )
]


def build_families():
    return {
        "bptree": BPlusTree.bulk_load(INT_PAIRS, LeafEncoding.GAPPED),
        "bptree_adaptive": AdaptiveBPlusTree.bulk_load_adaptive(INT_PAIRS),
        "dualstage": DualStageIndex.bulk_load(INT_PAIRS, StaticEncoding.SUCCINCT),
        "art": ART.from_sorted(BYTE_PAIRS),
        "fst": FST(BYTE_PAIRS),
        "hybridtrie": HybridTrie(BYTE_PAIRS),
    }


SHARED_KEYS = ("family", "num_keys", "size_bytes", "encoding_census", "counters", "adaptation")


class TestStatsContract:
    @pytest.mark.parametrize("family", sorted(build_families()))
    def test_uniform_shape(self, family):
        index = build_families()[family]
        index.lookup(INT_PAIRS[0][0] if family in ("bptree", "bptree_adaptive", "dualstage") else BYTE_PAIRS[0][0])
        stats = index.stats()
        assert stats["family"] == family == index.stats_family
        for key in SHARED_KEYS:
            assert key in stats, key
        assert list(stats)[: len(SHARED_KEYS)] == list(SHARED_KEYS)
        assert stats["num_keys"] > 0
        assert stats["size_bytes"] > 0
        assert stats["encoding_census"]
        assert stats["counters"]  # the lookup above counted something
        json.dumps(stats)  # JSON-safe exactly as returned

    @pytest.mark.parametrize("family", sorted(build_families()))
    def test_describe_leads_with_family(self, family):
        text = build_families()[family].describe()
        assert text.startswith(f"{family}:")
        assert "keys" in text.splitlines()[0]

    def test_adaptive_families_expose_adaptation_block(self):
        families = build_families()
        for name in ("bptree_adaptive", "hybridtrie"):
            assert families[name].stats()["adaptation"] is not None
        for name in ("bptree", "art", "fst", "dualstage"):
            assert families[name].stats()["adaptation"] is None

    def test_dualstage_extras(self):
        index = build_families()["dualstage"]
        index.insert(10_001, 1)
        stats = index.stats()
        assert "merges" in stats and "tombstones" in stats
        assert stats["dynamic_size"] >= 1
