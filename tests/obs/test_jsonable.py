"""Tests for the shared JSON-coercion helper."""

import dataclasses
import enum
import json
from collections import Counter

from repro.obs.jsonable import jsonable_key, to_jsonable


class Color(enum.Enum):
    RED = "red"


@dataclasses.dataclass
class Point:
    x: int
    y: bytes


class TestToJsonable:
    def test_primitives_pass_through(self):
        for value in (1, 1.5, "s", True, None):
            assert to_jsonable(value) is value

    def test_enum_becomes_value(self):
        assert to_jsonable(Color.RED) == "red"

    def test_bytes_become_hex(self):
        assert to_jsonable(b"\x01\xff") == "01ff"
        assert to_jsonable(bytearray(b"\x02")) == "02"

    def test_dataclass_becomes_dict(self):
        assert to_jsonable(Point(1, b"\x0a")) == {"x": 1, "y": "0a"}

    def test_counter_and_bytes_keys(self):
        counts = Counter({b"\x01": 2, "plain": 1})
        assert to_jsonable(counts) == {"01": 2, "plain": 1}

    def test_enum_keys(self):
        assert to_jsonable({Color.RED: 1}) == {"red": 1}

    def test_sets_sort(self):
        assert to_jsonable({3, 1, 2}) == [1, 2, 3]
        assert to_jsonable(frozenset({"b", "a"})) == ["a", "b"]

    def test_unsortable_sets_sort_by_repr(self):
        result = to_jsonable({1, "a"})
        assert sorted(result, key=repr) == result

    def test_tuples_become_lists(self):
        assert to_jsonable((1, (2, 3))) == [1, [2, 3]]

    def test_unknown_falls_back_to_str(self):
        class Opaque:
            def __str__(self):
                return "opaque"

        assert to_jsonable(Opaque()) == "opaque"

    def test_output_is_json_serializable(self):
        payload = {
            Color.RED: [Point(1, b"\x01"), {2, 1}],
            b"\x02": Counter({"a": 1}),
        }
        json.dumps(to_jsonable(payload))  # must not raise


class TestDefaultHook:
    def test_hook_runs_before_structural_rules(self):
        # A dataclass would normally expand to a field dict; the hook
        # wins because it is consulted first.
        def hook(value):
            if isinstance(value, Point):
                return "summarized"
            return NotImplemented

        assert to_jsonable(Point(1, b"\x01"), default=hook) == "summarized"

    def test_hook_is_not_offered_primitives(self):
        calls = []

        def hook(value):
            calls.append(value)
            return NotImplemented

        to_jsonable({"a": 1}, default=hook)
        assert calls == [{"a": 1}]  # the dict, never the int or the str key

    def test_declining_hook_falls_through(self):
        def hook(value):
            return NotImplemented

        assert to_jsonable(Point(1, b"\x01"), default=hook) == {"x": 1, "y": "01"}

    def test_hook_result_is_recursed_without_hook(self):
        # The hook's output is converted by the standard rules only, so a
        # hook returning the same type cannot loop forever.
        def hook(value):
            if isinstance(value, Point):
                return {"point": Point(2, b"\x02")}
            return NotImplemented

        assert to_jsonable(Point(1, b"\x01"), default=hook) == {
            "point": {"x": 2, "y": "02"}
        }


class TestJsonableKey:
    def test_key_coercions(self):
        assert jsonable_key("s") == "s"
        assert jsonable_key(b"\x01") == "01"
        assert jsonable_key(Color.RED) == "red"
        assert jsonable_key(7) == "7"
