"""Tests for the global telemetry install point."""

from repro.obs.runtime import (
    Telemetry,
    active,
    active_registry,
    active_tracer,
)


class TestDefaultOff:
    def test_nothing_installed_by_default(self):
        assert active() is None
        assert active_registry() is None
        assert active_tracer() is None


class TestInstallUninstall:
    def test_context_manager_installs_and_restores(self):
        with Telemetry() as telemetry:
            assert active() is telemetry
            assert active_registry() is telemetry.registry
            assert active_tracer() is None  # metrics-only
        assert active() is None

    def test_installation_nests(self):
        with Telemetry() as outer:
            with Telemetry.with_memory_trace() as inner:
                assert active() is inner
                assert active_tracer() is inner.tracer
            assert active() is outer
        assert active() is None

    def test_uninstall_closes_tracer(self):
        telemetry = Telemetry.with_memory_trace()
        with telemetry:
            telemetry.tracer.start("dangling")
        sink = telemetry.tracer.sink
        assert sink.closed
        assert [record["name"] for record in sink.records] == ["dangling"]

    def test_uninstall_without_install_is_noop(self):
        telemetry = Telemetry()
        telemetry.uninstall()  # must not disturb the (empty) global
        assert active() is None

    def test_snapshot_shape(self):
        telemetry = Telemetry.with_memory_trace(op_sample_every=4)
        telemetry.registry.counter("c").inc()
        telemetry.tracer.end(telemetry.tracer.start("lookup"))
        snapshot = telemetry.snapshot()
        assert snapshot["metrics"]["counters"] == {"c": 1}
        assert snapshot["tracing"]["spans_emitted"] == 1
        assert snapshot["tracing"]["op_sample_every"] == 4

    def test_metrics_only_snapshot_has_no_tracing_block(self):
        assert "tracing" not in Telemetry().snapshot()
