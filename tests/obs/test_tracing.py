"""Tests for the span tracer and its sinks."""

import pytest

from repro.bptree.leaves import LeafEncoding
from repro.obs.sinks import (
    InMemoryTraceSink,
    JsonlTraceSink,
    TeeTraceSink,
    read_jsonl_trace,
)
from repro.obs.tracing import Tracer


def make_tracer(op_sample_every=0):
    sink = InMemoryTraceSink()
    return Tracer(sink, op_sample_every=op_sample_every), sink


class TestSpanNesting:
    def test_children_carry_parent_id(self):
        tracer, sink = make_tracer()
        outer = tracer.start("adaptation_phase")
        inner = tracer.start("classify")
        tracer.end(inner)
        tracer.end(outer)
        classify, phase = sink.records
        assert phase["name"] == "adaptation_phase"
        assert phase["parent_id"] is None
        assert classify["parent_id"] == phase["span_id"]

    def test_emission_is_post_order(self):
        tracer, sink = make_tracer()
        outer = tracer.start("outer")
        inner = tracer.start("inner")
        tracer.end(inner)
        tracer.end(outer)
        assert [record["name"] for record in sink.records] == ["inner", "outer"]

    def test_sequence_numbers_order_spans(self):
        tracer, sink = make_tracer()
        span = tracer.start("lookup")
        tracer.end(span)
        (record,) = sink.records
        assert record["seq_end"] > record["seq_start"] >= 1

    def test_end_closes_abandoned_children(self):
        tracer, sink = make_tracer()
        outer = tracer.start("outer")
        tracer.start("forgotten")
        tracer.end(outer)
        names = [record["name"] for record in sink.records]
        assert names == ["forgotten", "outer"]

    def test_attributes_merge_at_end(self):
        tracer, sink = make_tracer()
        span = tracer.start("migration:gapped->succinct", unit=3)
        span.set(entries=128)
        tracer.end(span, outcome="ok")
        (record,) = sink.records
        assert record["attributes"] == {"unit": 3, "entries": 128, "outcome": "ok"}

    def test_event_is_instantaneous_child(self):
        tracer, sink = make_tracer()
        span = tracer.start("lookup")
        tracer.event("descent", inner_visits=2)
        tracer.end(span)
        descent, lookup = sink.records
        assert descent["seq_start"] == descent["seq_end"]
        assert descent["parent_id"] == lookup["span_id"]

    def test_context_manager(self):
        tracer, sink = make_tracer()
        with tracer.span("merge", entries=10):
            pass
        assert sink.records[0]["name"] == "merge"


class TestOpSampling:
    def test_zero_disables_op_spans(self):
        tracer, sink = make_tracer(op_sample_every=0)
        assert tracer.op_start("lookup") is None
        assert sink.records == []

    def test_one_traces_every_op(self):
        tracer, _ = make_tracer(op_sample_every=1)
        spans = [tracer.op_start("lookup") for _ in range(5)]
        for span in spans:
            assert span is not None
            tracer.end(span)
        assert tracer.ops_skipped == 0

    def test_every_nth_op_is_sampled(self):
        tracer, _ = make_tracer(op_sample_every=3)
        sampled = 0
        for _ in range(9):
            span = tracer.op_start("lookup")
            if span is not None:
                sampled += 1
                tracer.end(span)
        assert sampled == 3
        assert tracer.ops_skipped == 6

    def test_negative_sampling_rejected(self):
        with pytest.raises(ValueError):
            make_tracer(op_sample_every=-1)


class TestClose:
    def test_close_flushes_open_spans_and_sink(self):
        tracer, sink = make_tracer()
        tracer.start("outer")
        tracer.start("inner")
        tracer.close()
        assert [record["name"] for record in sink.records] == ["inner", "outer"]
        assert sink.closed


class TestSinks:
    def test_memory_sink_coerces_attributes(self):
        tracer, sink = make_tracer()
        span = tracer.start("lookup", encoding=LeafEncoding.GAPPED, key=b"\x01")
        tracer.end(span)
        assert sink.records[0]["attributes"] == {"encoding": "gapped", "key": "01"}
        assert sink.by_name("lookup") == sink.records

    def test_jsonl_sink_roundtrips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlTraceSink(path, flush_every=2))
        for _ in range(3):
            tracer.end(tracer.start("lookup"))
        tracer.close()
        records = read_jsonl_trace(path)
        assert len(records) == 3
        assert all(record["name"] == "lookup" for record in records)

    def test_tee_sink_fans_out_independent_dicts(self):
        left, right = InMemoryTraceSink(), InMemoryTraceSink()
        tracer = Tracer(TeeTraceSink(left, right))
        tracer.end(tracer.start("lookup"))
        tracer.close()
        assert len(left.records) == len(right.records) == 1
        assert left.records[0] is not right.records[0]
        assert left.closed and right.closed
