"""Tests for JSONL trace-schema validation."""

import pytest

from repro.obs.runtime import Telemetry
from repro.obs.schema import (
    TraceSchemaError,
    load_schema,
    validate_record,
    validate_trace,
    validate_trace_file,
)
from repro.obs.sinks import JsonlTraceSink
from repro.obs.tracing import Tracer


def make_record(**overrides):
    record = {
        "span_id": 1,
        "parent_id": None,
        "name": "lookup",
        "seq_start": 1,
        "seq_end": 2,
        "attributes": {},
    }
    record.update(overrides)
    return record


class TestValidateRecord:
    def test_valid_record_passes(self):
        validate_record(make_record())

    @pytest.mark.parametrize(
        "overrides, message",
        [
            ({"span_id": 0}, "span_id"),
            ({"span_id": True}, "span_id"),
            ({"parent_id": 0}, "parent_id"),
            ({"parent_id": 1}, "own parent"),
            ({"name": "Bad Name!"}, "invalid span name"),
            ({"name": ""}, "invalid span name"),
            ({"seq_start": 0}, "seq_start"),
            ({"seq_end": 1, "seq_start": 2}, "ends"),
            ({"attributes": []}, "attributes"),
        ],
    )
    def test_bad_fields_rejected(self, overrides, message):
        with pytest.raises(TraceSchemaError, match=message):
            validate_record(make_record(**overrides))

    def test_missing_and_extra_fields_rejected(self):
        record = make_record()
        del record["seq_end"]
        with pytest.raises(TraceSchemaError, match="missing fields"):
            validate_record(record)
        with pytest.raises(TraceSchemaError, match="unexpected fields"):
            validate_record(make_record(duration_ns=5))

    def test_real_span_names_pass(self):
        for name in (
            "leaf_probe:succinct",
            "migration:gapped->succinct",
            "harness.interval",
            "adaptation_phase",
        ):
            validate_record(make_record(name=name))


class TestValidateTrace:
    def test_counts_by_name(self):
        records = [
            make_record(span_id=1),
            make_record(span_id=2, parent_id=1, name="descent"),
        ]
        assert validate_trace(records) == {"lookup": 1, "descent": 1}

    def test_duplicate_span_ids_rejected(self):
        with pytest.raises(TraceSchemaError, match="already used"):
            validate_trace([make_record(), make_record()])

    def test_dangling_parent_rejected(self):
        with pytest.raises(TraceSchemaError, match="names no span"):
            validate_trace([make_record(parent_id=99)])


class TestValidateTraceFile:
    def test_real_trace_validates_against_checked_in_schema(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Telemetry(tracer=Tracer(JsonlTraceSink(path), op_sample_every=1)) as t, (
            t.tracer.span("adaptation_phase")
        ):
            t.tracer.event("migration:gapped->succinct", unit=1)
        names = validate_trace_file(path)
        assert names == {"adaptation_phase": 1, "migration:gapped->succinct": 1}

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceSchemaError, match="no spans"):
            validate_trace_file(path)

    def test_non_json_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(TraceSchemaError, match="not valid JSON"):
            validate_trace_file(path)

    def test_checked_in_schema_matches_validator(self):
        schema = load_schema()
        assert sorted(schema["required"]) == sorted(
            ("span_id", "parent_id", "name", "seq_start", "seq_end", "attributes")
        )
