"""Hot-path instrumentation: every publisher reaches the installed telemetry.

These are end-to-end checks of the call sites sprinkled through the
index families, the adaptation manager, the Bloom filter, the sampler,
and the fault injector — the wiring :mod:`repro.obs` exists for.
"""

import pytest

from repro.art.tree import ART, terminated
from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.core.bloom import BloomFilter
from repro.core.sampling import SkipSampler
from repro.dualstage.index import DualStageIndex, StaticEncoding
from repro.faults import FaultInjector, InjectedFault, fault_point
from repro.fst.trie import FST
from repro.hybridtrie.tree import HybridTrie
from repro.obs import Telemetry

INT_PAIRS = [(key, key * 2) for key in range(500)]
BYTE_PAIRS = [
    (terminated(f"key{index:04d}".encode()), index) for index in range(200)
]


class TestTracedLookups:
    """Every family emits lookup -> descent/leaf_probe spans when traced."""

    @pytest.mark.parametrize(
        "build, key, probe_prefix",
        [
            (lambda: BPlusTree.bulk_load(INT_PAIRS, LeafEncoding.SUCCINCT),
             42, "leaf_probe:succinct"),
            (lambda: AdaptiveBPlusTree.bulk_load_adaptive(INT_PAIRS),
             42, "leaf_probe:"),
            (lambda: DualStageIndex.bulk_load(INT_PAIRS, StaticEncoding.SUCCINCT),
             42, "leaf_probe:static"),
            (lambda: ART.from_sorted(BYTE_PAIRS),
             BYTE_PAIRS[0][0], "leaf_probe:"),
            (lambda: FST(BYTE_PAIRS),
             BYTE_PAIRS[0][0], "leaf_probe:"),
            (lambda: HybridTrie(BYTE_PAIRS),
             BYTE_PAIRS[0][0], "leaf_probe:"),
        ],
        ids=["bptree", "bptree_adaptive", "dualstage", "art", "fst", "hybridtrie"],
    )
    def test_lookup_span_tree(self, build, key, probe_prefix):
        index = build()
        expected = index.lookup(key)  # untraced result for comparison
        with Telemetry.with_memory_trace(op_sample_every=1) as telemetry:
            assert index.lookup(key) == expected  # tracing must not change results
            sink = telemetry.tracer.sink
            lookups = sink.by_name("lookup")
            assert len(lookups) == 1
            children = [
                record for record in sink.records
                if record["parent_id"] == lookups[0]["span_id"]
            ]
            assert any(child["name"].startswith(probe_prefix) for child in children)

    def test_sampling_gate_skips_op_spans(self):
        tree = BPlusTree.bulk_load(INT_PAIRS, LeafEncoding.GAPPED)
        with Telemetry.with_memory_trace(op_sample_every=4) as telemetry:
            for key in range(0, 16):
                tree.lookup(key)
            assert len(telemetry.tracer.sink.by_name("lookup")) == 4

    def test_disabled_tracing_emits_nothing(self):
        tree = BPlusTree.bulk_load(INT_PAIRS, LeafEncoding.GAPPED)
        with Telemetry() as telemetry:  # registry only, no tracer
            tree.lookup(42)
        assert telemetry.snapshot()["metrics"]["counters"] == {}


class TestManagerInstrumentation:
    def test_adaptation_phase_publishes_spans_and_metrics(self):
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            [(key, key) for key in range(4_000)]
        )
        for key in range(0, 4_000, 3):
            tree.lookup(key)
        with Telemetry.with_memory_trace() as telemetry:
            tree.manager.run_adaptation()
            sink = telemetry.tracer.sink
            phases = sink.by_name("adaptation_phase")
            assert len(phases) == 1
            # The phase span carries the full AdaptationEvent.as_dict().
            attributes = phases[0]["attributes"]
            assert {"epoch", "expansions", "compactions", "index_bytes"} <= set(attributes)
            assert sink.by_name("classify")
            counters = telemetry.registry.snapshot()["counters"]
            assert counters["manager.phases"] == 1
            gauges = telemetry.registry.snapshot()["gauges"]
            assert gauges["index.bytes"] > 0


class TestCorePublishers:
    def test_bloom_reset_records_histograms(self):
        bloom = BloomFilter(capacity=256)
        with Telemetry() as telemetry:
            for item in range(64):
                bloom.add(item)
            bloom.reset()
            histograms = telemetry.registry.snapshot()["histograms"]
            assert histograms["bloom.insertions_per_phase"]["count"] == 1
            assert 0.0 < histograms["bloom.saturation"]["mean"] <= 1.0

    def test_empty_bloom_reset_records_nothing(self):
        bloom = BloomFilter(capacity=16)
        with Telemetry() as telemetry:
            bloom.reset()
            assert telemetry.registry.snapshot()["histograms"] == {}

    def test_sampler_publishes_skip_length(self):
        sampler = SkipSampler(skip_length=10)
        with Telemetry() as telemetry:
            sampler.set_skip_length(25)
            snapshot = telemetry.registry.snapshot()
            assert snapshot["gauges"]["sampler.skip_length"] == 25
            assert snapshot["counters"]["sampler.skip_updates"] == 1

    def test_fault_injector_counts_raises(self):
        with Telemetry() as telemetry:
            with FaultInjector(site="obs.test", fail_at=1), pytest.raises(InjectedFault):
                fault_point("obs.test")
            counters = telemetry.registry.snapshot()["counters"]
            assert counters["faults.injected"] == 1
            assert counters["faults.injected:obs.test"] == 1


class TestDualStageMerge:
    def test_merge_emits_span_and_metrics(self):
        index = DualStageIndex.bulk_load(INT_PAIRS, StaticEncoding.SUCCINCT)
        with Telemetry.with_memory_trace() as telemetry:
            index.insert(10_001, 1)
            index.merge()
            merges = telemetry.tracer.sink.by_name("merge")
            assert len(merges) == 1
            assert merges[0]["attributes"]["outcome"] == "merged"
            snapshot = telemetry.registry.snapshot()
            assert snapshot["counters"]["dualstage.merges"] == 1
            assert snapshot["histograms"]["dualstage.merge_entries"]["count"] == 1
