"""Stitching per-process JSONL traces into per-request trees."""

import json

import pytest

from repro.obs.sinks import InMemoryTraceSink
from repro.obs.stitch import StitchError, load_records, main, render_json, render_text, stitch
from repro.obs.tracing import Tracer


def two_process_records():
    """A client file and a server file for one traced GET."""
    client = Tracer(client_sink := InMemoryTraceSink(), span_id_base=0)
    server = Tracer(server_sink := InMemoryTraceSink(), span_id_base=1 << 32)

    root = client.start_remote("net.client.request", trace_id=77, op="GET")
    remote = server.start_remote(
        "net.server.request", trace_id=77, remote_parent_id=root.span_id
    )
    with server.adopt(remote):
        route = server.start("service.route", elapsed_s=0.002)
        shard = server.start("service.shard_op", elapsed_s=0.001)
        server.end(shard)
        server.end(route)
    server.finish(remote, elapsed_s=0.004)
    client.finish(root, elapsed_s=0.005)

    for record in client_sink.records:
        record["_file"] = "client.jsonl"
    for record in server_sink.records:
        record["_file"] = "server.jsonl"
    return client_sink.records + server_sink.records


class TestStitch:
    def test_cross_file_remote_link_resolves(self):
        (trace,) = stitch(two_process_records())
        assert trace.trace_id == 77
        assert trace.orphans == 0
        (root,) = trace.roots
        assert root.name == "net.client.request"
        names = [node.name for _, node in trace.walk()]
        assert names == [
            "net.client.request",
            "net.server.request",
            "service.route",
            "service.shard_op",
        ]

    def test_chain_matching_is_prefix_and_gap_tolerant(self):
        (trace,) = stitch(two_process_records())
        assert trace.has_chain(["net.client.request", "service.shard_op"])
        assert trace.has_chain(["net.client", "service.route", "service.shard"])
        assert not trace.has_chain(["service.shard_op", "net.client.request"])
        assert not trace.has_chain(["durability.wal.append"])

    def test_layer_attribution_sums_elapsed(self):
        (trace,) = stitch(two_process_records())
        layers = trace.layers()
        assert layers["route"]["elapsed_s"] == pytest.approx(0.002)
        assert layers["shard"]["elapsed_s"] == pytest.approx(0.001)
        assert layers["client"]["spans"] == 1
        assert layers["net"]["spans"] == 1

    def test_untraced_records_are_skipped(self):
        tracer = Tracer(sink := InMemoryTraceSink())
        span = tracer.start("adaptation_phase")
        tracer.end(span)
        for record in sink.records:
            record["_file"] = "local.jsonl"
        assert stitch(sink.records) == []

    def test_colliding_span_ids_name_both_files(self):
        records = two_process_records()
        clash = dict(records[0])
        clash["_file"] = "other.jsonl"
        with pytest.raises(StitchError, match="other.jsonl"):
            stitch(records + [clash])

    def test_unresolved_remote_parent_counts_as_orphan_root(self):
        records = [
            record
            for record in two_process_records()
            if record["_file"] == "server.jsonl"
        ]
        (trace,) = stitch(records)
        assert trace.orphans == 1
        assert trace.roots[0].name == "net.server.request"


class TestRendering:
    def test_text_view_shows_tree_and_layers(self):
        text = render_text(stitch(two_process_records()))
        assert "net.client.request" in text
        assert "-- layer attribution --" in text
        assert "1 stitched trace(s)" in text

    def test_json_view_nests_children_and_keeps_files(self):
        payload = json.loads(render_json(stitch(two_process_records())))
        (trace,) = payload["traces"]
        assert trace["spans"] == 4
        root = trace["tree"][0]
        assert root["file"] == "client.jsonl"
        assert root["children"][0]["name"] == "net.server.request"


class TestCli:
    def write_files(self, tmp_path):
        records = two_process_records()
        for filename in ("client.jsonl", "server.jsonl"):
            lines = [
                json.dumps({key: value for key, value in record.items() if key != "_file"})
                for record in records
                if record["_file"] == filename
            ]
            (tmp_path / filename).write_text("\n".join(lines) + "\n")
        return [str(tmp_path / "client.jsonl"), str(tmp_path / "server.jsonl")]

    def test_load_records_tags_source_files(self, tmp_path):
        paths = self.write_files(tmp_path)
        records = load_records(paths)
        assert {record["_file"] for record in records} == set(paths)

    def test_require_chain_success_and_failure(self, tmp_path, capsys):
        paths = self.write_files(tmp_path)
        assert main(paths + ["--require-chain", "net.client>service.shard_op"]) == 0
        assert "chain ok" in capsys.readouterr().out
        assert main(paths + ["--require-chain", "durability.wal.append"]) == 2

    def test_bad_input_is_exit_1(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main([str(bad)]) == 1

    def test_json_output_file(self, tmp_path):
        paths = self.write_files(tmp_path)
        out = tmp_path / "stitched.json"
        assert main(paths + ["--format", "json", "--output", str(out)]) == 0
        assert json.loads(out.read_text())["traces"]
