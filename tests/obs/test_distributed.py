"""Distributed-tracing vocabulary and the detached span lifecycle."""

import random

import pytest

from repro.obs.distributed import (
    MAX_TRACE_ID,
    SPAN_LAYERS,
    TraceContext,
    layer_of,
    new_trace_id,
)
from repro.obs.sinks import InMemoryTraceSink
from repro.obs.tracing import Tracer


def make_tracer(span_id_base=0, op_sample_every=0):
    sink = InMemoryTraceSink()
    return Tracer(sink, op_sample_every=op_sample_every, span_id_base=span_id_base), sink


class TestLayerMap:
    def test_every_net_span_name_maps_off_other(self):
        for name in (
            "net.client.request",
            "net.server.request",
            "net.admission",
            "net.coalesce.batch",
            "service.route",
            "service.shard_op",
            "durability.wal.append",
            "lookup",
            "lookup_many",
            "insert",
            "descent",
            "leaf_probe:succinct",
        ):
            assert layer_of(name) != "other", name

    def test_longest_prefix_wins(self):
        # net.admission must not be swallowed by the generic net. prefix.
        assert layer_of("net.admission") == "admission"
        assert layer_of("net.client.request") == "client"
        assert layer_of("net.server.request") == "net"

    def test_unknown_names_fall_through_to_other(self):
        assert layer_of("totally.novel.span") == "other"

    def test_layer_table_is_prefix_ordered(self):
        # A longer prefix listed after a shorter one it extends would be
        # unreachable; the table must be ordered longest-match-first.
        for index, (prefix, _layer) in enumerate(SPAN_LAYERS):
            for earlier, _ in SPAN_LAYERS[:index]:
                assert not prefix.startswith(earlier), (
                    f"{prefix!r} is shadowed by earlier prefix {earlier!r}"
                )


class TestTraceContext:
    def test_fields_round_trip(self):
        context = TraceContext(trace_id=42, parent_span_id=7, sampled=True)
        assert context.trace_id == 42
        assert context.parent_span_id == 7
        assert context.sampled

    def test_trace_id_bounds_enforced(self):
        with pytest.raises(ValueError):
            TraceContext(trace_id=0, parent_span_id=1, sampled=True)
        with pytest.raises(ValueError):
            TraceContext(trace_id=MAX_TRACE_ID + 1, parent_span_id=1, sampled=True)

    def test_new_trace_id_in_range_and_seedable(self):
        rng = random.Random(7)
        ids = {new_trace_id(rng) for _ in range(100)}
        assert len(ids) == 100
        assert all(1 <= trace_id <= MAX_TRACE_ID for trace_id in ids)
        replay = random.Random(7)
        assert {new_trace_id(replay) for _ in range(100)} == ids


class TestDetachedSpans:
    def test_start_remote_is_a_local_root_with_remote_link(self):
        tracer, sink = make_tracer()
        span = tracer.start_remote("net.server.request", trace_id=9, remote_parent_id=3)
        tracer.finish(span, status=0)
        (record,) = sink.records
        assert record["parent_id"] is None
        assert record["trace_id"] == 9
        assert record["attributes"]["remote_parent_id"] == 3
        assert record["attributes"]["status"] == 0

    def test_start_child_parents_explicitly_without_stack(self):
        tracer, sink = make_tracer()
        parent = tracer.start_remote("net.server.request", trace_id=9)
        child = tracer.start_child("net.coalesce.batch", parent, size=2)
        assert tracer.current() is None  # detached spans never touch the stack
        tracer.finish(child)
        tracer.finish(parent)
        batch, server = sink.records
        assert batch["parent_id"] == server["span_id"]
        assert batch["trace_id"] == 9

    def test_child_event_is_instantaneous(self):
        tracer, sink = make_tracer()
        parent = tracer.start_remote("net.server.request", trace_id=9)
        tracer.child_event("net.admission", parent, decision="admit")
        tracer.finish(parent)
        admission = sink.records[0]
        assert admission["seq_start"] == admission["seq_end"]
        assert admission["parent_id"] == parent.span_id

    def test_adopt_bridges_stack_spans_under_detached_parent(self):
        tracer, sink = make_tracer()
        parent = tracer.start_remote("net.server.request", trace_id=9)
        with tracer.adopt(parent):
            assert tracer.current() is parent
            inner = tracer.start("service.route")
            tracer.end(inner)
        # Leaving adopt() must NOT emit the adopted span: its owner
        # finishes it after the response is written.
        assert [record["name"] for record in sink.records] == ["service.route"]
        assert sink.records[0]["parent_id"] == parent.span_id
        assert sink.records[0]["trace_id"] == 9
        tracer.finish(parent)
        assert sink.records[-1]["name"] == "net.server.request"

    def test_span_id_base_separates_processes(self):
        client, client_sink = make_tracer(span_id_base=0)
        server, server_sink = make_tracer(span_id_base=1 << 32)
        root = client.start_remote("net.client.request", trace_id=5)
        remote = server.start_remote(
            "net.server.request", trace_id=5, remote_parent_id=root.span_id
        )
        server.finish(remote)
        client.finish(root)
        client_ids = {record["span_id"] for record in client_sink.records}
        server_ids = {record["span_id"] for record in server_sink.records}
        assert not client_ids & server_ids
        assert min(server_ids) > 1 << 32
