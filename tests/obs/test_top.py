"""The ops console renderer is a pure function over STATS snapshots."""

from repro.obs.top import _fmt_bytes, _fmt_ms, render_snapshot


def snapshot(**overrides):
    base = {
        "server": {
            "connections": 3,
            "requests": 1000,
            "responses": 990,
            "sheds": 10,
            "protocol_errors": 0,
            "admission": True,
        },
        "coalescer": {
            "enabled": True,
            "max_batch": 128,
            "batches_flushed": 50,
            "requests_coalesced": 400,
        },
        "tenants": {
            "alpha": {"num_shards": 2, "num_keys": 5000, "size_bytes": 123456},
            "beta": {"num_shards": 1, "num_keys": 100, "size_bytes": 2048},
        },
        "arbiter": {
            "tenants": {
                "alpha": {"inflight": 2, "admitted": 900, "throttled": 5, "overloaded": 5},
                "beta": {"inflight": 0, "admitted": 90, "throttled": 0, "overloaded": 0},
            }
        },
        "shards": {
            "alpha": [
                {
                    "shard_id": 0,
                    "family": "adaptive",
                    "num_keys": 2500,
                    "ops": 450,
                    "migrations": 3,
                    "wal_lag": 12,
                    "encoding_census": {
                        "gapped": {"count": 4, "avg_bytes": 100.0},
                        "succinct": {"count": 2, "avg_bytes": 60.0},
                    },
                }
            ]
        },
        "latency": {
            "net.request_seconds": {
                "count": 990,
                "mean": 0.002,
                "p50": 0.001,
                "p99": 0.009,
                "p999": 0.02,
            },
            "net.coalesce.batch_size": {
                "count": 50,
                "mean": 8.0,
                "p50": 8.0,
                "p99": 16.0,
                "p999": 16.0,
            },
        },
        "slo": {
            "worst": "warn",
            "objectives": {
                "net_request_p99": {
                    "state": "warn",
                    "burn_fast": 1.5,
                    "burn_slow": 1.2,
                    "bad": 12.0,
                    "total": 990.0,
                }
            },
        },
    }
    base.update(overrides)
    return base


class TestRenderSnapshot:
    def test_all_sections_render(self):
        frame = render_snapshot(snapshot())
        for expected in (
            "server: conns=3",
            "admission=on",
            "avg_batch=8.00",
            "alpha",
            "alpha/0",
            "gapped:4 succinct:2",
            "latency:",
            "slo: worst=warn",
            "burn_fast=1.50",
        ):
            assert expected in frame, expected

    def test_durations_format_as_ms_but_sizes_do_not(self):
        frame = render_snapshot(snapshot())
        assert "9.00ms" in frame          # p99 of net.request_seconds
        assert "1000.00ms" not in frame   # batch-size histogram is unitless
        assert "16" in frame

    def test_shed_rates_are_interval_deltas_between_frames(self):
        first = snapshot()
        second = snapshot(
            arbiter={
                "tenants": {
                    # +100 admitted, +100 shed since the previous frame.
                    "alpha": {
                        "inflight": 1,
                        "admitted": 1000,
                        "throttled": 55,
                        "overloaded": 55,
                    },
                    "beta": {"inflight": 0, "admitted": 90, "throttled": 0, "overloaded": 0},
                }
            }
        )
        frame = render_snapshot(second, previous=first)
        assert " 50.0%" in frame   # alpha's interval shed rate
        assert "  0.0%" in frame   # beta idle

    def test_replicated_shards_render_one_row_per_replica(self):
        stats = snapshot()
        stats["shards"]["alpha"] = [
            {
                "shard_id": 0,
                "family": "adaptive",
                "num_keys": 2500,
                "ops": 450,
                "migrations": 10,
                "wal_lag": 12,
                "encoding_census": {"gapped": {"count": 9}},
                "replicas": [
                    {
                        "replica": 0,
                        "profile": "point",
                        "down": False,
                        "num_keys": 2500,
                        "ops": 300,
                        "migrations": 7,
                        "wal_lag": 0,
                        "encoding_census": {
                            "gapped": {"count": 7},
                            "succinct": {"count": 2},
                        },
                    },
                    {
                        "replica": 1,
                        "profile": "squeezed",
                        "down": True,
                        "num_keys": 2500,
                        "ops": 150,
                        "migrations": 3,
                        "wal_lag": 12,
                        "encoding_census": {"succinct": {"count": 9}},
                    },
                ],
            }
        ]
        frame = render_snapshot(stats)
        # Per-replica rows, not one aggregate row.
        assert "alpha/0.r0" in frame
        assert "alpha/0.r1" in frame
        assert "point" in frame
        assert "squeezed!" in frame      # down replicas are flagged
        assert "gapped:7 succinct:2" in frame
        assert "gapped:9" not in frame   # the aggregate census is hidden

    def test_missing_sections_degrade_gracefully(self):
        frame = render_snapshot({"server": {}, "coalescer": {}, "tenants": {}})
        assert "server:" in frame
        assert "slo:" not in frame
        assert "shards:" not in frame
        assert "latency:" not in frame

    def test_formatters(self):
        assert _fmt_bytes(512.0) == "512B"
        assert _fmt_bytes(2048.0) == "2.0KiB"
        assert _fmt_ms(0.0015) == "1.50ms"
        assert _fmt_ms("n/a") == "-"
