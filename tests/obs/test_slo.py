"""SLO objectives, multi-window burn-rate states, and --slo checks."""

import pytest

from repro.obs.metrics import LATENCY_BUCKETS, MetricsRegistry
from repro.obs.slo import (
    Objective,
    SloMonitor,
    default_net_objectives,
    evaluate_checks,
    latency_objective,
    parse_check,
    ratio_objective,
)


def shed_monitor(**kwargs):
    objective = ratio_objective(
        "shed_rate", bad=("net.shed",), total="net.requests", target=0.05
    )
    defaults = {"fast_window": 60.0, "slow_window": 600.0}
    defaults.update(kwargs)
    return objective, SloMonitor([objective], **defaults)


class TestObjectiveValidation:
    def test_latency_needs_histogram_and_threshold(self):
        with pytest.raises(ValueError, match="histogram"):
            Objective(name="x", kind="latency", target=0.01)

    def test_ratio_needs_counters(self):
        with pytest.raises(ValueError, match="bad counters"):
            Objective(name="x", kind="ratio", target=0.05)

    def test_target_must_be_a_fraction(self):
        with pytest.raises(ValueError, match="target"):
            latency_objective("x", histogram="h", threshold_s=0.01, target=1.5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            Objective(name="x", kind="availability", target=0.01)

    def test_default_net_objectives_cover_latency_and_sheds(self):
        kinds = {objective.kind for objective in default_net_objectives()}
        assert kinds == {"latency", "ratio"}


class TestCumulativeSignals:
    def test_latency_counts_observations_above_threshold(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("net.request_seconds", boundaries=LATENCY_BUCKETS)
        objective = latency_objective(
            "p99", histogram="net.request_seconds", threshold_s=0.01
        )
        for _ in range(98):
            histogram.record(0.001)
        histogram.record(0.5)
        histogram.record(0.5)
        bad, total = objective.cumulative(registry)
        assert (bad, total) == (2.0, 100.0)

    def test_missing_instruments_read_as_zero(self):
        objective, _monitor = shed_monitor()
        assert objective.cumulative(MetricsRegistry()) == (0.0, 0.0)


class TestBurnRateStates:
    def test_flips_ok_to_page_under_sustained_2x_overload(self):
        """The acceptance scenario: a healthy run, then forced overload.

        At 2x offered load half of all requests shed; with a 5% budget
        that is a burn rate of 10 — far beyond ``page_burn`` on both
        windows once the overload has been sustained.
        """
        _objective, monitor = shed_monitor(fast_window=10.0, slow_window=60.0)
        registry = MetricsRegistry()
        requests = registry.counter("net.requests", "requests")
        sheds = registry.counter("net.shed", "sheds")

        now = 0.0
        for _ in range(20):  # healthy: nothing shed
            requests.inc(100)
            states = monitor.observe(registry, now)
            now += 1.0
        assert states == {"shed_rate": "ok"}

        for _ in range(120):  # 2x overload: every other request shed
            requests.inc(200)
            sheds.inc(100)
            states = monitor.observe(registry, now)
            now += 1.0
        assert states == {"shed_rate": "page"}
        status = monitor.snapshot()["objectives"]["shed_rate"]
        assert status["burn_fast"] == pytest.approx(10.0)
        assert status["burn_slow"] == pytest.approx(10.0)

    def test_brief_blip_warns_at_most_but_never_pages(self):
        _objective, monitor = shed_monitor(fast_window=10.0, slow_window=600.0)
        registry = MetricsRegistry()
        requests = registry.counter("net.requests", "requests")
        sheds = registry.counter("net.shed", "sheds")

        now = 0.0
        for _ in range(300):  # long healthy history fills the slow window
            requests.inc(100)
            monitor.observe(registry, now)
            now += 1.0
        for _ in range(5):  # short fire
            requests.inc(100)
            sheds.inc(50)
            states = monitor.observe(registry, now)
            now += 1.0
            # The slow window dilutes the blip below page_burn, so the
            # fast window alone must never page.
            assert states["shed_rate"] != "page"

    def test_gauges_ride_the_registry_with_objective_labels(self):
        _objective, monitor = shed_monitor()
        registry = MetricsRegistry()
        requests = registry.counter("net.requests", "requests")
        sheds = registry.counter("net.shed", "sheds")
        monitor.observe(registry, 0.0)  # zero baseline sample
        requests.inc(10)
        sheds.inc(10)
        monitor.observe(registry, 1.0)
        state = registry.get_gauge("slo.state", {"objective": "shed_rate"})
        assert state is not None
        assert state.value == 2.0  # page
        assert 'objective="shed_rate"' in registry.to_prometheus()

    def test_worst_state_is_the_maximum(self):
        latency = latency_objective("lat", histogram="h", threshold_s=0.01)
        ratio = ratio_objective("shed", bad=("b",), total="t", target=0.05)
        monitor = SloMonitor([latency, ratio])
        registry = MetricsRegistry()
        total = registry.counter("t", "total")
        bad = registry.counter("b", "bad")
        monitor.observe(registry, 0.0)  # zero baseline sample
        total.inc(10)
        bad.inc(10)
        monitor.observe(registry, 1.0)
        assert monitor.state_of("lat") == "ok"
        assert monitor.state_of("shed") == "page"
        assert monitor.worst_state() == "page"

    def test_monitor_rejects_bad_configuration(self):
        objective, _monitor = shed_monitor()
        with pytest.raises(ValueError):
            SloMonitor([])
        with pytest.raises(ValueError):
            SloMonitor([objective, objective])
        with pytest.raises(ValueError):
            SloMonitor([objective], fast_window=600.0, slow_window=60.0)
        with pytest.raises(ValueError):
            SloMonitor([objective], warn_burn=6.0, page_burn=1.0)


class TestSloChecks:
    def test_parse_all_operators(self):
        for expression, op in (
            ("p99<0.1", "<"),
            ("p99<=0.1", "<="),
            ("ok_fraction>0.9", ">"),
            ("ok_fraction>=0.9", ">="),
            ("lost_writes==0", "=="),
            ("lost_writes=0", "=="),
        ):
            check = parse_check(expression)
            assert check.op == op
            assert check.source == expression

    def test_parse_rejects_garbage(self):
        for expression in ("", "p99", "p99 !! 3", "<0.5"):
            with pytest.raises(ValueError):
                parse_check(expression)

    def test_evaluate_reports_violations_and_unknown_metrics(self):
        checks = [parse_check("p99<0.1"), parse_check("sheds==0"), parse_check("nope<1")]
        violations = evaluate_checks({"p99": 0.5, "sheds": 0.0}, checks)
        assert len(violations) == 2
        assert any("p99=0.5" in violation for violation in violations)
        assert any("not found" in violation for violation in violations)

    def test_evaluate_passes_clean_runs(self):
        checks = [parse_check("p99<0.1"), parse_check("sheds==0")]
        assert evaluate_checks({"p99": 0.01, "sheds": 0.0}, checks) == []
