"""Tests for the shared stats()/describe() building blocks."""

import json

from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.obs.introspect import base_stats, census_stats, format_stats, manager_stats


class TestCensusStats:
    def test_tuple_entries(self):
        census = {LeafEncoding.GAPPED: (3, 512.04)}
        assert census_stats(census) == {
            "gapped": {"count": 3, "avg_bytes": 512.0}
        }

    def test_plain_count_entries(self):
        assert census_stats({"node4": 7}) == {"node4": {"count": 7}}


class TestBaseStats:
    def test_uniform_shape(self):
        stats = base_stats(
            family="bptree",
            num_keys=100,
            size_bytes=4096,
            census={"gapped": (1, 4096.0)},
            counters_snapshot={"inner_visit": 5},
        )
        assert stats["family"] == "bptree"
        assert stats["num_keys"] == 100
        assert stats["size_bytes"] == 4096
        assert stats["counters"] == {"inner_visit": 5}
        assert stats["adaptation"] is None
        json.dumps(stats)  # JSON-safe as produced


class TestManagerStats:
    def make_tree(self):
        pairs = [(key, key) for key in range(4_000)]
        tree = AdaptiveBPlusTree.bulk_load_adaptive(pairs)
        for key in range(0, 4_000, 3):
            tree.lookup(key)
        tree.manager.run_adaptation()
        return tree

    def test_adaptation_block(self):
        tree = self.make_tree()
        block = manager_stats(tree.manager)
        assert block["phases"] >= 1
        assert block["epoch"] >= 1
        assert block["accesses_seen"] > 0
        history = block["migration_history"]
        assert history["migrations"] == history["expansions"] + history["compactions"]
        assert len(history["recent_events"]) == len(tree.manager.events)
        assert history["recent_events"][-1]["epoch"] == tree.manager.events[-1].epoch
        json.dumps(block)

    def test_recent_events_are_bounded(self):
        tree = self.make_tree()
        block = manager_stats(tree.manager, recent_events=1)
        assert len(block["migration_history"]["recent_events"]) == 1
        assert (
            block["migration_history"]["recent_events"][0]["epoch"]
            == tree.manager.events[-1].epoch
        )


class TestFormatStats:
    def test_renders_all_sections(self):
        tree = TestManagerStats().make_tree()
        text = format_stats(tree.stats())
        assert text.startswith("bptree_adaptive:")
        assert "encodings:" in text
        assert "adaptation: epoch" in text
        assert "migrations:" in text
        assert "top counters:" in text

    def test_extras_rendered_generically(self):
        stats = base_stats("fst", 10, 100, {}, {})
        stats["height"] = 4
        assert "height: 4" in format_stats(stats)
