"""Tests for the metrics registry and the Prometheus exposition."""

import pytest

from repro.obs.metrics import (
    COST_NS_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    iter_instrument_names,
    parse_prometheus,
    sample_key,
    split_sample_key,
)


class TestCounter:
    def test_inc(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_inc_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1)

    def test_set_total_is_monotonic(self):
        counter = Counter("x")
        counter.set_total(10)
        counter.set_total(10)  # idempotent re-ingestion is fine
        counter.set_total(12)
        with pytest.raises(ValueError, match="cannot move backwards"):
            counter.set_total(5)


class TestGauge:
    def test_set_goes_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10.5)
        gauge.set(2)
        assert gauge.value == 2


class TestHistogram:
    def test_boundaries_must_increase(self):
        with pytest.raises(ValueError, match="strictly increase"):
            Histogram("h", boundaries=(1, 1, 2))
        with pytest.raises(ValueError, match="at least one boundary"):
            Histogram("h", boundaries=())

    def test_bucket_placement(self):
        histogram = Histogram("h", boundaries=(10, 100))
        histogram.record(5)     # <= 10
        histogram.record(10)    # <= 10 (le is inclusive)
        histogram.record(50)    # <= 100
        histogram.record(1000)  # +Inf
        assert histogram.bucket_counts == [2, 1, 1]
        assert histogram.cumulative_counts() == [2, 3, 4]
        assert histogram.count == 4
        assert histogram.total == 1065
        assert histogram.mean == pytest.approx(266.25)

    def test_empty_mean(self):
        assert Histogram("h", boundaries=(1,)).mean == 0.0

    def test_shared_bucket_constants_are_valid(self):
        for buckets in (SIZE_BUCKETS, COST_NS_BUCKETS):
            Histogram("h", boundaries=buckets)  # must not raise


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert len(registry) == 3

    def test_name_cannot_change_type(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError, match="already used"):
            registry.gauge("a")
        with pytest.raises(ValueError, match="already used"):
            registry.histogram("a")

    def test_ingest_counters_is_idempotent(self):
        registry = MetricsRegistry()
        registry.ingest_counters({"leaf_visit:gapped": 3})
        registry.ingest_counters({"leaf_visit:gapped": 3})
        registry.ingest_counters({"leaf_visit:gapped": 7})
        assert registry.counter("ops.leaf_visit:gapped").value == 7

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", boundaries=(10,)).record(3)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["bucket_counts"] == [1, 0]


class TestPrometheus:
    def make_registry(self):
        registry = MetricsRegistry()
        registry.counter("ops.leaf_visit:gapped", help="leaf visits").inc(41)
        registry.gauge("index.bytes").set(1024)
        registry.histogram("batch.size", boundaries=(2, 8)).record(4)
        return registry

    def test_roundtrip_through_parser(self):
        text = self.make_registry().to_prometheus()
        samples = parse_prometheus(text)
        assert samples["repro_ops_leaf_visit_gapped_total"] == 41
        assert samples["repro_index_bytes"] == 1024
        assert samples['repro_batch_size_bucket{le="+Inf"}'] == 1
        assert samples["repro_batch_size_count"] == 1
        names = iter_instrument_names(samples)
        assert "repro_batch_size_bucket" in names  # label variants collapse
        assert names == sorted(names)

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", boundaries=(1, 10))
        for value in (0.5, 5, 5, 100):
            histogram.record(value)
        samples = parse_prometheus(registry.to_prometheus())
        assert samples['repro_h_bucket{le="1"}'] == 1
        assert samples['repro_h_bucket{le="10"}'] == 3
        assert samples['repro_h_bucket{le="+Inf"}'] == 4

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_prometheus("repro_x 1\nnot a metric line at all!\n")

    def test_parser_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_prometheus("repro_x 1\nrepro_x 2\n")

    def test_parser_rejects_empty(self):
        with pytest.raises(ValueError, match="no samples"):
            parse_prometheus("# TYPE repro_x counter\n")


class TestLabelEscaping:
    """Exporter escaping round-trips per the text exposition format."""

    HOSTILE_VALUES = (
        'path\\to"thing"',
        "line one\nline two",
        '\\"\n\\n',           # escape sequences adjacent to each other
        'trailing backslash\\',
        "}",                  # a brace inside a value must not end the label set
        'a="b",c="d"',        # a value that looks like more labels
    )

    def test_escape_is_invertible_through_the_scanner(self):
        # The scanner parses rendered (sanitized) sample names, so the
        # name here matches what the exporter emits.
        for value in self.HOSTILE_VALUES:
            key = sample_key("slo_state", (("objective", value),))
            name, labels = split_sample_key(key)
            assert name == "slo_state"
            assert labels == {"objective": value}, value

    def test_export_roundtrip_with_hostile_label_values(self):
        registry = MetricsRegistry()
        for index, value in enumerate(self.HOSTILE_VALUES):
            registry.gauge("slo.state", labels={"objective": value}).set(float(index))
        samples = parse_prometheus(registry.to_prometheus())
        recovered = {}
        for key, sample_value in samples.items():
            name, labels = split_sample_key(key)
            if name == "repro_slo_state":
                recovered[labels["objective"]] = sample_value
        assert recovered == {
            value: float(index) for index, value in enumerate(self.HOSTILE_VALUES)
        }

    def test_escaped_text_stays_single_line(self):
        registry = MetricsRegistry()
        registry.gauge("g", labels={"objective": "two\nlines"}).set(1.0)
        body = registry.to_prometheus()
        sample_lines = [line for line in body.splitlines() if line.startswith("repro_g")]
        assert sample_lines == ['repro_g{objective="two\\nlines"} 1']

    def test_bad_escape_sequences_are_rejected(self):
        with pytest.raises(ValueError, match="bad escape"):
            parse_prometheus('repro_g{objective="oops\\t"} 1\n')
