"""Tests for the four ART node types."""

import pytest

from repro.art.nodes import Node4, Node16, Node48, Node256, art_node_for_fanout

ALL_NODE_TYPES = [Node4, Node16, Node48, Node256]


@pytest.fixture(params=ALL_NODE_TYPES, ids=lambda cls: cls.__name__)
def node_class(request):
    return request.param


class TestCommonBehaviour:
    def test_set_and_find(self, node_class):
        node = node_class()
        assert node.set_child(65, "child-a")
        assert node.find_child(65) == "child-a"
        assert node.find_child(66) is None

    def test_overwrite(self, node_class):
        node = node_class()
        node.set_child(1, "old")
        node.set_child(1, "new")
        assert node.find_child(1) == "new"
        assert node.num_children() == 1

    def test_capacity_enforced(self, node_class):
        node = node_class()
        for label in range(node_class.capacity):
            assert node.set_child(label, label)
        if node_class.capacity < 256:
            assert not node.set_child(255, "overflow")

    def test_delete(self, node_class):
        node = node_class()
        node.set_child(10, "x")
        node.set_child(20, "y")
        assert node.delete_child(10)
        assert node.find_child(10) is None
        assert node.find_child(20) == "y"
        assert not node.delete_child(10)

    def test_children_items_sorted(self, node_class):
        node = node_class()
        for label in (9, 3, 200, 77):
            node.set_child(label, label)
        labels = [label for label, _ in node.children_items()]
        assert labels == sorted(labels)

    def test_prefix_stored(self, node_class):
        node = node_class(prefix=b"abc")
        assert node.prefix == b"abc"


class TestGrow:
    def test_grow_chain(self):
        node = Node4()
        for label in range(4):
            node.set_child(label, label)
        for expected in (Node16, Node48, Node256):
            node = node.grow()
            assert isinstance(node, expected)
            assert node.num_children() >= 4
            assert node.find_child(2) == 2

    def test_node256_cannot_grow(self):
        with pytest.raises(ValueError):
            Node256().grow()

    def test_grow_preserves_prefix(self):
        node = Node4(prefix=b"xy")
        assert node.grow().prefix == b"xy"


class TestShrink:
    def test_shrink_to_smallest_fit(self):
        node = Node48()
        for label in range(3):
            node.set_child(label, label)
        shrunk = node.shrink_if_sparse()
        assert isinstance(shrunk, Node4)
        assert shrunk.find_child(2) == 2

    def test_no_shrink_when_full_enough(self):
        node = Node16()
        for label in range(10):
            node.set_child(label, label)
        assert node.shrink_if_sparse() is node


class TestNode48Internals:
    def test_delete_keeps_dense_child_array(self):
        node = Node48()
        for label in range(10):
            node.set_child(label, f"child-{label}")
        node.delete_child(0)
        # All remaining children still reachable.
        for label in range(1, 10):
            assert node.find_child(label) == f"child-{label}"
        assert node.num_children() == 9


class TestFanoutFactory:
    def test_picks_smallest_type(self):
        assert isinstance(art_node_for_fanout(3), Node4)
        assert isinstance(art_node_for_fanout(5), Node16)
        assert isinstance(art_node_for_fanout(17), Node48)
        assert isinstance(art_node_for_fanout(49), Node256)
        assert isinstance(art_node_for_fanout(256), Node256)

    def test_rejects_over_256(self):
        with pytest.raises(ValueError):
            art_node_for_fanout(257)


class TestSizeModel:
    def test_sizes_strictly_increase(self):
        sizes = [cls().size_bytes() for cls in ALL_NODE_TYPES]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]
