"""Tests for the Adaptive Radix Tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.tree import ART, terminated


def int_pairs(n, seed=0):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(2**48), n))
    return [(key.to_bytes(8, "big"), index) for index, key in enumerate(keys)]


class TestLookup:
    def test_hits_and_misses(self):
        pairs = int_pairs(1000)
        art = ART.from_sorted(pairs)
        for key, value in pairs[::29]:
            assert art.lookup(key) == value
        assert art.lookup(b"\xff" * 8) is None or (b"\xff" * 8, None) in pairs

    def test_contains(self):
        art = ART.from_sorted([(b"abcd", 1)])
        assert b"abcd" in art
        assert b"abce" not in art

    def test_empty_tree(self):
        art = ART()
        assert art.lookup(b"x") is None
        assert len(art) == 0
        assert art.size_bytes() == 0


class TestInsert:
    def test_insert_counts_keys(self):
        art = ART()
        assert art.insert(b"aa", 1)
        assert art.insert(b"ab", 2)
        assert not art.insert(b"aa", 3)  # overwrite
        assert len(art) == 2
        assert art.lookup(b"aa") == 3

    def test_prefix_key_rejected(self):
        art = ART()
        art.insert(b"abc", 1)
        with pytest.raises(ValueError):
            art.insert(b"ab", 2)

    def test_terminated_prefixes_ok(self):
        art = ART()
        art.insert(terminated(b"ab"), 1)
        art.insert(terminated(b"abc"), 2)
        assert art.lookup(terminated(b"ab")) == 1
        assert art.lookup(terminated(b"abc")) == 2

    def test_prefix_split(self):
        art = ART()
        art.insert(b"abcdef01", 1)
        art.insert(b"abcdxy02", 2)
        art.insert(b"abzzzz03", 3)
        assert art.lookup(b"abcdef01") == 1
        assert art.lookup(b"abcdxy02") == 2
        assert art.lookup(b"abzzzz03") == 3

    def test_node_growth_through_all_types(self):
        art = ART()
        for label in range(256):
            art.insert(bytes([label]) + b"pad", label)
        assert len(art) == 256
        census = art.node_census()
        assert census.get("Node256", 0) >= 1
        for label in range(256):
            assert art.lookup(bytes([label]) + b"pad") == label


class TestDelete:
    def test_delete_and_lookup(self):
        pairs = int_pairs(500)
        art = ART.from_sorted(pairs)
        for key, _ in pairs[:250]:
            assert art.delete(key)
        assert len(art) == 250
        for key, _ in pairs[:250]:
            assert art.lookup(key) is None
        for key, value in pairs[250:]:
            assert art.lookup(key) == value

    def test_delete_missing(self):
        art = ART.from_sorted(int_pairs(10))
        assert not art.delete(b"\x00" * 8)

    def test_delete_restores_path_compression(self):
        art = ART()
        art.insert(b"abc1", 1)
        art.insert(b"abc2", 2)
        art.delete(b"abc2")
        # The remaining single key collapses back toward a leaf.
        assert art.lookup(b"abc1") == 1
        census = art.node_census()
        assert census == {"ARTLeaf": 1}

    def test_delete_everything(self):
        pairs = int_pairs(100)
        art = ART.from_sorted(pairs)
        for key, _ in pairs:
            assert art.delete(key)
        assert len(art) == 0
        assert art.root is None


class TestIterationAndScan:
    def test_items_sorted(self):
        pairs = int_pairs(300)
        art = ART.from_sorted(pairs)
        assert list(art.items()) == pairs

    def test_scan_from_existing(self):
        pairs = int_pairs(300)
        art = ART.from_sorted(pairs)
        assert art.scan(pairs[40][0], 10) == pairs[40:50]

    def test_scan_from_missing_start(self):
        art = ART.from_sorted([(b"bb", 1), (b"dd", 2), (b"ff", 3)])
        assert art.scan(b"cc", 2) == [(b"dd", 2), (b"ff", 3)]

    def test_scan_exhausts(self):
        art = ART.from_sorted([(b"aa", 1)])
        assert art.scan(b"zz", 5) == []
        assert art.scan(b"", 5) == [(b"aa", 1)]


class TestAccounting:
    def test_visits_counted(self):
        art = ART.from_sorted(int_pairs(100))
        before = art.counters.get("art_visit")
        art.lookup(int_pairs(100)[0][0])
        assert art.counters.get("art_visit") > before

    def test_size_and_census(self):
        art = ART.from_sorted(int_pairs(2000))
        census = art.node_census()
        assert census["ARTLeaf"] == 2000
        assert art.size_bytes() > 2000 * 16

    def test_height_with_path_compression(self):
        # 8-byte keys sharing long prefixes: compression keeps it shallow.
        art = ART.from_sorted(int_pairs(1000))
        assert art.height() <= 9


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.binary(min_size=1, max_size=12),
        unique=True,
        min_size=1,
        max_size=80,
    )
)
def test_art_matches_dict(keys):
    keys = [terminated(key) for key in sorted(set(keys))]
    art = ART()
    reference = {}
    for index, key in enumerate(keys):
        art.insert(key, index)
        reference[key] = index
    assert list(art.items()) == sorted(reference.items())
    for key in keys:
        assert art.lookup(key) == reference[key]
    # Delete half, verify the rest.
    for key in keys[::2]:
        assert art.delete(key)
        del reference[key]
    assert list(art.items()) == sorted(reference.items())
