"""Tests for BFS trie construction."""

import pytest

from repro.fst.builder import build_trie_levels


class TestBuildTrieLevels:
    def test_single_key(self):
        levels = build_trie_levels([(b"ab", 7)])
        assert levels.height == 2
        assert levels.num_keys == 1
        root = levels.levels[0][0]
        assert root.labels == [ord("a")]
        assert root.has_child == [True]
        leaf_level = levels.levels[1][0]
        assert leaf_level.labels == [ord("b")]
        assert leaf_level.has_child == [False]
        assert leaf_level.values == [7]

    def test_shared_prefixes_single_node_per_level(self):
        levels = build_trie_levels([(b"aa", 0), (b"ab", 1), (b"ba", 2)])
        assert [len(level) for level in levels.levels] == [1, 2]
        root = levels.levels[0][0]
        assert root.labels == [ord("a"), ord("b")]

    def test_bfs_order_within_level(self):
        levels = build_trie_levels(
            [(b"ax", 0), (b"ay", 1), (b"bw", 2), (b"bz", 3)]
        )
        # Level 1 holds the 'a' node before the 'b' node (BFS order),
        # each with its labels ascending.
        level_one = levels.levels[1]
        assert [node.labels for node in level_one] == [
            [ord("x"), ord("y")],
            [ord("w"), ord("z")],
        ]

    def test_values_in_label_order(self):
        levels = build_trie_levels([(b"aa", 10), (b"ab", 11)])
        node = levels.levels[1][0]
        assert node.values == [10, 11]

    def test_empty(self):
        levels = build_trie_levels([])
        assert levels.height == 0
        assert levels.node_count() == 0

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            build_trie_levels([(b"b", 0), (b"a", 1)])

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            build_trie_levels([(b"a", 0), (b"a", 1)])

    def test_prefix_violation_rejected(self):
        with pytest.raises(ValueError):
            build_trie_levels([(b"a", 0), (b"ab", 1)])

    def test_average_fanout(self):
        levels = build_trie_levels([(b"aa", 0), (b"ab", 1), (b"ba", 2), (b"bb", 3)])
        assert levels.average_fanout(0) == 2.0
        assert levels.average_fanout(1) == 2.0

    def test_level_node_counts(self):
        keys = [bytes([a, b]) for a in range(3) for b in range(4)]
        levels = build_trie_levels([(key, i) for i, key in enumerate(keys)])
        assert levels.level_node_counts() == [1, 3]

    def test_nodes_in_bfs_order_matches_levels(self):
        keys = [bytes([a, b]) for a in range(3) for b in range(2)]
        levels = build_trie_levels([(key, i) for i, key in enumerate(keys)])
        ordered = list(levels.nodes_in_bfs_order())
        assert len(ordered) == levels.node_count()
        assert [node.level for node in ordered] == sorted(
            node.level for node in ordered
        )
