"""Tests for file-level FST serialization (atomic publish + hygiene)."""

import pytest

from repro.faults import FaultInjector, InjectedFault
from repro.fst import FST
from repro.fst.serialize import fst_from_file, fst_to_file


def make_fst(n=200):
    pairs = [(index.to_bytes(4, "big"), index) for index in range(n)]
    return FST(pairs), pairs


class TestFileRoundtrip:
    def test_roundtrip(self, tmp_path):
        fst, pairs = make_fst()
        path = tmp_path / "index.fst"
        fst_to_file(fst, path)
        loaded = fst_from_file(path)
        assert loaded.num_keys == fst.num_keys
        for key, value in pairs[::13]:
            assert loaded.lookup(key) == value
        assert not list(tmp_path.glob("*.tmp"))

    def test_accepts_str_path(self, tmp_path):
        fst, _ = make_fst(10)
        path = tmp_path / "index.fst"
        fst_to_file(fst, str(path))
        assert fst_from_file(str(path)).num_keys == 10

    def test_overwrite_replaces_atomically(self, tmp_path):
        first, _ = make_fst(10)
        second, _ = make_fst(25)
        path = tmp_path / "index.fst"
        fst_to_file(first, path)
        fst_to_file(second, path)
        assert fst_from_file(path).num_keys == 25


class TestSwapFaultHygiene:
    def test_fault_leaves_old_file_and_no_temp(self, tmp_path):
        first, _ = make_fst(10)
        second, _ = make_fst(25)
        path = tmp_path / "index.fst"
        fst_to_file(first, path)
        with FaultInjector(site="fst.serialize.swap", fail_at=1):
            with pytest.raises(InjectedFault):
                fst_to_file(second, path)
        assert fst_from_file(path).num_keys == 10  # old file intact
        assert not list(tmp_path.glob("*.tmp"))

    def test_fault_on_fresh_write_leaves_nothing(self, tmp_path):
        fst, _ = make_fst(10)
        path = tmp_path / "index.fst"
        with FaultInjector(site="fst.serialize.swap", fail_at=1):
            with pytest.raises(InjectedFault):
                fst_to_file(fst, path)
        assert not path.exists()
        assert not list(tmp_path.glob("*.tmp"))
