"""Tests for the LOUDS dense/sparse Fast Succinct Trie."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.tree import terminated
from repro.fst.builder import build_trie_levels
from repro.fst.trie import FST, choose_dense_cutoff


def int_pairs(n, seed=0, bits=48):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(2**bits), n))
    return [(key.to_bytes(8, "big"), index) for index, key in enumerate(keys)]


DENSE_CONFIGS = [0, 2, 4, 64]


@pytest.fixture(params=DENSE_CONFIGS, ids=lambda d: f"dense={d}")
def dense_levels(request):
    return request.param


class TestLookup:
    def test_all_keys_found(self, dense_levels):
        pairs = int_pairs(800)
        fst = FST(pairs, dense_levels=dense_levels)
        for key, value in pairs[::13]:
            assert fst.lookup(key) == value

    def test_misses(self, dense_levels):
        pairs = int_pairs(200)
        fst = FST(pairs, dense_levels=dense_levels)
        assert fst.lookup(b"\x00" * 8) is None
        assert fst.lookup(b"\xff" * 8) is None

    def test_short_query_key(self):
        fst = FST([(b"abcd", 1)])
        assert fst.lookup(b"ab") is None

    def test_empty(self):
        fst = FST([])
        assert fst.lookup(b"anything") is None
        assert fst.num_keys == 0
        assert list(fst.items()) == []

    def test_variable_length_terminated(self, dense_levels):
        words = sorted(terminated(word) for word in [b"a", b"ab", b"abc", b"b", b"ba"])
        fst = FST([(word, index) for index, word in enumerate(words)], dense_levels=dense_levels)
        for index, word in enumerate(words):
            assert fst.lookup(word) == index

    def test_lookup_from_mid_trie(self):
        pairs = int_pairs(200)
        fst = FST(pairs, dense_levels=0)
        key = pairs[50][0]
        child, value, found = fst.step(0, key[0])
        assert found and value is None
        assert fst.lookup_from(child, key, 1) == 50


class TestStructure:
    def test_node_numbering_counts(self, dense_levels):
        pairs = int_pairs(300)
        fst = FST(pairs, dense_levels=dense_levels)
        levels = build_trie_levels(pairs)
        assert fst.num_nodes == levels.node_count()
        expected_dense = sum(
            len(level) for level in levels.levels[: min(dense_levels, levels.height)]
        )
        assert fst.num_dense_nodes == expected_dense

    def test_children_match_builder(self, dense_levels):
        pairs = int_pairs(120)
        fst = FST(pairs, dense_levels=dense_levels)
        levels = build_trie_levels(pairs)
        # Walk BFS: node numbers are assigned in BFS order, so children()
        # must report the same labels the builder produced.
        for node_number, spec in enumerate(levels.nodes_in_bfs_order()):
            entries = fst.children(node_number)
            assert [label for label, _, _ in entries] == spec.labels
            for (label, child, value), has_child, spec_value in zip(
                entries, spec.has_child, spec.values
            ):
                if has_child:
                    assert child is not None and value is None
                else:
                    assert child is None and value == spec_value

    def test_level_of_node(self):
        pairs = int_pairs(100)
        fst = FST(pairs, dense_levels=2)
        assert fst.level_of_node(0) == 0
        deepest = fst.num_nodes - 1
        assert fst.level_of_node(deepest) == fst.height - 1

    def test_node_fanout(self, dense_levels):
        pairs = int_pairs(100)
        fst = FST(pairs, dense_levels=dense_levels)
        for node in range(min(20, fst.num_nodes)):
            assert fst.node_fanout(node) == len(fst.children(node))


class TestIterationAndScans:
    def test_items_sorted(self, dense_levels):
        pairs = int_pairs(300)
        fst = FST(pairs, dense_levels=dense_levels)
        assert list(fst.items()) == pairs

    def test_scan(self, dense_levels):
        pairs = int_pairs(300)
        fst = FST(pairs, dense_levels=dense_levels)
        assert fst.scan(pairs[100][0], 25) == pairs[100:125]

    def test_scan_from_missing_start(self):
        fst = FST([(b"bb", 1), (b"dd", 2), (b"ff", 3)])
        assert fst.scan(b"cc", 5) == [(b"dd", 2), (b"ff", 3)]

    def test_scan_zero(self):
        fst = FST([(b"aa", 1)])
        assert fst.scan(b"aa", 0) == []

    def test_iterate_subtree(self):
        pairs = [(b"ax", 0), (b"ay", 1), (b"bz", 2)]
        fst = FST(pairs, dense_levels=0)
        child, _, _ = fst.step(0, ord("a"))
        assert list(fst.iterate_subtree(child)) == [(b"x", 0), (b"y", 1)]


class TestSizesAndCounters:
    def test_sparse_smaller_than_dense_for_low_fanout(self):
        pairs = int_pairs(2000)
        sparse = FST(pairs, dense_levels=0)
        dense = FST(pairs, dense_levels=64)
        assert sparse.sparse_size_bytes() > 0
        assert sparse.size_bytes() < dense.size_bytes()

    def test_visit_counters_by_region(self):
        pairs = int_pairs(200)
        fst = FST(pairs, dense_levels=2)
        fst.lookup(pairs[0][0])
        assert fst.counters.get("fst_dense_visit") >= 1
        assert fst.counters.get("fst_sparse_visit") >= 1

    def test_values_size(self):
        fst = FST(int_pairs(100))
        assert fst.values_size_bytes() == 800


class TestDenseCutoffHeuristic:
    def test_high_fanout_levels_go_dense(self):
        # Two full fanout-16 levels: average fanout 16 < 32 -> all sparse.
        keys = [bytes([a, b]) for a in range(16) for b in range(16)]
        levels = build_trie_levels([(key, 0) for key in keys])
        assert choose_dense_cutoff(levels) == 0
        # Fanout 64 > 32 -> level 0 dense.
        keys = sorted({bytes([a, b]) for a in range(64) for b in range(8)})
        levels = build_trie_levels([(key, 0) for key in keys])
        assert choose_dense_cutoff(levels) >= 1


@settings(max_examples=20, deadline=None)
@given(
    # The 0x00 terminator convention requires null-free raw keys.
    st.lists(
        st.lists(st.integers(min_value=1, max_value=255), min_size=1, max_size=6).map(bytes),
        unique=True,
        min_size=1,
        max_size=60,
    ),
    st.sampled_from(DENSE_CONFIGS),
)
def test_fst_matches_dict(raw_keys, dense_levels):
    keys = sorted({terminated(key) for key in raw_keys})
    pairs = [(key, index) for index, key in enumerate(keys)]
    fst = FST(pairs, dense_levels=dense_levels)
    for key, value in pairs:
        assert fst.lookup(key) == value
    assert list(fst.items()) == pairs
