"""Tests for FST binary serialization."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.tree import terminated
from repro.faults import FaultInjector, InjectedFault
from repro.fst import CorruptSerializationError, FST, fst_from_bytes, fst_to_bytes


def int_pairs(n, seed=0):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(2**44), n))
    return [(key.to_bytes(8, "big"), index) for index, key in enumerate(keys)]


class TestRoundtrip:
    @pytest.mark.parametrize("dense_levels", [0, 2, 64], ids=lambda d: f"dense={d}")
    def test_lookups_survive(self, dense_levels):
        pairs = int_pairs(1000)
        original = FST(pairs, dense_levels=dense_levels)
        loaded = FST.from_bytes(original.to_bytes())
        for key, value in pairs[::17]:
            assert loaded.lookup(key) == value
        assert loaded.lookup(b"\x00" * 8) is None

    def test_structure_preserved(self):
        pairs = int_pairs(500)
        original = FST(pairs, dense_levels=2)
        loaded = FST.from_bytes(original.to_bytes())
        assert loaded.num_keys == original.num_keys
        assert loaded.num_nodes == original.num_nodes
        assert loaded.num_dense_nodes == original.num_dense_nodes
        assert loaded.height == original.height
        assert loaded.dense_levels == original.dense_levels
        assert loaded.size_bytes() == original.size_bytes()

    def test_iteration_and_scans_survive(self):
        pairs = int_pairs(400)
        loaded = FST.from_bytes(FST(pairs).to_bytes())
        assert list(loaded.items()) == pairs
        assert loaded.scan(pairs[100][0], 20) == pairs[100:120]

    def test_empty_fst(self):
        loaded = FST.from_bytes(FST([]).to_bytes())
        assert loaded.num_keys == 0
        assert loaded.lookup(b"x") is None

    def test_negative_values(self):
        pairs = [(b"aa", -5), (b"bb", -(2**40))]
        loaded = FST.from_bytes(FST(pairs).to_bytes())
        assert loaded.lookup(b"aa") == -5
        assert loaded.lookup(b"bb") == -(2**40)

    def test_variable_length_keys(self):
        words = sorted(terminated(word) for word in [b"a", b"abc", b"b", b"bc"])
        pairs = [(word, index) for index, word in enumerate(words)]
        loaded = FST.from_bytes(FST(pairs).to_bytes())
        for word, index in pairs:
            assert loaded.lookup(word) == index

    def test_double_roundtrip_identical(self):
        pairs = int_pairs(300)
        blob = FST(pairs, dense_levels=1).to_bytes()
        assert FST.from_bytes(blob).to_bytes() == blob


class TestMalformedBlobs:
    def test_bad_magic(self):
        blob = FST(int_pairs(10)).to_bytes()
        with pytest.raises(ValueError):
            fst_from_bytes(b"XXXX" + blob[4:])

    def test_truncated_header(self):
        with pytest.raises(ValueError):
            fst_from_bytes(b"FST1\x00")

    def test_truncated_values(self):
        blob = FST(int_pairs(50)).to_bytes()
        with pytest.raises(ValueError):
            fst_from_bytes(blob[:-12])

    def test_module_functions_match_methods(self):
        fst = FST(int_pairs(20))
        assert fst_to_bytes(fst) == fst.to_bytes()


class TestCorruptionDetection:
    """Damaged blobs must raise, never return a wrong answer."""

    def test_corrupt_error_is_value_error(self):
        assert issubclass(CorruptSerializationError, ValueError)

    def test_every_truncation_rejected(self):
        blob = FST(int_pairs(60)).to_bytes()
        for cut in range(0, len(blob), 97):
            with pytest.raises(CorruptSerializationError):
                fst_from_bytes(blob[:cut])
        with pytest.raises(CorruptSerializationError):
            fst_from_bytes(blob[:-1])

    def test_every_sampled_bit_flip_rejected(self):
        blob = FST(int_pairs(60), dense_levels=2).to_bytes()
        for bit in range(0, len(blob) * 8, 131):
            corrupted = bytearray(blob)
            corrupted[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(CorruptSerializationError):
                fst_from_bytes(bytes(corrupted))

    def test_trailing_garbage_rejected(self):
        blob = FST(int_pairs(30)).to_bytes()
        with pytest.raises(CorruptSerializationError):
            fst_from_bytes(blob + b"\x00")

    def test_old_format_magic_rejected(self):
        blob = FST(int_pairs(10)).to_bytes()
        with pytest.raises(CorruptSerializationError):
            fst_from_bytes(b"FST1" + blob[4:])

    def test_loaded_fst_passes_invariant_validation(self):
        from repro.core.invariants import violations_of

        loaded = fst_from_bytes(FST(int_pairs(200), dense_levels=1).to_bytes())
        assert violations_of(loaded) == []


class TestSerializationFaultPoints:
    def test_encode_fault_leaves_fst_usable(self):
        fst = FST(int_pairs(40))
        with FaultInjector(site="fst.serialize.encode", fail_at=1), pytest.raises(
            InjectedFault
        ):
            fst_to_bytes(fst)
        blob = fst_to_bytes(fst)  # unharmed: serializes fine afterwards
        assert fst_from_bytes(blob).num_keys == fst.num_keys

    def test_decode_fault_propagates(self):
        blob = fst_to_bytes(FST(int_pairs(40)))
        with FaultInjector(site="fst.serialize.decode", fail_at=1), pytest.raises(
            InjectedFault
        ):
            fst_from_bytes(blob)
        assert fst_from_bytes(blob).num_keys == 40


@settings(max_examples=20, deadline=None)
@given(
    # The 0x00 terminator convention requires null-free raw keys.
    st.lists(
        st.lists(st.integers(min_value=1, max_value=255), min_size=1, max_size=5).map(bytes),
        unique=True,
        min_size=1,
        max_size=40,
    )
)
def test_roundtrip_property(raw_keys):
    keys = sorted({terminated(key) for key in raw_keys})
    pairs = [(key, index) for index, key in enumerate(keys)]
    loaded = FST.from_bytes(FST(pairs).to_bytes())
    for key, value in pairs:
        assert loaded.lookup(key) == value
    assert list(loaded.items()) == pairs
