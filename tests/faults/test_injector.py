"""Tests for the deterministic fault injector."""

import pytest

from repro.faults import FaultInjector, InjectedFault, active_injector, fault_point


class TestInstallation:
    def test_no_injector_is_a_noop(self):
        assert active_injector() is None
        fault_point("anything")  # must not raise

    def test_context_manager_installs_and_restores(self):
        with FaultInjector() as injector:
            assert active_injector() is injector
        assert active_injector() is None

    def test_nested_injectors_restore_previous(self):
        with FaultInjector() as outer:
            with FaultInjector() as inner:
                assert active_injector() is inner
            assert active_injector() is outer
        assert active_injector() is None


class TestObserverMode:
    def test_counts_sites_without_failing(self):
        with FaultInjector() as observer:
            fault_point("a.b.read")
            fault_point("a.b.read")
            fault_point("a.b.swap")
        assert observer.sites_seen() == {"a.b.read": 2, "a.b.swap": 1}
        assert observer.failures_injected == 0


class TestFailAtNth:
    def test_fails_exactly_at_nth_matching_call(self):
        with FaultInjector(fail_at=3) as injector:
            fault_point("x")
            fault_point("x")
            with pytest.raises(InjectedFault) as exc_info:
                fault_point("x")
            fault_point("x")  # call 4: past the armed index, no raise
        assert exc_info.value.site == "x"
        assert exc_info.value.call_number == 3
        assert injector.failures_injected == 1

    def test_fail_at_is_one_indexed(self):
        with pytest.raises(ValueError):
            FaultInjector(fail_at=0)
        with FaultInjector(fail_at=1), pytest.raises(InjectedFault):
            fault_point("first")


class TestSiteFilter:
    def test_exact_site_filter(self):
        with FaultInjector(site="a.swap", fail_at=1) as injector:
            fault_point("a.read")  # counted, not matching
            with pytest.raises(InjectedFault):
                fault_point("a.swap")
        assert injector.matching_calls == 1
        assert injector.calls_by_site == {"a.read": 1, "a.swap": 1}

    def test_prefix_filter_with_star(self):
        injector = FaultInjector(site="trie.expand.*")
        assert injector.matches("trie.expand.swap")
        assert injector.matches("trie.expand.read")
        assert not injector.matches("trie.compact.swap")

    def test_no_filter_matches_everything(self):
        assert FaultInjector().matches("anything.at.all")


class TestRateMode:
    def test_rate_is_seed_deterministic(self):
        def run(seed):
            failures = []
            with FaultInjector(rate=0.5, seed=seed) as injector:
                for call in range(100):
                    try:
                        fault_point("r")
                    except InjectedFault:
                        failures.append(call)
            return injector.failures_injected, failures

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_rate_zero_never_fails(self):
        with FaultInjector(rate=0.0) as injector:
            for _ in range(50):
                fault_point("r")
        assert injector.failures_injected == 0

    def test_rate_one_always_fails(self):
        with FaultInjector(rate=1.0) as injector:
            for _ in range(10):
                with pytest.raises(InjectedFault):
                    fault_point("r")
        assert injector.failures_injected == 10

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)


class TestMaxFailures:
    def test_caps_total_failures(self):
        with FaultInjector(rate=1.0, max_failures=2) as injector:
            with pytest.raises(InjectedFault):
                fault_point("m")
            with pytest.raises(InjectedFault):
                fault_point("m")
            fault_point("m")  # cap reached: passes through
        assert injector.failures_injected == 2

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(max_failures=-1)


class TestBookkeeping:
    def test_failures_by_site(self):
        with FaultInjector(rate=1.0, max_failures=3) as injector:
            for site in ("a", "a", "b"):
                with pytest.raises(InjectedFault):
                    fault_point(site)
        assert injector.failures_by_site == {"a": 2, "b": 1}

    def test_injected_fault_is_runtime_error(self):
        assert issubclass(InjectedFault, RuntimeError)


class TestMultiSiteFilter:
    def test_sequence_of_patterns_is_an_or(self):
        injector = FaultInjector(site=("wal.append", "snapshot.*"))
        assert injector.matches("wal.append")
        assert injector.matches("snapshot.swap")
        assert injector.matches("snapshot.write")
        assert not injector.matches("wal.truncate")

    def test_mixed_exact_and_prefix_injection(self):
        sites = ("durability.wal.append", "service.split.*")
        with FaultInjector(site=sites, rate=1.0, max_failures=2) as injector:
            with pytest.raises(InjectedFault):
                fault_point("durability.wal.append")
            fault_point("durability.wal.apply")  # not matched
            with pytest.raises(InjectedFault):
                fault_point("service.split.swap")
        assert injector.failures_by_site == {
            "durability.wal.append": 1,
            "service.split.swap": 1,
        }

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(site=("ok", ""))

    def test_empty_sequence_matches_everything(self):
        assert FaultInjector(site=()).matches("anything.at.all")
