"""Tests for the per-shard write-ahead log."""

import random
import struct

import pytest

from repro.durability.wal import (
    OP_DELETE,
    OP_PUT,
    LogSealedError,
    WalPoisonedError,
    WriteAheadLog,
    encode_frame,
    read_frames,
)
from repro.faults import FaultInjector, InjectedFault
from repro.fst.serialize import CorruptSerializationError
from repro.obs import Telemetry


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "shard.wal"


class TestAppendAndRead:
    def test_roundtrip_puts_and_deletes(self, wal_path):
        wal = WriteAheadLog(wal_path, sync="none", create=True)
        first, last = wal.append_batch(
            [(OP_PUT, 1, 10), (OP_PUT, b"key", -5), (OP_DELETE, 2, None)]
        )
        wal.close()
        assert (first, last) == (1, 3)
        frames, tail = read_frames(wal_path)
        assert [(f.lsn, f.op, f.key, f.value) for f in frames] == [
            (1, OP_PUT, 1, 10),
            (2, OP_PUT, b"key", -5),
            (3, OP_DELETE, 2, None),
        ]
        assert not tail.torn
        assert tail.reason is None

    def test_lsns_are_consecutive_across_batches(self, wal_path):
        wal = WriteAheadLog(wal_path, sync="batch", create=True)
        assert wal.append_batch([(OP_PUT, 1, 1)]) == (1, 1)
        assert wal.append_batch([(OP_PUT, 2, 2), (OP_PUT, 3, 3)]) == (2, 3)
        assert wal.last_lsn == 3
        wal.close()

    def test_reopen_continues_from_next_lsn(self, wal_path):
        wal = WriteAheadLog(wal_path, sync="none", create=True)
        wal.append_batch([(OP_PUT, 1, 1)])
        wal.close()
        reopened = WriteAheadLog(wal_path, sync="none", next_lsn=2)
        reopened.append_batch([(OP_PUT, 2, 2)])
        reopened.close()
        frames, _ = read_frames(wal_path)
        assert [frame.lsn for frame in frames] == [1, 2]

    def test_missing_file_reads_empty(self, tmp_path):
        frames, tail = read_frames(tmp_path / "never-written.wal")
        assert frames == [] and not tail.torn

    def test_empty_batch_rejected(self, wal_path):
        wal = WriteAheadLog(wal_path, sync="none", create=True)
        with pytest.raises(ValueError):
            wal.append_batch([])
        wal.close()


class TestTornTail:
    def test_truncated_final_frame_is_skipped_not_raised(self, wal_path):
        wal = WriteAheadLog(wal_path, sync="none", create=True)
        wal.append_batch([(OP_PUT, key, key) for key in range(5)])
        wal.close()
        blob = wal_path.read_bytes()
        wal_path.write_bytes(blob[:-3])  # tear the last frame
        frames, tail = read_frames(wal_path)
        assert len(frames) == 4
        assert tail.torn and tail.torn_bytes > 0
        assert "truncated" in tail.reason

    def test_crc_flip_stops_parsing_at_that_frame(self, wal_path):
        wal = WriteAheadLog(wal_path, sync="none", create=True)
        wal.append_batch([(OP_PUT, key, key) for key in range(3)])
        wal.close()
        blob = bytearray(wal_path.read_bytes())
        blob[-1] ^= 0xFF
        wal_path.write_bytes(bytes(blob))
        frames, tail = read_frames(wal_path)
        assert len(frames) == 2
        assert "checksum" in tail.reason

    def test_non_monotonic_lsn_is_corruption(self, wal_path):
        wal = WriteAheadLog(wal_path, sync="none", create=True)
        wal.append_batch([(OP_PUT, 1, 1)])
        wal.close()
        with open(wal_path, "ab") as handle:
            handle.write(encode_frame(1, OP_PUT, 2, 2))  # repeats LSN 1
        frames, tail = read_frames(wal_path)
        assert len(frames) == 1
        assert "does not advance" in tail.reason

    def test_bad_magic_raises(self, wal_path):
        wal_path.write_bytes(b"NOPE" + struct.pack("<I", 1))
        with pytest.raises(CorruptSerializationError):
            read_frames(wal_path)

    def test_tear_inside_file_header_rewrites_fresh_log(self, wal_path):
        # A crash between file creation and the header write leaves
        # fewer than 8 bytes; zero-padding to header size would
        # fabricate bad magic, so drop_torn_tail must rebuild the file.
        wal_path.write_bytes(b"RW")
        frames, tail = read_frames(wal_path)
        assert frames == [] and tail.torn and tail.valid_bytes == 0
        wal = WriteAheadLog(wal_path, sync="none", next_lsn=1)
        wal.drop_torn_tail(tail)
        wal.append_batch([(OP_PUT, 1, 1)])
        wal.close()
        frames, tail = read_frames(wal_path)
        assert [(f.lsn, f.key) for f in frames] == [(1, 1)]
        assert not tail.torn

    def test_drop_torn_tail_restores_appendability(self, wal_path):
        wal = WriteAheadLog(wal_path, sync="none", create=True)
        wal.append_batch([(OP_PUT, 1, 1), (OP_PUT, 2, 2)])
        wal.close()
        wal_path.write_bytes(wal_path.read_bytes()[:-5])
        frames, tail = read_frames(wal_path)
        with Telemetry() as telemetry:
            reopened = WriteAheadLog(wal_path, sync="none", next_lsn=frames[-1].lsn + 1)
            reopened.drop_torn_tail(tail)
            reopened.append_batch([(OP_PUT, 3, 3)])
            reopened.close()
            assert telemetry.registry.counter("durability.wal.torn_tails").value == 1
        frames, tail = read_frames(wal_path)
        assert [frame.lsn for frame in frames] == [1, 2]
        assert frames[-1].key == 3
        assert not tail.torn


class TestTruncation:
    def test_truncate_upto_drops_prefix(self, wal_path):
        wal = WriteAheadLog(wal_path, sync="none", create=True)
        wal.append_batch([(OP_PUT, key, key) for key in range(6)])
        kept = wal.truncate_upto(4)
        assert kept == 2
        wal.append_batch([(OP_PUT, 100, 100)])
        wal.close()
        frames, _ = read_frames(wal_path)
        assert [frame.lsn for frame in frames] == [5, 6, 7]

    def test_truncate_fault_leaves_old_log_intact(self, wal_path):
        wal = WriteAheadLog(wal_path, sync="none", create=True)
        wal.append_batch([(OP_PUT, key, key) for key in range(4)])
        with FaultInjector(site="durability.wal.truncate", fail_at=1):
            with pytest.raises(InjectedFault):
                wal.truncate_upto(2)
        frames, _ = read_frames(wal_path)
        assert [frame.lsn for frame in frames] == [1, 2, 3, 4]
        assert not list(wal_path.parent.glob("*.tmp"))
        wal.append_batch([(OP_PUT, 9, 9)])  # handle still usable
        wal.close()

    def test_aborted_truncation_does_not_leak_descriptors(self, wal_path):
        import os

        def open_fds_for(path):
            fd_dir = "/proc/self/fd"
            count = 0
            for name in os.listdir(fd_dir):
                try:
                    if os.readlink(f"{fd_dir}/{name}") == str(path):
                        count += 1
                except OSError:
                    continue
            return count

        wal = WriteAheadLog(wal_path, sync="none", create=True)
        wal.append_batch([(OP_PUT, key, key) for key in range(4)])
        baseline = open_fds_for(wal_path)
        for attempt in range(1, 4):
            with FaultInjector(site="durability.wal.truncate", fail_at=1):
                with pytest.raises(InjectedFault):
                    wal.truncate_upto(2)
            assert open_fds_for(wal_path) == baseline
        wal.append_batch([(OP_PUT, 9, 9)])
        wal.close()


class TestSealAndFaults:
    def test_sealed_log_refuses_appends(self, wal_path):
        wal = WriteAheadLog(wal_path, sync="none", create=True)
        wal.seal()
        with pytest.raises(LogSealedError):
            wal.append_batch([(OP_PUT, 1, 1)])
        wal.close()

    def test_append_fault_before_write_lands_nothing(self, wal_path):
        wal = WriteAheadLog(wal_path, sync="none", create=True)
        with FaultInjector(site="durability.wal.append", fail_at=1):
            with pytest.raises(InjectedFault):
                wal.append_batch([(OP_PUT, 1, 1)])
        wal.close()
        frames, tail = read_frames(wal_path)
        assert frames == [] and not tail.torn

    def test_failed_append_poisons_the_log(self, wal_path):
        # After a torn append the file may hold mid-file garbage that
        # read_frames stops at; acknowledging anything appended past it
        # would be a lost write on recovery, so the log must fence.
        wal = WriteAheadLog(
            wal_path, sync="none", create=True, tear_rng=random.Random(3)
        )
        wal.append_batch([(OP_PUT, 1, 1)])
        with Telemetry() as telemetry:
            with FaultInjector(site="durability.wal.append", fail_at=1):
                with pytest.raises(InjectedFault):
                    wal.append_batch([(OP_PUT, key, key) for key in range(2, 30)])
            assert telemetry.registry.counter("durability.wal.poisoned").value == 1
        assert wal.poisoned is not None
        with pytest.raises(WalPoisonedError):
            wal.append_batch([(OP_PUT, 99, 99)])
        with pytest.raises(WalPoisonedError):
            wal.truncate_upto(1)
        wal.close()
        # Recovery path: drop the torn tail and re-open a fresh instance.
        frames, tail = read_frames(wal_path)
        recovered = WriteAheadLog(
            wal_path, sync="none", next_lsn=(frames[-1].lsn if frames else 0) + 1
        )
        recovered.drop_torn_tail(tail)
        recovered.append_batch([(OP_PUT, 99, 99)])  # fence lifted
        recovered.close()
        frames, tail = read_frames(wal_path)
        assert frames[-1].key == 99 and not tail.torn

    def test_poisoning_without_tear_rng_still_fences(self, wal_path):
        # Production shape: a failed write() cannot prove how much of
        # the batch landed, so even a faulted-before-write append fences.
        wal = WriteAheadLog(wal_path, sync="none", create=True)
        with FaultInjector(site="durability.wal.append", fail_at=1):
            with pytest.raises(InjectedFault):
                wal.append_batch([(OP_PUT, 1, 1)])
        with pytest.raises(WalPoisonedError):
            wal.append_batch([(OP_PUT, 2, 2)])
        wal.close()

    def test_tear_rng_writes_partial_prefix_on_fault(self, wal_path):
        wal = WriteAheadLog(
            wal_path, sync="none", create=True, tear_rng=random.Random(11)
        )
        wal.append_batch([(OP_PUT, 1, 1)])
        clean_size = wal.size_bytes()
        with FaultInjector(site="durability.wal.append", fail_at=1):
            with pytest.raises(InjectedFault):
                wal.append_batch([(OP_PUT, key, key) for key in range(2, 40)])
        wal.close()
        torn_size = wal_path.stat().st_size
        assert torn_size >= clean_size  # a (possibly empty) prefix was written
        # A torn batch may legally surface a *prefix* of complete frames
        # (they were on disk before the crash, just never acknowledged);
        # what it can never do is reorder, skip, or corrupt frames.
        frames, _tail = read_frames(wal_path)
        assert [frame.lsn for frame in frames] == list(range(1, len(frames) + 1))
        assert frames[0].key == 1
        assert len(frames) <= 1 + 38  # never more than the attempted batch
