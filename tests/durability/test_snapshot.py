"""Tests for snapshot generations and corrupt-newest fallback."""

import pytest

from repro.durability.snapshot import SnapshotStore, decode_snapshot, encode_snapshot
from repro.faults import FaultInjector, InjectedFault
from repro.fst.serialize import CorruptSerializationError
from repro.obs import Telemetry


@pytest.fixture
def store(tmp_path):
    return SnapshotStore(tmp_path, "e00000000-p0000", retain=2)


class TestBlobFormat:
    def test_roundtrip(self):
        pairs = [(1, 10), (b"key", -3), (2**80, 5)]
        decoded, lsn = decode_snapshot(encode_snapshot(pairs, 42))
        assert decoded == pairs
        assert lsn == 42

    def test_empty_snapshot(self):
        decoded, lsn = decode_snapshot(encode_snapshot([], 0))
        assert decoded == [] and lsn == 0

    def test_single_bit_flip_is_rejected(self):
        blob = bytearray(encode_snapshot([(1, 10), (2, 20)], 7))
        blob[len(blob) // 2] ^= 0x01
        with pytest.raises(CorruptSerializationError):
            decode_snapshot(bytes(blob))

    def test_truncation_is_rejected(self):
        blob = encode_snapshot([(1, 10)], 1)
        with pytest.raises(CorruptSerializationError):
            decode_snapshot(blob[:-2])


class TestStoreLifecycle:
    def test_write_then_load_newest(self, store):
        store.write([(1, 1)], 5)
        store.write([(1, 1), (2, 2)], 9)
        pairs, lsn, skipped = store.load_newest()
        assert pairs == [(1, 1), (2, 2)]
        assert lsn == 9 and skipped == 0
        assert store.list_lsns() == [5, 9]

    def test_prune_returns_truncation_cutoff(self, store):
        for lsn in (3, 6, 9):
            store.write([(lsn, lsn)], lsn)
        cutoff = store.prune()
        assert cutoff == 6  # oldest *retained* generation
        assert store.list_lsns() == [6, 9]

    def test_prune_below_retention_keeps_everything(self, store):
        store.write([], 4)
        assert store.prune() == 4
        assert store.list_lsns() == [4]

    def test_load_with_no_snapshots_raises(self, store):
        with pytest.raises(CorruptSerializationError):
            store.load_newest()

    def test_swap_fault_leaves_previous_generation_and_no_temp(self, store, tmp_path):
        store.write([(1, 1)], 2)
        with FaultInjector(site="durability.snapshot.swap", fail_at=1):
            with pytest.raises(InjectedFault):
                store.write([(1, 1), (2, 2)], 8)
        pairs, lsn, _ = store.load_newest()
        assert pairs == [(1, 1)] and lsn == 2
        assert not list(tmp_path.glob("*.tmp"))


class TestCorruptNewestFallback:
    def test_falls_back_to_previous_generation_with_counter(self, store, tmp_path):
        store.write([(1, 1)], 3)
        store.write([(1, 1), (2, 2)], 7)
        newest = tmp_path / "e00000000-p0000.00000000000000000007.snap"
        blob = bytearray(newest.read_bytes())
        blob[-1] ^= 0xFF
        newest.write_bytes(bytes(blob))
        with Telemetry() as telemetry:
            pairs, lsn, skipped = store.load_newest()
            assert (
                telemetry.registry.counter("durability.snapshot.corrupt_skipped").value
                == 1
            )
        assert pairs == [(1, 1)]
        assert lsn == 3 and skipped == 1

    def test_all_generations_corrupt_raises(self, store, tmp_path):
        store.write([(1, 1)], 3)
        for path in tmp_path.glob("*.snap"):
            path.write_bytes(b"garbage")
        with pytest.raises(CorruptSerializationError):
            store.load_newest()
