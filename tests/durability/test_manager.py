"""Tests for the durability root: manifest, partitioner specs, orphans."""

import pytest

from repro.durability import DurabilityManager, Manifest, build_partitioner, partitioner_spec
from repro.faults import FaultInjector, InjectedFault
from repro.fst.serialize import CorruptSerializationError
from repro.service.partition import HashPartitioner, RangePartitioner


@pytest.fixture
def manager(tmp_path):
    return DurabilityManager(tmp_path / "store", sync="none")


class TestManifest:
    def test_roundtrip(self, manager):
        manifest = Manifest(
            epoch=3,
            partitioner={"kind": "hash", "num_shards": 4},
            shards=[DurabilityManager.log_id(3, i) for i in range(4)],
        )
        manager.publish_manifest(manifest)
        assert manager.read_manifest() == manifest
        assert manager.has_manifest()

    def test_missing_manifest_raises_file_not_found(self, manager):
        assert not manager.has_manifest()
        with pytest.raises(FileNotFoundError):
            manager.read_manifest()

    def test_corrupt_manifest_rejected(self, manager):
        manager.publish_manifest(
            Manifest(epoch=0, partitioner={"kind": "hash", "num_shards": 1}, shards=["a"])
        )
        text = manager.manifest_path.read_text().replace('"epoch": 0', '"epoch": 9')
        manager.manifest_path.write_text(text)
        with pytest.raises(CorruptSerializationError):
            manager.read_manifest()

    def test_swap_fault_keeps_previous_manifest(self, manager):
        old = Manifest(epoch=0, partitioner={"kind": "hash", "num_shards": 1}, shards=["a"])
        manager.publish_manifest(old)
        new = Manifest(epoch=1, partitioner={"kind": "hash", "num_shards": 2}, shards=["a", "b"])
        with FaultInjector(site="durability.manifest.swap", fail_at=1):
            with pytest.raises(InjectedFault):
                manager.publish_manifest(new)
        assert manager.read_manifest() == old
        assert not list(manager.root.glob("*.tmp"))

    def test_allow_fault_false_bypasses_injection(self, manager):
        manifest = Manifest(epoch=0, partitioner={"kind": "hash", "num_shards": 1}, shards=["a"])
        with FaultInjector(site="durability.manifest.swap", fail_at=1):
            manager.publish_manifest(manifest, allow_fault=False)  # must not raise
        assert manager.read_manifest() == manifest


class TestPartitionerSpecs:
    def test_hash_roundtrip(self):
        rebuilt = build_partitioner(partitioner_spec(HashPartitioner(8)))
        assert isinstance(rebuilt, HashPartitioner)
        assert rebuilt.num_shards == 8

    def test_range_int_roundtrip(self):
        original = RangePartitioner([100, 2**70])
        rebuilt = build_partitioner(partitioner_spec(original))
        assert isinstance(rebuilt, RangePartitioner)
        assert list(rebuilt.boundaries) == [100, 2**70]

    def test_range_bytes_roundtrip(self):
        original = RangePartitioner([b"dog", b"mouse"])
        rebuilt = build_partitioner(partitioner_spec(original))
        assert list(rebuilt.boundaries) == [b"dog", b"mouse"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(CorruptSerializationError):
            build_partitioner({"kind": "alien"})


class TestOrphanSweep:
    def test_unreferenced_files_are_removed(self, manager):
        kept = manager.create_log("e00000000-p0000", [(1, 1)])
        kept.close()
        orphan = manager.create_log("e00000001-p0000", [(2, 2)])
        orphan.close()
        (manager.wal_dir / "stray.wal.123.tmp").write_bytes(b"x")
        (manager.snap_dir / "stray.snap.456.tmp").write_bytes(b"x")
        manifest = Manifest(
            epoch=0,
            partitioner={"kind": "hash", "num_shards": 1},
            shards=["e00000000-p0000"],
        )
        removed = manager.cleanup_orphans(manifest)
        assert removed == 4  # orphan wal + orphan snap + two temp files
        assert (manager.wal_dir / "e00000000-p0000.wal").exists()
        assert not (manager.wal_dir / "e00000001-p0000.wal").exists()
        assert not list(manager.snap_dir.glob("e00000001-p0000.*"))
        assert not list(manager.wal_dir.glob("*.tmp"))

    def test_create_log_destroys_stale_same_id_files(self, manager):
        first = manager.create_log("e00000000-p0000", [(1, 1), (2, 2)])
        first.append_put(3, 3)
        first.checkpoint([(1, 1), (2, 2), (3, 3)])
        first.close()
        fresh = manager.create_log("e00000000-p0000", [(9, 9)])
        fresh.close()
        reopened, result = manager.recover_log("e00000000-p0000")
        reopened.close()
        assert result.state == {9: 9}  # no stale frames or snapshots replayed
