"""Tests for the durable key/value wire codec."""

import pytest

from repro.durability.codec import decode_key, decode_value, encode_key, encode_value
from repro.fst.serialize import CorruptSerializationError


class TestKeyRoundtrip:
    @pytest.mark.parametrize(
        "key",
        [0, 1, -1, 255, 256, -256, 2**63 - 1, -(2**63), 2**130, -(2**200)],
    )
    def test_int_keys(self, key):
        blob = encode_key(key)
        decoded, offset = decode_key(blob, 0)
        assert decoded == key
        assert offset == len(blob)

    @pytest.mark.parametrize("key", [b"", b"a", b"hello", bytes(range(256))])
    def test_bytes_keys(self, key):
        blob = encode_key(key)
        decoded, offset = decode_key(blob, 0)
        assert decoded == key
        assert offset == len(blob)

    def test_bytearray_normalizes_to_bytes(self):
        decoded, _ = decode_key(encode_key(bytearray(b"xy")), 0)
        assert decoded == b"xy"
        assert isinstance(decoded, bytes)

    def test_consecutive_keys_decode_in_sequence(self):
        blob = encode_key(7) + encode_key(b"k") + encode_key(-9)
        first, offset = decode_key(blob, 0)
        second, offset = decode_key(blob, offset)
        third, offset = decode_key(blob, offset)
        assert (first, second, third) == (7, b"k", -9)
        assert offset == len(blob)

    def test_rejects_bool_and_other_types(self):
        with pytest.raises(TypeError):
            encode_key(True)
        with pytest.raises(TypeError):
            encode_key("string")  # type: ignore[arg-type]


class TestValueRoundtrip:
    @pytest.mark.parametrize("value", [0, 1, -1, 10**30, -(10**30)])
    def test_values(self, value):
        blob = encode_value(value)
        decoded, offset = decode_value(blob, 0)
        assert decoded == value
        assert offset == len(blob)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            encode_value(False)


class TestCorruptionRejection:
    def test_truncated_key_header(self):
        with pytest.raises(CorruptSerializationError):
            decode_key(b"\x01\x01", 0)

    def test_key_payload_overrun(self):
        blob = encode_key(b"abc")[:-1]
        with pytest.raises(CorruptSerializationError):
            decode_key(blob, 0)

    def test_unknown_tag(self):
        blob = b"\x7f" + encode_key(1)[1:]
        with pytest.raises(CorruptSerializationError):
            decode_key(blob, 0)

    def test_empty_int_payload(self):
        blob = b"\x01\x00\x00\x00\x00"
        with pytest.raises(CorruptSerializationError):
            decode_key(blob, 0)

    def test_value_overrun(self):
        with pytest.raises(CorruptSerializationError):
            decode_value(encode_value(77)[:-1], 0)

    def test_absurd_declared_length_is_garbage(self):
        blob = b"\x02\xff\xff\xff\xff"
        with pytest.raises(CorruptSerializationError):
            decode_key(blob, 0)
