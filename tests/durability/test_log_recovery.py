"""Recovery-path tests for :class:`DurableLog`.

Covers the ISSUE-6 deterministic bug-surface satellites: WAL replay
idempotence (the same tail replayed twice yields identical state), the
torn-final-frame contract (skipped with a counter, never an exception),
and the corrupted-newest-snapshot fallback (previous generation + a
longer WAL replay, zero lost acknowledged writes).
"""

import random

import pytest

from repro.durability import DurableLog
from repro.faults import FaultInjector, InjectedFault
from repro.obs import Telemetry


@pytest.fixture
def dirs(tmp_path):
    wal_dir = tmp_path / "wal"
    snap_dir = tmp_path / "snap"
    wal_dir.mkdir()
    snap_dir.mkdir()
    return wal_dir, snap_dir


def make_log(dirs, pairs=((1, 10), (2, 20))):
    wal_dir, snap_dir = dirs
    return DurableLog.create("log-a", wal_dir, snap_dir, list(pairs), sync="none")


class TestReplayIdempotence:
    def test_recovering_twice_yields_identical_state(self, dirs):
        log = make_log(dirs)
        log.append_put_many([(3, 30), (4, 40)])
        log.append_delete(1)
        log.append_put(3, 33)
        log.close()
        _first_log, first = DurableLog.recover("log-a", *dirs, sync="none")
        _first_log.close()
        _second_log, second = DurableLog.recover("log-a", *dirs, sync="none")
        _second_log.close()
        assert first.state == second.state == {2: 20, 3: 33, 4: 40}
        assert first.last_lsn == second.last_lsn == 4
        assert first.frames_replayed == second.frames_replayed == 4

    def test_replay_applies_operations_in_lsn_order(self, dirs):
        log = make_log(dirs, pairs=[])
        log.append_put(1, 1)
        log.append_put(1, 2)
        log.append_delete(1)
        log.append_put(1, 3)
        log.close()
        _log, result = DurableLog.recover("log-a", *dirs, sync="none")
        _log.close()
        assert result.state == {1: 3}

    def test_snapshot_lsn_frames_are_not_replayed_twice(self, dirs):
        log = make_log(dirs)
        log.append_put(5, 50)
        log.checkpoint([(1, 10), (2, 20), (5, 50)])
        log.append_put(6, 60)
        log.close()
        _log, result = DurableLog.recover("log-a", *dirs, sync="none")
        _log.close()
        assert result.snapshot_lsn == 1
        assert result.frames_replayed == 1  # only the post-checkpoint frame
        assert result.state == {1: 10, 2: 20, 5: 50, 6: 60}


class TestTornFinalFrame:
    def test_torn_tail_is_counted_not_raised(self, dirs):
        wal_dir, _snap_dir = dirs
        log = make_log(dirs)
        log.append_put(3, 30)
        log.close()
        wal_path = wal_dir / "log-a.wal"
        wal_path.write_bytes(wal_path.read_bytes()[:-4])
        with Telemetry() as telemetry:
            recovered, result = DurableLog.recover("log-a", *dirs, sync="none")
            assert telemetry.registry.counter("durability.wal.torn_tails").value == 1
        assert result.torn_bytes > 0
        assert result.state == {1: 10, 2: 20}  # torn record never acked
        # The file was repaired: appends after recovery read back cleanly.
        recovered.append_put(9, 90)
        recovered.close()
        _log, rerun = DurableLog.recover("log-a", *dirs, sync="none")
        _log.close()
        assert rerun.state == {1: 10, 2: 20, 9: 90}
        assert rerun.torn_bytes == 0

    def test_injected_tear_recovers_to_pre_batch_state(self, dirs):
        wal_dir, snap_dir = dirs
        log = DurableLog.create(
            "log-a", wal_dir, snap_dir, [(1, 10)], sync="none",
            tear_rng=random.Random(5),
        )
        log.append_put(2, 20)  # acked
        with FaultInjector(site="durability.wal.append", fail_at=1):
            with pytest.raises(InjectedFault):
                log.append_put_many([(key, key) for key in range(50, 80)])
        log.close()
        _log, result = DurableLog.recover("log-a", *dirs, sync="none")
        _log.close()
        # Every acked write survives; the torn batch may surface a prefix
        # of complete frames (written before the crash, never acked) but
        # nothing corrupt and nothing outside the attempted batch.
        assert result.state[1] == 10 and result.state[2] == 20
        extras = set(result.state) - {1, 2}
        assert extras <= set(range(50, 80))
        assert all(result.state[key] == key for key in extras)

    def test_no_acknowledgment_lands_after_a_torn_append(self, dirs):
        # The fenced-WAL contract: once an append tears, a concurrent
        # writer must NOT be able to ack to the same log — its frames
        # would sit after mid-file garbage, where replay cannot reach
        # them, silently losing an acknowledged write on recovery.
        from repro.durability import WalPoisonedError

        wal_dir, snap_dir = dirs
        log = DurableLog.create(
            "log-a", wal_dir, snap_dir, [(1, 10)], sync="none",
            tear_rng=random.Random(7),
        )
        log.append_put(2, 20)  # acked
        with FaultInjector(site="durability.wal.append", fail_at=1):
            with pytest.raises(InjectedFault):
                log.append_put_many([(key, key) for key in range(50, 80)])
        # The would-be lost ack: raises instead of acknowledging.
        with pytest.raises(WalPoisonedError):
            log.append_put(3, 30)
        log.close()
        recovered, result = DurableLog.recover("log-a", *dirs, sync="none")
        # Acked state intact, the fenced write absent (never acked),
        # and the re-opened log accepts appends again.
        assert result.state[1] == 10 and result.state[2] == 20
        assert 3 not in result.state
        recovered.append_put(3, 30)
        recovered.close()


class TestCorruptSnapshotFallback:
    def test_falls_back_and_replays_longer_tail(self, dirs):
        _wal_dir, snap_dir = dirs
        log = make_log(dirs)
        log.append_put(3, 30)
        log.checkpoint([(1, 10), (2, 20), (3, 30)])  # snapshot at LSN 1
        log.append_put(4, 40)  # acked after the checkpoint
        log.close()
        newest = max(snap_dir.glob("log-a.*.snap"))
        blob = bytearray(newest.read_bytes())
        blob[10] ^= 0x40
        newest.write_bytes(bytes(blob))
        _log, result = DurableLog.recover("log-a", *dirs, sync="none")
        _log.close()
        assert result.snapshots_skipped == 1
        assert result.snapshot_lsn == 0  # fell back to the base generation
        assert result.frames_replayed == 2  # longer tail: LSNs 1 and 2
        assert result.state == {1: 10, 2: 20, 3: 30, 4: 40}  # zero lost acks

    def test_truncation_never_outruns_oldest_retained_snapshot(self, dirs):
        wal_dir, snap_dir = dirs
        log = make_log(dirs, pairs=[])
        state = {}
        for round_number in range(5):
            batch = [(round_number * 10 + i, round_number) for i in range(8)]
            log.append_put_many(batch)
            state.update(batch)
            log.checkpoint(sorted(state.items()))
        log.close()
        # Kill the newest generation; the previous one must still have
        # its full tail available in the (truncated-but-not-too-far) WAL.
        newest = max(snap_dir.glob("log-a.*.snap"))
        newest.write_bytes(b"junk")
        _log, result = DurableLog.recover("log-a", *dirs, sync="none")
        _log.close()
        assert result.snapshots_skipped == 1
        assert result.state == state


class TestRecoveryCrashes:
    def test_recovery_killed_mid_replay_then_retried(self, dirs):
        log = make_log(dirs)
        log.append_put_many([(key, key) for key in range(10, 20)])
        log.close()
        with FaultInjector(site="durability.wal.apply", fail_at=4):
            with pytest.raises(InjectedFault):
                DurableLog.recover("log-a", *dirs, sync="none")
        _log, result = DurableLog.recover("log-a", *dirs, sync="none")
        _log.close()
        expected = {1: 10, 2: 20}
        expected.update({key: key for key in range(10, 20)})
        assert result.state == expected
