"""Severity gating: errors always fail, baselined warnings do not."""

import json
from pathlib import Path

from repro.analysis.baseline import (
    baseline_key,
    load_baseline,
    partition,
    write_baseline,
)
from repro.analysis.cli import main
from repro.analysis.core import Finding


def _warning(message="leak", path="a.py", symbol="f"):
    return Finding(
        path=path, line=3, col=1, rule="RA007",
        message=message, symbol=symbol, severity="warning",
    )


def _error():
    return Finding(
        path="a.py", line=9, col=1, rule="RA008",
        message="acked-then-lost", symbol="g", severity="error",
    )


class TestPartition:
    def test_baselined_warning_is_inactive(self):
        warning = _warning()
        active, baselined = partition(
            [warning, _error()], {baseline_key(warning)}
        )
        assert baselined == [warning]
        assert active == [_error()]

    def test_error_cannot_be_baselined(self):
        error = _error()
        active, baselined = partition([error], {baseline_key(error)})
        assert active == [error]
        assert baselined == []

    def test_match_ignores_line_drift(self):
        # The key is (rule, path, symbol, message): a baselined warning
        # that moved down the file stays baselined.
        recorded = _warning()
        drifted = Finding(
            path=recorded.path, line=80, col=5, rule=recorded.rule,
            message=recorded.message, symbol=recorded.symbol,
            severity="warning",
        )
        active, baselined = partition([drifted], {baseline_key(recorded)})
        assert baselined == [drifted]
        assert active == []


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = tmp_path / "baseline.json"
        count = write_baseline(path, [_warning(), _error()])
        assert count == 1  # only the warning is recorded
        assert load_baseline(path) == {baseline_key(_warning())}

    def test_unreadable_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "missing.json") == set()
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_baseline(bad) == set()


def _leaky_tree(tmp_path):
    """One repro-scoped file whose only finding is an RA007 warning."""
    root = tmp_path / "repro" / "durability"
    root.mkdir(parents=True)
    leak = root / "leak.py"
    leak.write_text(
        "def never_closed(path):\n"
        "    h = open(path, 'rb')\n"
        "    return h.read()\n"
    )
    return leak


class TestCliGating:
    def test_unbaselined_warning_gates(self, tmp_path, capsys):
        leak = _leaky_tree(tmp_path)
        code = main([str(leak), "--baseline", str(tmp_path / "b.json")])
        out = capsys.readouterr().out
        assert code == 1
        assert "RA007" in out and "(warning)" in out

    def test_write_baseline_then_pass(self, tmp_path, capsys):
        leak = _leaky_tree(tmp_path)
        baseline = tmp_path / "b.json"
        code = main([str(leak), "--baseline", str(baseline), "--write-baseline"])
        assert code == 0
        assert baseline.exists()
        capsys.readouterr()
        code = main(
            [str(leak), "--baseline", str(baseline), "--format", "json"]
        )
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["findings"] == []
        assert report["summary"]["baselined"] == 1

    def test_baseline_does_not_hide_new_warnings(self, tmp_path, capsys):
        leak = _leaky_tree(tmp_path)
        baseline = tmp_path / "b.json"
        main([str(leak), "--baseline", str(baseline), "--write-baseline"])
        capsys.readouterr()
        # A second, different leak appears: still gates.
        leak.write_text(
            leak.read_text()
            + "\n\ndef second_leak(path):\n"
            "    g = open(path, 'rb')\n"
            "    return g.read()\n"
        )
        code = main([str(leak), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert code == 1
        assert "second_leak" in out

    def test_checked_in_baseline_is_valid_and_empty(self):
        from tests.analysis.helpers import REPO_ROOT

        path = REPO_ROOT / ".repro-analysis-baseline.json"
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        # The tree carries no accepted warnings today; additions need
        # review (docs/static_analysis.md).
        assert payload["entries"] == []
        assert load_baseline(Path(path)) == set()
