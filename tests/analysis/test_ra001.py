"""RA001 lock discipline: fixtures, scoping, and the three checks.

The acquisition-order check that used to live here is now RA006's
derived lock-order graph (tests/analysis/test_ra006.py); the
``inverted_order`` shape in the bad fixture is asserted there.
"""

from repro.analysis.rules.ra001_locks import DEFAULT_SCOPE, LockDisciplineRule

from tests.analysis.helpers import fixture_project


def _run(*fixtures, modules=("*",)):
    project = fixture_project(*fixtures)
    rule = LockDisciplineRule(modules=modules)
    return sorted(rule.run(project))


class TestFiringFixture:
    def test_every_check_fires(self):
        findings = _run("ra001_bad.py")
        by_symbol = {}
        for finding in findings:
            by_symbol.setdefault(finding.symbol.rsplit(".", 1)[-1], []).append(finding)
        assert any("blocking call submit()" in f.message for f in by_symbol["blocking_under_lock"])
        assert any(
            "uncaptured routing-table read" in f.message
            for f in by_symbol["uncaptured_subscript"]
        )
        assert any("uncaptured table read" in f.message for f in by_symbol["uncaptured_routing"])
        assert any("lost-write race" in f.message for f in by_symbol["unrevalidated_write"])

    def test_findings_carry_locations(self):
        findings = _run("ra001_bad.py")
        assert all(f.rule == "RA001" for f in findings)
        assert all(f.line > 0 and f.col > 0 for f in findings)


class TestSilentFixture:
    def test_good_router_is_clean(self):
        assert _run("ra001_good.py") == []


class TestScoping:
    def test_default_scope_skips_fixture_modules(self):
        findings = _run("ra001_bad.py", modules=DEFAULT_SCOPE)
        assert findings == []

    def test_default_scope_matches_service_modules(self):
        from fnmatch import fnmatchcase

        assert any(
            fnmatchcase("repro.service.router", pattern) for pattern in DEFAULT_SCOPE
        )
