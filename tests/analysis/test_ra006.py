"""RA006 derived lock-order graph: cycles, witnesses, documented seed."""

from repro.analysis.rules.ra006_lockgraph import (
    DOCUMENTED_WITNESS,
    LockOrderGraphRule,
    _documented_edges,
)

from tests.analysis.helpers import fixture_project


def _run(fixture):
    project = fixture_project(fixture)
    return sorted(LockOrderGraphRule(modules=("*",)).run(project))


class TestFiringFixture:
    def test_exact_finding_count(self):
        findings = _run("ra006_bad.py")
        assert len(findings) == 2
        assert all(f.rule == "RA006" for f in findings)

    def test_two_path_cycle_reports_both_witness_paths(self):
        (pair,) = [f for f in _run("ra006_bad.py") if "Pair" in f.symbol]
        assert "flush_then_commit" in pair.message
        assert "commit_then_flush" in pair.message
        assert "_flush_lock" in pair.message and "_commit_lock" in pair.message

    def test_documented_order_inversion_is_a_cycle(self):
        (inverted,) = [f for f in _run("ra006_bad.py") if "Router" in f.symbol]
        assert inverted.symbol.endswith("Router.inverted")
        assert DOCUMENTED_WITNESS in inverted.message
        assert "_guard -> write_gate" in inverted.message


class TestSilentFixture:
    def test_consistent_order_is_clean(self):
        assert _run("ra006_good.py") == []


class TestDocumentedSeed:
    def test_service_hierarchy_edges_present(self):
        edges = set(_documented_edges())
        assert ("_admin_lock", "write_gate") in edges
        assert ("write_gate", "op_lock") in edges
        assert ("write_gate", "_guard") in edges

    def test_same_kind_nesting_is_not_an_edge(self):
        # Two shard write_gates in one `with` are ordered by shard id
        # (RA001's business), not by the kind graph.
        rule = LockOrderGraphRule(modules=("*",))
        graph = rule.build_graph(fixture_project("ra006_good.py"))
        assert ("write_gate", "write_gate") not in graph
