"""The new rules against history: PR-6-era bugs, reintroduced.

Each test takes a pristine production file, applies the minimal AST
mutation that recreates a bug this repo has already shipped and fixed,
and asserts the matching rule reports it — proof the rule would have
caught the regression at review time.  The pristine twin of each test
pins the zero-findings side so the rules stay precise, not just loud.
"""

import ast

from repro.analysis.loader import load_module
from repro.analysis.project import Project
from repro.analysis.rules.ra006_lockgraph import (
    DOCUMENTED_WITNESS,
    LockOrderGraphRule,
)
from repro.analysis.rules.ra007_handles import HandleLifecycleRule
from repro.analysis.rules.ra008_walfence import WalFenceRule

from tests.analysis.helpers import REPO_ROOT

SHARD = REPO_ROOT / "src" / "repro" / "service" / "shard.py"
WAL = REPO_ROOT / "src" / "repro" / "durability" / "wal.py"
REPLICA_SET = REPO_ROOT / "src" / "repro" / "replication" / "replica_set.py"


def _findings(rule, path):
    return sorted(rule.run(Project([load_module(path)])))


def _mutate(tmp_path, source_path, transform):
    mutated = tmp_path / f"{source_path.stem}_mutated.py"
    mutated.write_text(transform(source_path.read_text()))
    return mutated


# -- RA008: apply-before-append in Shard.put ----------------------------
def _ack_before_append(source: str) -> str:
    """Move ``self.index.insert`` above the WAL append in ``Shard.put``."""
    tree = ast.parse(source)
    mutated = False
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "put":
            for inner in ast.walk(node):
                if (
                    isinstance(inner, ast.With)
                    and ast.unparse(inner.items[0].context_expr) == "self._guard()"
                    and "self.index.insert" in ast.unparse(inner.body[-1])
                ):
                    inner.body = [inner.body[0], inner.body[-1], *inner.body[1:-1]]
                    mutated = True
    if not mutated:
        raise AssertionError("Shard.put guard body not found")
    return ast.unparse(ast.fix_missing_locations(tree))


class TestWalFenceMutation:
    def test_ack_first_put_makes_ra008_fire(self, tmp_path):
        mutated = _mutate(tmp_path, SHARD, _ack_before_append)
        findings = [
            f
            for f in _findings(WalFenceRule(modules=("*",)), mutated)
            if "before the durable WAL append" in f.message
        ]
        assert findings, "RA008 no longer detects apply-before-append"
        assert any(f.symbol.endswith("Shard.put") for f in findings)

    def test_pristine_shard_is_clean(self):
        assert _findings(WalFenceRule(modules=("*",)), SHARD) == []


# -- RA007: the truncate_upto abort-path fd leak ------------------------
def _strip_abort_close(source: str) -> str:
    """Remove the in-handler close() before the reopen — the PR-6 leak."""
    tree = ast.parse(source)
    mutated = False
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "truncate_upto":
            for handler in ast.walk(node):
                if not isinstance(handler, ast.ExceptHandler):
                    continue
                kept = []
                for stmt in handler.body:
                    if isinstance(stmt, ast.Try) and "self._handle.close()" in ast.unparse(stmt):
                        mutated = True
                        continue
                    kept.append(stmt)
                handler.body = kept
    if not mutated:
        raise AssertionError("truncate_upto abort-path close not found")
    return ast.unparse(ast.fix_missing_locations(tree))


class TestHandleLifecycleMutation:
    def test_stripping_abort_close_makes_ra007_fire(self, tmp_path):
        mutated = _mutate(tmp_path, WAL, _strip_abort_close)
        findings = [
            f
            for f in _findings(HandleLifecycleRule(modules=("*",)), mutated)
            if "reassigning self._handle" in f.message
        ]
        assert findings, "RA007 no longer detects the truncate abort-path leak"
        assert any(f.symbol.endswith("truncate_upto") for f in findings)
        assert any("in this except handler" in f.message for f in findings)

    def test_pristine_wal_has_no_reassign_finding(self):
        findings = [
            f
            for f in _findings(HandleLifecycleRule(modules=("*",)), WAL)
            if "reassigning self._handle" in f.message
        ]
        assert findings == []


# -- RA006: inverted gate/guard nesting in revive -----------------------
def _invert_revive_nesting(source: str) -> str:
    """Acquire the shard guard before the write gate in ``revive``."""
    tree = ast.parse(source)
    mutated = False
    for node in ast.walk(tree):
        if isinstance(node, ast.With) and len(node.items) == 2:
            first, second = (ast.unparse(item.context_expr) for item in node.items)
            if first == "self.write_gate" and second == "self._guard()":
                node.items.reverse()
                mutated = True
    if not mutated:
        raise AssertionError("revive write_gate/_guard nesting not found")
    return ast.unparse(ast.fix_missing_locations(tree))


class TestLockGraphMutation:
    def test_inverted_nesting_makes_ra006_fire(self, tmp_path):
        mutated = _mutate(tmp_path, REPLICA_SET, _invert_revive_nesting)
        findings = _findings(LockOrderGraphRule(modules=("*",)), mutated)
        assert findings, "RA006 no longer detects inverted gate/guard nesting"
        (cycle,) = findings
        # The cycle names both paths: the observed inverted site and the
        # documented hierarchy it contradicts.
        assert "revive" in cycle.message
        assert DOCUMENTED_WITNESS in cycle.message
        assert "_guard -> write_gate" in cycle.message

    def test_pristine_replica_set_is_clean(self):
        assert _findings(LockOrderGraphRule(modules=("*",)), REPLICA_SET) == []
