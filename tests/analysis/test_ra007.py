"""RA007 handle lifecycle: the two leak shapes, and every safe shape."""

from repro.analysis.rules.ra007_handles import HandleLifecycleRule

from tests.analysis.helpers import fixture_project


def _run(fixture):
    project = fixture_project(fixture)
    return sorted(HandleLifecycleRule(modules=("*",)).run(project))


class TestFiringFixture:
    def test_exact_finding_count(self):
        findings = _run("ra007_bad.py")
        assert len(findings) == 3
        assert all(f.rule == "RA007" for f in findings)

    def test_findings_are_warnings(self):
        # RA007's ownership tracking is approximate by design, so its
        # findings gate through the baseline, not unconditionally.
        assert all(f.severity == "warning" for f in _run("ra007_bad.py"))

    def test_abort_path_reassign_without_close(self):
        (reassign,) = [f for f in _run("ra007_bad.py") if "reassigning" in f.message]
        assert reassign.symbol.endswith("Wal.truncate")
        assert "in this except handler" in reassign.message

    def test_never_closed_and_straightline_close(self):
        messages = {f.symbol.rsplit(".", 1)[-1]: f.message for f in _run("ra007_bad.py")}
        assert "never closed" in messages["never_closed"]
        assert "only closed on the straight-line path" in messages["straightline_close"]


class TestSilentFixture:
    def test_safe_shapes_are_clean(self):
        # finally-close, `with` blocks, close-before-reassign in the
        # handler, and ownership handoff are all silent.
        assert _run("ra007_good.py") == []
