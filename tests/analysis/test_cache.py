"""The incremental engine: warm replay, closure invalidation, changed-only."""

import json
import shutil
import subprocess

from repro.analysis.cache import (
    AnalysisCache,
    engine_fingerprint,
    import_closure,
    module_deps,
)
from repro.analysis.cli import main
from repro.analysis.loader import load_module

from tests.analysis.helpers import FIXTURES


def _tree(tmp_path):
    """A tiny repro-named tree: one file with findings, one importer, one loner."""
    root = tmp_path / "repro" / "durability"
    root.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text("")
    (root / "__init__.py").write_text("")
    bad = root / "bad.py"
    shutil.copy(FIXTURES / "ra008_bad.py", bad)
    (root / "importer.py").write_text(
        "from repro.durability.bad import Shard\n\n\nKIND = Shard\n"
    )
    (root / "loner.py").write_text("VALUE = 1\n")
    return tmp_path / "repro"


def _run(tmp_path, tree, *extra):
    argv = [
        str(tree),
        "--cache",
        "--cache-dir",
        str(tmp_path / "cache"),
        "--format",
        "json",
        "--baseline",
        str(tmp_path / "baseline.json"),
        *extra,
    ]
    return main(argv)


class TestWarmReplay:
    def test_warm_run_replays_identical_findings(self, tmp_path, capsys):
        tree = _tree(tmp_path)
        code_cold = _run(tmp_path, tree)
        cold = capsys.readouterr()
        code_warm = _run(tmp_path, tree)
        warm = capsys.readouterr()
        assert code_cold == code_warm == 1  # RA008 findings in bad.py
        assert json.loads(cold.out) == json.loads(warm.out)
        assert "cache: cold" in cold.err
        assert "cache: warm" in warm.err

    def test_engine_change_invalidates_everything(self, tmp_path, capsys):
        tree = _tree(tmp_path)
        _run(tmp_path, tree)
        manifest_path = tmp_path / "cache" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["engine"] = "stale-fingerprint"
        manifest_path.write_text(json.dumps(manifest))
        capsys.readouterr()
        _run(tmp_path, tree)
        assert "cache: cold" in capsys.readouterr().err

    def test_rule_selection_is_part_of_the_key(self, tmp_path, capsys):
        tree = _tree(tmp_path)
        _run(tmp_path, tree)
        capsys.readouterr()
        _run(tmp_path, tree, "--select", "RA001")
        assert "cache: cold" in capsys.readouterr().err


class TestPartialInvalidation:
    def test_change_reanalyzes_only_the_import_closure(self, tmp_path, capsys):
        tree = _tree(tmp_path)
        _run(tmp_path, tree)
        capsys.readouterr()
        bad = tree / "durability" / "bad.py"
        bad.write_text(bad.read_text() + "\nTOUCHED = True\n")
        code = _run(tmp_path, tree)
        err = capsys.readouterr().err
        # bad.py and its importer re-analyze; loner.py and the package
        # __init__s are served from the manifest.
        assert "cache: partial, re-analyzing 2/5 file(s)" in err
        assert code == 1

    def test_partial_run_keeps_findings_correct(self, tmp_path, capsys):
        tree = _tree(tmp_path)
        _run(tmp_path, tree)
        cold = json.loads(capsys.readouterr().out)
        loner = tree / "durability" / "loner.py"
        loner.write_text("VALUE = 2\n")
        _run(tmp_path, tree)
        partial = json.loads(capsys.readouterr().out)
        # The untouched bad.py findings are carried, not lost.
        assert partial["findings"] == cold["findings"]


class TestGraphHelpers:
    def test_module_deps_resolves_from_imports(self, tmp_path):
        tree = _tree(tmp_path)
        module = load_module(tree / "durability" / "importer.py")
        deps = module_deps(
            module.tree, {"repro.durability.bad", "repro.durability.loner"}
        )
        assert deps == ["repro.durability.bad"]

    def test_import_closure_is_bidirectional(self):
        edges = {"a": {"b"}, "b": {"c"}, "d": set()}
        assert import_closure({"b"}, edges) == {"a", "b", "c"}
        assert import_closure({"d"}, edges) == {"d"}

    def test_fingerprint_is_stable_within_a_build(self):
        assert engine_fingerprint() == engine_fingerprint()

    def test_corrupt_manifest_degrades_to_cold(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "manifest.json").write_text("{not json")
        cache = AnalysisCache(cache_dir)
        plan = cache.plan([FIXTURES / "ra008_bad.py"], "key")
        assert plan.kind == "cold"


def _git(cwd, *argv):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
        cwd=cwd,
        check=True,
        capture_output=True,
    )


class TestChangedOnly:
    def test_only_the_changed_closure_is_analyzed(self, tmp_path, capsys, monkeypatch):
        tree = _tree(tmp_path)
        _git(tmp_path, "init", "-q")
        _git(tmp_path, "add", ".")
        _git(tmp_path, "commit", "-q", "-m", "seed")
        monkeypatch.chdir(tmp_path)
        # Nothing changed: nothing analyzed, exit clean.
        code = main(["repro", "--changed-only", "HEAD", "--baseline", "b.json"])
        err = capsys.readouterr().err
        assert code == 0
        assert "0/5 module(s)" in err
        # Touch the findings file: its closure re-analyzes and gates.
        bad = tree / "durability" / "bad.py"
        bad.write_text(bad.read_text() + "\nTOUCHED = True\n")
        code = main(["repro", "--changed-only", "HEAD", "--baseline", "b.json"])
        captured = capsys.readouterr()
        assert code == 1
        assert "2/5 module(s)" in captured.err
        assert "RA008" in captured.out

    def test_bad_ref_exits_two(self, tmp_path, capsys, monkeypatch):
        _tree(tmp_path)
        _git(tmp_path, "init", "-q")
        monkeypatch.chdir(tmp_path)
        code = main(["repro", "--changed-only", "no-such-ref"])
        assert code == 2
