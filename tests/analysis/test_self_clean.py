"""The suite on its own tree: clean today, and still sharp.

Two guarantees:

* the real ``src/repro`` tree analyzes clean (anything true the rules
  surface gets fixed or justified at the PR that introduces it);
* the rules have not gone blunt — deleting the PR-4 writer-revalidation
  block from a copy of the router makes RA001 report the lost-write
  race again.
"""

import ast

from repro.analysis import analyze_paths
from repro.analysis.loader import load_module
from repro.analysis.project import Project
from repro.analysis.rules.ra001_locks import LockDisciplineRule
from repro.analysis.rules.ra004_telemetry import TelemetryHygieneRule

from tests.analysis.helpers import REPO_ROOT

ROUTER = REPO_ROOT / "src" / "repro" / "service" / "router.py"
TRACE_SCHEMA = REPO_ROOT / "docs" / "trace_schema.json"


def _default_rules():
    from repro.analysis.core import build_rules

    rules = build_rules()
    return [
        TelemetryHygieneRule(TRACE_SCHEMA)
        if isinstance(rule, TelemetryHygieneRule)
        else rule
        for rule in rules
    ]


class TestRealTree:
    def test_src_repro_analyzes_clean(self):
        findings, suppressed = analyze_paths(
            [REPO_ROOT / "src" / "repro"], rules=_default_rules()
        )
        assert findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.rule} {f.message}" for f in findings
        )
        # The justified suppressions in the tree are counted, not hidden.
        assert len(suppressed) >= 1

    def test_every_tree_suppression_is_justified(self):
        from repro.analysis.loader import load_paths

        for module in load_paths([REPO_ROOT / "src" / "repro"]):
            for suppression in module.suppressions:
                assert suppression.justified, (
                    f"{module.path}:{suppression.line} lacks a justification"
                )


def _strip_revalidation(source: str) -> str:
    """Rewrite ``_write_group`` to write under the gate without re-reading
    ``self._table`` — exactly the pre-PR-4 lost-write shape."""
    tree = ast.parse(source)
    mutated = False
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == "_write_group":
            for inner in ast.walk(node):
                if isinstance(inner, ast.With):
                    rendered = ast.unparse(inner.items[0].context_expr)
                    if rendered == "shard.write_gate":
                        inner.body = ast.parse("shard.put_many(group)").body
                        mutated = True
    if not mutated:
        raise AssertionError("router._write_group gate block not found")
    return ast.unparse(ast.fix_missing_locations(tree))


class TestMutationRegression:
    def test_deleting_revalidation_makes_ra001_fire(self, tmp_path):
        mutated = tmp_path / "router_mutated.py"
        mutated.write_text(_strip_revalidation(ROUTER.read_text()))
        project = Project([load_module(mutated)])
        rule = LockDisciplineRule(modules=("*",))
        findings = [f for f in rule.run(project) if "lost-write race" in f.message]
        assert findings, "RA001 no longer detects the PR-4 lost-write shape"
        assert any(f.symbol.endswith("ShardRouter._write_group") for f in findings)

    def test_pristine_router_has_no_lost_write_finding(self):
        project = Project([load_module(ROUTER)])
        rule = LockDisciplineRule(modules=("*",))
        findings = [f for f in rule.run(project) if "lost-write race" in f.message]
        assert findings == []
