"""Shared pytest fixtures for the static-analysis suite tests."""

import pytest

from tests.analysis.helpers import FIXTURES, REPO_ROOT


@pytest.fixture
def fixtures_dir():
    return FIXTURES


@pytest.fixture
def repo_root():
    return REPO_ROOT
