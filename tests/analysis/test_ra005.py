"""RA005 async purity: fixtures, transitivity, executor blind spots."""

from repro.analysis.rules.ra005_async import AsyncPurityRule

from tests.analysis.helpers import fixture_project


def _run(fixture, roots):
    project = fixture_project(fixture)
    return sorted(AsyncPurityRule(root_modules=roots).run(project))


class TestFiringFixture:
    def test_exact_finding_count(self):
        findings = _run("ra005_bad.py", ("ra005_bad",))
        assert len(findings) == 8
        assert all(f.rule == "RA005" for f in findings)
        assert all(f.severity == "error" for f in findings)

    def test_transitive_finding_names_its_async_root(self):
        findings = _run("ra005_bad.py", ("ra005_bad",))
        transitive = [f for f in findings if f.symbol.endswith("._load_blob")]
        assert len(transitive) == 1
        assert "(async via ra005_bad.handle_request)" in transitive[0].message

    def test_every_blocking_shape_detected(self):
        messages = " | ".join(
            f.message for f in _run("ra005_bad.py", ("ra005_bad",))
        )
        assert "blocking time.sleep()" in messages
        assert "blocking open()" in messages
        assert "synchronous TenantDirectory() build" in messages
        assert "direct ShardRouter call router.put()" in messages
        assert "sync `with shard.op_lock`" in messages
        assert "(Future.result)" in messages
        assert "(lock wait)" in messages
        assert "blocking file I/O path.read_bytes()" in messages


class TestSilentFixture:
    def test_executor_routed_work_is_clean(self):
        # Awaited executor hops, sync closures handed to the executor,
        # async-with locks, and asyncio.sleep are all loop-safe.
        assert _run("ra005_good.py", ("ra005_good",)) == []


class TestScoping:
    def test_fixture_invisible_under_default_roots(self):
        project = fixture_project("ra005_bad.py")
        assert sorted(AsyncPurityRule().run(project)) == []
