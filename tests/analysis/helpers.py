"""Non-fixture helpers shared by the analysis tests."""

from pathlib import Path

from repro.analysis.loader import load_module
from repro.analysis.project import Project

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parents[2]


def fixture_project(*names):
    """A :class:`Project` over the named fixture files."""
    return Project([load_module(FIXTURES / name) for name in names])


def rule_ids(findings):
    return [finding.rule for finding in findings]


def messages(findings):
    return [finding.message for finding in findings]
