"""The lightweight call graph: resolution shapes and reachability."""

from repro.analysis.loader import load_module
from repro.analysis.project import Project, attribute_chain

import ast


def _project(tmp_path, **sources):
    modules = []
    for name, source in sources.items():
        path = tmp_path / f"{name}.py"
        path.write_text(source)
        modules.append(load_module(path))
    return Project(modules)


class TestAttributeChain:
    def test_dotted_chain(self):
        node = ast.parse("a.b.c", mode="eval").body
        assert attribute_chain(node) == ["a", "b", "c"]

    def test_non_name_root_is_none(self):
        node = ast.parse("f().b", mode="eval").body
        assert attribute_chain(node) is None


class TestResolution:
    def test_local_name_call(self, tmp_path):
        project = _project(
            tmp_path, mod="def helper():\n    pass\n\ndef entry():\n    helper()\n"
        )
        assert project.callees("mod.entry") == {"mod.helper"}

    def test_self_method_call(self, tmp_path):
        project = _project(
            tmp_path,
            mod=(
                "class C:\n"
                "    def probe(self):\n"
                "        return self.decode()\n"
                "    def decode(self):\n"
                "        return 1\n"
            ),
        )
        assert project.callees("mod.C.probe") == {"mod.C.decode"}

    def test_dynamic_dispatch_stays_unresolved(self, tmp_path):
        project = _project(
            tmp_path, mod="def entry(index):\n    return index.lookup(1)\n"
        )
        assert project.callees("mod.entry") == set()

    def test_reachability_maps_back_to_root(self, tmp_path):
        project = _project(
            tmp_path,
            mod=(
                "def leaf():\n    pass\n\n"
                "def middle():\n    leaf()\n\n"
                "def root():\n    middle()\n"
            ),
        )
        reached = project.reachable_from(["mod.root"])
        assert reached == {
            "mod.root": "mod.root",
            "mod.middle": "mod.root",
            "mod.leaf": "mod.root",
        }

    def test_recursion_terminates(self, tmp_path):
        project = _project(
            tmp_path,
            mod="def ping():\n    pong()\n\ndef pong():\n    ping()\n",
        )
        reached = project.reachable_from(["mod.ping"])
        assert set(reached) == {"mod.ping", "mod.pong"}
