"""RA002 hot-path purity: reachability, impurities, and exemptions."""

from repro.analysis.hotpaths import DEFAULT_HOT_ROOTS, HotRoot, hot_root_qualnames
from repro.analysis.rules.ra002_hotpath import HotPathPurityRule

from tests.analysis.helpers import fixture_project, messages


def _run(fixture, roots):
    project = fixture_project(fixture)
    rule = HotPathPurityRule(roots=roots)
    return sorted(rule.run(project)), project


BAD_ROOTS = (HotRoot("ra002_bad", "lookup*"),)
GOOD_ROOTS = (HotRoot("ra002_good", "lookup*"), HotRoot("ra002_good", "*insert*"))


class TestFiringFixture:
    def test_direct_impurities_fire(self):
        findings, _ = _run("ra002_bad.py", BAD_ROOTS)
        texts = messages(findings)
        assert any("wall-clock read time.perf_counter()" in text for text in texts)
        assert any("print()" in text for text in texts)
        assert any("log call logger.debug()" in text for text in texts)
        assert any("broad exception handler (Exception)" in text for text in texts)
        assert any("wall-clock read datetime.now()" in text for text in texts)

    def test_transitive_reach_is_attributed_to_the_root(self):
        findings, _ = _run("ra002_bad.py", BAD_ROOTS)
        transitive = [
            finding
            for finding in findings
            if finding.symbol == "ra002_bad._descend"
        ]
        assert transitive, "callee of the hot root was not analyzed"
        assert all("(hot via ra002_bad.lookup)" in f.message for f in transitive)


class TestSilentFixture:
    def test_good_fixture_is_clean(self):
        findings, _ = _run("ra002_good.py", GOOD_ROOTS)
        assert findings == []

    def test_cold_function_is_not_reached(self):
        _, project = _run("ra002_good.py", GOOD_ROOTS)
        reached = project.reachable_from(
            hot_root_qualnames(project, GOOD_ROOTS)
        )
        assert "ra002_good.report" not in reached


class TestRootRegistry:
    def test_default_roots_cover_the_index_families(self):
        prefixes = {root.module_prefix for root in DEFAULT_HOT_ROOTS}
        for family in ("repro.bptree", "repro.art", "repro.fst", "repro.dualstage"):
            assert family in prefixes
        assert "repro.core.sampling" in prefixes

    def test_root_matching_respects_module_prefix(self):
        root = HotRoot("repro.bptree", "*lookup*")
        # Prefix match is on dotted boundaries, not raw startswith.
        assert not root.module_prefix.startswith("repro.bptree_extra")
