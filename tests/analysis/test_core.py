"""Finding ordering, the rule registry, and suppression application."""

import pytest

from repro.analysis.core import (
    Finding,
    Rule,
    all_rule_ids,
    build_rules,
    register,
    run_rules,
)
from repro.analysis.loader import load_module
from repro.analysis.project import Project

from tests.analysis.helpers import FIXTURES


class TestRegistry:
    def test_all_eight_rules_register(self):
        assert all_rule_ids() == [
            "RA001",
            "RA002",
            "RA003",
            "RA004",
            "RA005",
            "RA006",
            "RA007",
            "RA008",
        ]

    def test_build_rules_selects(self):
        rules = build_rules(["RA004"])
        assert [rule.id for rule in rules] == ["RA004"]

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            build_rules(["RA999"])

    def test_register_rejects_missing_id(self):
        class Anonymous(Rule):
            def run(self, project):
                return iter(())

        with pytest.raises(ValueError):
            register(Anonymous)

    def test_register_rejects_duplicate_id(self):
        all_rule_ids()  # make sure the built-in rules are registered

        class Duplicate(Rule):
            id = "RA001"

            def run(self, project):
                return iter(())

        with pytest.raises(ValueError):
            register(Duplicate)


class TestFindings:
    def test_findings_sort_by_location(self):
        later = Finding(path="b.py", line=1, col=1, rule="RA001", message="m")
        earlier = Finding(path="a.py", line=9, col=9, rule="RA004", message="m")
        assert sorted([later, earlier]) == [earlier, later]

    def test_as_dict_round_trips_all_fields(self):
        finding = Finding(
            path="a.py", line=3, col=7, rule="RA002", message="msg", symbol="mod.f"
        )
        assert finding.as_dict() == {
            "rule": "RA002",
            "path": "a.py",
            "line": 3,
            "col": 7,
            "message": "msg",
            "symbol": "mod.f",
            "severity": "error",
        }
        assert Finding.from_dict(finding.as_dict()) == finding

    def test_from_dict_defaults_missing_severity_to_error(self):
        payload = {
            "rule": "RA001",
            "path": "a.py",
            "line": 1,
            "col": 1,
            "message": "m",
        }
        assert Finding.from_dict(payload).severity == "error"


class _LineOneRule(Rule):
    """Test double: reports line 1 of every module."""

    id = "RA001"  # reuse a real id so suppressions apply
    title = "test double"
    rationale = "test double"

    def run(self, project):
        for module in project.modules:
            yield Finding(
                path=module.path.as_posix(),
                line=1,
                col=1,
                rule=self.id,
                message="line one",
            )


class TestRunRules:
    def test_run_rules_splits_suppressed(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        silenced = tmp_path / "silenced.py"
        silenced.write_text("x = 1  # repro: ignore[RA001] -- test\n")
        project = Project([load_module(clean), load_module(silenced)])
        kept, suppressed = run_rules(project, [_LineOneRule()])
        assert [finding.path for finding in kept] == [clean.as_posix()]
        assert [finding.path for finding in suppressed] == [silenced.as_posix()]

    def test_fixture_modules_index_functions(self):
        project = Project([load_module(FIXTURES / "ra001_bad.py")])
        assert "ra001_bad.BadRouter.inverted_order" in project.functions
