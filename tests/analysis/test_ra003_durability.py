"""RA003 over the durability layer's real swap sites.

The durability package introduces four publish points that RA003's
migration discipline must police (snapshot swap, manifest swap, WAL
truncation aside-publish, FST file publish).  These tests pin that the
shipped implementations are clean and that the rule still fires on a
durability-shaped violation.
"""

from repro.analysis.loader import load_module
from repro.analysis.project import Project
from repro.analysis.rules.ra003_migration import MigrationDisciplineRule

from tests.analysis.helpers import REPO_ROOT, fixture_project, messages

DURABILITY_SOURCES = [
    "src/repro/durability/wal.py",
    "src/repro/durability/snapshot.py",
    "src/repro/durability/manager.py",
    "src/repro/durability/log.py",
    "src/repro/fst/serialize.py",
    "src/repro/service/router.py",
]


def _real_project():
    return Project(
        [load_module(REPO_ROOT / source) for source in DURABILITY_SOURCES]
    )


class TestShippedDurabilityCodeIsClean:
    def test_no_ra003_findings_on_durability_sources(self):
        findings = list(MigrationDisciplineRule().run(_real_project()))
        assert findings == []


class TestDurabilityShapedViolationsFire:
    def test_pre_swap_mutations_fire(self):
        project = fixture_project("ra003_durability_bad.py")
        texts = messages(MigrationDisciplineRule().run(project))
        assert any(
            "append() on published self.generations" in text for text in texts
        )
        assert any(
            "assignment to published self.next_lsn" in text for text in texts
        )
