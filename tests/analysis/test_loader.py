"""Loader: discovery, module naming, and suppression parsing."""

from pathlib import Path

import pytest

from repro.analysis.loader import (
    AnalysisError,
    discover,
    load_module,
    load_paths,
    module_name_for,
    parse_suppressions,
)


class TestModuleNames:
    def test_repro_package_paths_get_dotted_names(self):
        path = Path("/anywhere/src/repro/service/router.py")
        assert module_name_for(path) == "repro.service.router"

    def test_package_init_names_the_package(self):
        path = Path("/anywhere/src/repro/analysis/__init__.py")
        assert module_name_for(path) == "repro.analysis"

    def test_fixture_paths_fall_back_to_stem(self, fixtures_dir):
        assert module_name_for(fixtures_dir / "ra001_bad.py") == "ra001_bad"


class TestSuppressions:
    def test_inline_suppression_targets_its_own_line(self):
        lines = [
            "def f():",
            "    g()  # repro: ignore[RA001] -- reviewed",
        ]
        (supp,) = parse_suppressions(lines)
        assert supp.line == 2
        assert supp.rules == frozenset({"RA001"})
        assert supp.justified
        assert not supp.standalone

    def test_standalone_suppression_skips_comment_lines(self, tmp_path):
        source = "\n".join(
            [
                "def f():",
                "    # repro: ignore[RA002] -- first line of the",
                "    # justification keeps going here",
                "    g()",
                "",
            ]
        )
        path = tmp_path / "mod.py"
        path.write_text(source)
        module = load_module(path)
        assert module.is_suppressed("RA002", 4)
        assert not module.is_suppressed("RA002", 2)
        assert not module.is_suppressed("RA001", 4)

    def test_star_matches_every_rule(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text("x = f()  # repro: ignore[*] -- scaffolding\n")
        module = load_module(path)
        assert module.is_suppressed("RA001", 1)
        assert module.is_suppressed("RA004", 1)

    def test_multiple_rules_in_one_comment(self):
        (supp,) = parse_suppressions(["g()  # repro: ignore[RA001, RA003] -- why"])
        assert supp.rules == frozenset({"RA001", "RA003"})

    def test_unjustified_suppression_is_flagged(self):
        (supp,) = parse_suppressions(["g()  # repro: ignore[RA004]"])
        assert not supp.justified

    def test_suppression_syntax_inside_strings_is_inert(self, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text('DOC = "use # repro: ignore[RA001] to suppress"\n')
        module = load_module(path)
        assert module.suppressions == []


class TestDiscovery:
    def test_discover_recurses_and_sorts(self, fixtures_dir):
        found = discover([fixtures_dir])
        names = [path.name for path in found]
        assert "ra001_bad.py" in names
        assert names == sorted(names)

    def test_discover_skips_pycache(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "stale.py").write_text("x = 1\n")
        (tmp_path / "real.py").write_text("y = 2\n")
        assert [p.name for p in discover([tmp_path])] == ["real.py"]

    def test_missing_path_is_an_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            discover([tmp_path / "nope"])

    def test_syntax_error_is_an_analysis_error(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def f(:\n")
        with pytest.raises(AnalysisError):
            load_paths([path])
