"""RA008 WAL-fence discipline: the three acked-then-lost shapes."""

from repro.analysis.rules.ra008_walfence import WalFenceRule

from tests.analysis.helpers import fixture_project


def _run(fixture):
    project = fixture_project(fixture)
    return sorted(WalFenceRule(modules=("*",)).run(project))


class TestFiringFixture:
    def test_exact_finding_count(self):
        findings = _run("ra008_bad.py")
        assert len(findings) == 3
        assert all(f.rule == "RA008" for f in findings)
        assert all(f.severity == "error" for f in findings)

    def test_ack_before_durable_append(self):
        (ack,) = [f for f in _run("ra008_bad.py") if "Shard.put" in f.symbol]
        assert "before the durable WAL append" in ack.message
        assert "applying to the live index" in ack.message

    def test_reraise_without_fence_is_not_enough(self):
        (raw,) = [f for f in _run("ra008_bad.py") if "append_batch" in f.symbol]
        assert "no fence on its failure path" in raw.message

    def test_swallowed_append_failure(self):
        (swallowed,) = [f for f in _run("ra008_bad.py") if "apply" in f.symbol]
        assert "neither fences the log" in swallowed.message


class TestSilentFixture:
    def test_append_then_apply_with_fences_is_clean(self):
        assert _run("ra008_good.py") == []
