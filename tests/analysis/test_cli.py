"""CLI and reporters: formats, schemas, and exit codes."""

import json

from repro.analysis.cli import main
from repro.analysis.schema import SchemaError, load_schema, validate

import pytest

from tests.analysis.helpers import FIXTURES, REPO_ROOT

REPORT_SCHEMA = load_schema(REPO_ROOT / "docs" / "analysis_report_schema.json")
SARIF_SCHEMA = load_schema(REPO_ROOT / "docs" / "sarif_min_schema.json")
TRACE_SCHEMA = str(REPO_ROOT / "docs" / "trace_schema.json")


def _cli(*argv, capsys=None):
    code = main(list(argv))
    out = capsys.readouterr().out if capsys is not None else ""
    return code, out


class TestExitCodes:
    def test_clean_fixture_exits_zero(self, capsys):
        code, out = _cli(
            str(FIXTURES / "ra004_good.py"),
            "--trace-schema",
            TRACE_SCHEMA,
            capsys=capsys,
        )
        assert code == 0
        assert "clean: 0 findings" in out

    def test_findings_exit_one(self, capsys):
        code, out = _cli(
            str(FIXTURES / "ra004_bad.py"),
            "--trace-schema",
            TRACE_SCHEMA,
            capsys=capsys,
        )
        assert code == 1
        assert "RA004" in out

    def test_missing_path_exits_two(self, capsys):
        code, _ = _cli(str(FIXTURES / "does_not_exist.py"), capsys=capsys)
        assert code == 2

    def test_unknown_rule_exits_two(self, capsys):
        code, _ = _cli(
            str(FIXTURES / "ra004_good.py"), "--select", "RA999", capsys=capsys
        )
        assert code == 2

    def test_select_limits_rules(self, capsys):
        # RA004 findings exist in ra004_bad.py, but RA001 alone sees none.
        code, _ = _cli(
            str(FIXTURES / "ra004_bad.py"), "--select", "RA001", capsys=capsys
        )
        assert code == 0

    def test_list_rules(self, capsys):
        code, out = _cli("--list-rules", capsys=capsys)
        assert code == 0
        for rule_id in (
            "RA001",
            "RA002",
            "RA003",
            "RA004",
            "RA005",
            "RA006",
            "RA007",
            "RA008",
        ):
            assert rule_id in out
        # Severity is part of the catalogue: RA007 is the warning rule.
        assert "[warning]" in out and "[error]" in out


class TestJsonReport:
    def _report(self, capsys, path):
        code, out = _cli(
            str(path), "--format", "json", "--trace-schema", TRACE_SCHEMA, capsys=capsys
        )
        return code, json.loads(out)

    def test_json_validates_against_checked_in_schema(self, capsys):
        code, report = self._report(capsys, FIXTURES / "ra004_bad.py")
        assert code == 1
        validate(report, REPORT_SCHEMA)
        assert report["summary"]["total"] == len(report["findings"]) > 0
        assert report["summary"]["by_rule"] == {"RA004": report["summary"]["total"]}

    def test_clean_json_report_validates(self, capsys):
        code, report = self._report(capsys, FIXTURES / "ra004_good.py")
        assert code == 0
        validate(report, REPORT_SCHEMA)
        assert report["findings"] == []

    def test_output_flag_writes_file(self, tmp_path):
        target = tmp_path / "report.json"
        code = main(
            [
                str(FIXTURES / "ra004_good.py"),
                "--format",
                "json",
                "--trace-schema",
                TRACE_SCHEMA,
                "--output",
                str(target),
            ]
        )
        assert code == 0
        validate(json.loads(target.read_text()), REPORT_SCHEMA)


class TestSarifReport:
    def test_sarif_validates_against_checked_in_schema(self, capsys):
        code, out = _cli(
            str(FIXTURES / "ra004_bad.py"),
            "--format",
            "sarif",
            "--trace-schema",
            TRACE_SCHEMA,
            capsys=capsys,
        )
        assert code == 1
        sarif = json.loads(out)
        validate(sarif, SARIF_SCHEMA)
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        assert run["tool"]["driver"]["name"] == "repro.analysis"
        assert {rule["id"] for rule in run["tool"]["driver"]["rules"]} == {
            "RA001",
            "RA002",
            "RA003",
            "RA004",
            "RA005",
            "RA006",
            "RA007",
            "RA008",
        }
        assert all(result["ruleId"] == "RA004" for result in run["results"])


class TestSuppressionGate:
    def test_unjustified_suppression_fails(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("x = f()  # repro: ignore[RA001]\n")
        code, out = _cli(str(path), "--check-suppressions", capsys=capsys)
        assert code == 1
        assert "lacks a `-- justification`" in out

    def test_justified_but_stale_suppression_fails(self, tmp_path, capsys):
        # RA001 reports nothing on this line, so the suppression is dead
        # weight that would silently swallow a future real finding.
        path = tmp_path / "mod.py"
        path.write_text("x = f()  # repro: ignore[RA001] -- reviewed\n")
        code, out = _cli(str(path), "--check-suppressions", capsys=capsys)
        assert code == 1
        assert "stale suppression ignore[RA001]" in out

    def test_unknown_rule_suppression_fails(self, tmp_path, capsys):
        path = tmp_path / "mod.py"
        path.write_text("x = f()  # repro: ignore[RA999] -- reviewed\n")
        code, out = _cli(str(path), "--check-suppressions", capsys=capsys)
        assert code == 1
        assert "unknown rule RA999" in out

    def test_live_tree_suppressions_pass(self, capsys):
        # Every suppression in src/repro is justified AND still matches
        # a finding its rule produces — the CI lint gate stays green.
        code, out = _cli(
            str(REPO_ROOT / "src" / "repro"),
            "--check-suppressions",
            "--trace-schema",
            TRACE_SCHEMA,
            capsys=capsys,
        )
        assert code == 0
        assert "suppression hygiene clean" in out

    def test_select_scopes_staleness(self, tmp_path, capsys):
        # A suppression for a rule excluded by --select is not judged.
        path = tmp_path / "mod.py"
        path.write_text("x = f()  # repro: ignore[RA001] -- reviewed\n")
        code, out = _cli(
            str(path),
            "--check-suppressions",
            "--select",
            "RA004",
            capsys=capsys,
        )
        assert code == 0
        assert "suppression hygiene clean" in out


class TestSchemaValidator:
    def test_validator_rejects_wrong_type(self):
        with pytest.raises(SchemaError):
            validate({"version": "1"}, {"properties": {"version": {"type": "integer"}}})

    def test_validator_rejects_missing_required(self):
        with pytest.raises(SchemaError):
            validate({}, {"type": "object", "required": ["version"]})

    def test_validator_rejects_bools_as_integers(self):
        with pytest.raises(SchemaError):
            validate(True, {"type": "integer"})

    def test_validator_rejects_unexpected_keys(self):
        schema = {"type": "object", "properties": {}, "additionalProperties": False}
        with pytest.raises(SchemaError):
            validate({"surprise": 1}, schema)
