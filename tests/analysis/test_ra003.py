"""RA003 migration discipline: build-aside purity around the swap."""

from repro.analysis.rules.ra003_migration import MigrationDisciplineRule

from tests.analysis.helpers import fixture_project, messages


def _run(fixture):
    project = fixture_project(fixture)
    return sorted(MigrationDisciplineRule().run(project))


class TestFiringFixture:
    def test_pre_swap_mutations_fire(self):
        texts = messages(_run("ra003_bad.py"))
        assert any("in-place append() on published self.entries" in t for t in texts)
        assert any("assignment to published self.sealed" in t for t in texts)

    def test_fault_point_after_publish_fires(self):
        texts = messages(_run("ra003_bad.py"))
        assert any("fault_point after the publish assignment" in t for t in texts)

    def test_dynamic_fault_label_fires(self):
        texts = messages(_run("ra003_bad.py"))
        assert any("label must be a string literal" in t for t in texts)

    def test_finding_count_is_exact(self):
        assert len(_run("ra003_bad.py")) == 4


class TestSilentFixture:
    def test_clean_migration_passes(self):
        assert _run("ra003_good.py") == []

    def test_functions_without_swap_are_out_of_scope(self):
        # ra003_good.not_a_migration mutates self freely: no .swap marker,
        # no findings.
        findings = _run("ra003_good.py")
        assert all("not_a_migration" not in f.symbol for f in findings)
