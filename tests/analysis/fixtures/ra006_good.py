"""RA006 silent fixture: consistent nesting orders everywhere."""


class Pair:
    def flush_then_commit(self):
        with self._flush_lock:
            with self._commit_lock:
                self.write()

    def also_flush_then_commit(self):
        with self._flush_lock:
            with self._commit_lock:
                self.read()


class Router:
    def documented_order(self, shard):
        with shard.write_gate:
            with shard._guard():
                shard.noop()
