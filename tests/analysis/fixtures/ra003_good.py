"""RA003 silent fixture: a clean build-aside + swap migration."""


class GoodMigrator:
    def merge(self, pending):
        fault_point("merge.collect")
        self.counters.add("merge_started")
        built = sorted(pending)
        staged = {"items": built}
        staged["sealed"] = True
        fault_point("merge.build")
        fault_point("merge.swap")
        self.items = built
        return staged

    def not_a_migration(self, pending):
        # No .swap fault point: ordinary mutation is out of scope.
        self.entries.extend(pending)
        return len(self.entries)
