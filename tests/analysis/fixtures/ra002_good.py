"""RA002 silent fixture: pure hot paths, impure-but-cold reporting."""

import time


def lookup(index, key):
    index.counters.add("probe")
    try:
        return index.get(key)
    except KeyError:
        return None


def insert(index, key, value):
    try:
        index.put(key, value)
    except BaseException:
        # Cleanup-and-propagate is the sanctioned broad-except shape.
        index.rollback()
        raise


def report(index):
    # Cold: nothing reaches this from a registered hot root.
    print("index holds", index.num_keys, "keys at", time.time())
