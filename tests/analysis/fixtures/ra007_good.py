"""RA007 silent fixture: every handle closed, escaped, or managed."""


class Wal:
    def truncate(self, cutoff):
        replacement = self.build(cutoff)
        try:
            self.publish(replacement)
        except BaseException:
            self.discard(replacement)
            self._handle.close()
            self._handle = open(self.path, "ab")
            raise


def finally_close(path):
    h = open(path, "rb")
    try:
        return h.read()
    finally:
        h.close()


def with_block(path):
    with open(path, "rb") as h:
        return h.read()


def ownership_handoff(path, sink):
    h = open(path, "rb")
    sink.adopt(h)
