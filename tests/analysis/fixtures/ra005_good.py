"""RA005 silent fixture: every blocking shape routed off the loop."""

import asyncio
import functools


def _read(path):
    # Only ever handed to run_in_executor, never called from a coroutine.
    return path.read_bytes()


async def handle_request(loop, path, router):
    blob = await loop.run_in_executor(None, functools.partial(_read, path))
    value = await loop.run_in_executor(None, router.get, 1)
    await asyncio.sleep(0.01)
    return blob, value


async def drain(loop, shard):
    def work():
        # Sync closure: runs on the executor, off-loop by construction.
        with shard.op_lock:
            return shard.flush()

    return await loop.run_in_executor(None, work)


async def serialized(lock):
    async with lock:
        return 1
