"""RA002 firing fixture: impurities on and below a hot lookup root."""

import logging
import time
from datetime import datetime

logger = logging.getLogger(__name__)


def lookup(tree, key):
    started = time.perf_counter()
    print("probing", key)
    logger.debug("probe %s started=%s", key, started)
    try:
        value = _descend(tree, key)
    except Exception:
        value = None
    stamp = datetime.now()
    return value, stamp


def _descend(tree, key):
    # Only hot because lookup() calls it: flagged "(hot via ...lookup)".
    deadline = time.time()
    node = tree.root
    while node is not None and node.deadline < deadline:
        node = node.child_for(key)
    return node
