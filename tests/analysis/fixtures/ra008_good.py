"""RA008 silent fixture: append first, fence on failure."""


class Shard:
    def put(self, key, value):
        with self.op_lock:
            self.durable_log.append_put(key, value)
            self.index.insert(key, value)


class Wal:
    def append_batch(self, blob):
        try:
            self._handle.write(blob)
        except BaseException as error:
            self._poison(str(error))
            raise


class Applier:
    def apply(self, records):
        try:
            self.wal.append_batch(records)
        except Exception:
            self.wal.seal()
            raise
