"""RA003 firing fixture: a durability-style publish that dirties state.

Models the WAL-truncation / snapshot-write shape (write aside, fault
point at the swap, publish) but mutates published ``self`` state before
the swap — exactly what the discipline forbids on durability paths.
"""


class BadSnapshotStore:
    def write(self, pairs, lsn):
        self.generations.append(lsn)  # published state dirtied pre-swap
        blob = bytes(len(pairs))
        tmp = write_aside(self.path, blob)
        fault_point("durability.snapshot.swap")
        publish_aside(tmp, self.path)
        return tmp


class BadTruncator:
    def truncate_upto(self, cutoff):
        self.next_lsn = cutoff + 1  # assignment to published self pre-swap
        kept = [cutoff]
        tmp = write_aside(self.path, bytes(kept))
        fault_point("durability.wal.truncate.swap")
        publish_aside(tmp, self.path)
        return len(kept)
