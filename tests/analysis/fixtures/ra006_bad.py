"""RA006 firing fixture: two deadlocks-in-waiting.

``Pair`` nests two generic locks in opposite orders across two
functions (the classic two-path cycle); ``Router`` inverts the
*documented* service hierarchy at a single site.
"""


class Pair:
    def flush_then_commit(self):
        with self._flush_lock:
            with self._commit_lock:
                self.write()

    def commit_then_flush(self):
        with self._commit_lock:
            with self._flush_lock:
                self.read()


class Router:
    def inverted(self, shard):
        with shard._guard():
            with shard.write_gate:
                shard.noop()
