"""RA001 silent fixture: the sanctioned locking protocol, end to end."""


class GoodRouter:
    def ordered_locks(self, shard):
        with self._admin_lock:
            with shard.write_gate:
                with shard._guard():
                    table = self._table
                    shard.put(1, 1)

    def blocking_outside_locks(self, task):
        future = self._pool.submit(task)
        with self._admin_lock:
            self._generation += 1
        return future

    def captured_snapshot(self, key):
        table = self._table
        shard = table.shards[table.partitioner.shard_of(key)]
        return shard.get(key)

    def revalidated_write(self, shard, shard_id, key, value):
        with shard.write_gate:
            table = self._table
            if table.partitioner.shard_of(key) != shard_id:
                return False
            shard.put(key, value)
            return True
