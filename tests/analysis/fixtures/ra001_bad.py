"""RA001 firing fixture: every lock-discipline violation in one router."""


class BadRouter:
    def inverted_order(self, shard):
        # op lock (rank 2) taken first, then the gate (rank 1) under it.
        with shard._guard():
            with shard.write_gate:
                shard.put(1, 1)

    def blocking_under_lock(self, task):
        with self._admin_lock:
            self._pool.submit(task)

    def uncaptured_subscript(self, shard_id):
        return self._table.shards[shard_id]

    def uncaptured_routing(self, key):
        return self._table.partitioner.shard_of(key)

    def unrevalidated_write(self, shard, key, value):
        with shard.write_gate:
            shard.put(key, value)
