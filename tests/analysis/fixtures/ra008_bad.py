"""RA008 firing fixture: every way to lose an acked write."""


class Shard:
    def put(self, key, value):
        with self.op_lock:
            # Ack (index apply) before the durable append.
            self.index.insert(key, value)
            self.durable_log.append_put(key, value)


class Wal:
    def append_batch(self, blob):
        try:
            self._handle.write(blob)
        except BaseException:
            # Re-raising without poisoning: the next append acks over
            # the torn frame this one may have left behind.
            raise


class Applier:
    def apply(self, records):
        try:
            self.wal.append_batch(records)
        except Exception:
            return None
