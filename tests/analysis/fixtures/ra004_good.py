"""RA004 silent fixture: literal name tables and schema-clean names."""

_PROBE_EVENTS = {
    "static": "leaf_probe:static",
    "dynamic": "leaf_probe:dynamic",
}


def publish(tracer, registry, stage, names):
    tracer.event(_PROBE_EVENTS[stage], hit=True)
    registry.counter("service.ops.read").inc()
    name = names[0]
    registry.gauge(name).set(2.0)
    with tracer.span("merge.publish>flush"):
        registry.counter("service.ops.write").inc(2)
