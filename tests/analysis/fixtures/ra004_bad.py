"""RA004 firing fixture: dynamic and off-schema telemetry names."""


def publish(tracer, registry, kind, shard_id):
    tracer.span(f"probe:{kind}")
    registry.counter("ops." + kind).inc()
    registry.gauge("Service Imbalance!").set(1.0)
    registry.histogram("ops.{}".format(shard_id), ()).record(1)
