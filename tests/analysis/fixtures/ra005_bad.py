"""RA005 firing fixture: blocking work reachable from coroutines."""

import time


def _load_blob(path):
    # Reached transitively from handle_request: blocking file I/O.
    return path.read_bytes()


async def handle_request(path):
    blob = _load_blob(path)
    time.sleep(0.01)
    return blob


async def rebuild(records, router):
    directory = TenantDirectory(records)  # noqa: F821 (synthetic heavy builder)
    router.put(1, records)
    return directory


async def flush(shard, fut):
    with shard.op_lock:
        fut.result()
    shard.latch.acquire()
    raw = open("wal.bin", "rb")
    return raw
