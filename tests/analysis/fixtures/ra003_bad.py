"""RA003 firing fixture: a migration that dirties published state."""


class BadMigrator:
    def merge(self, pending):
        fault_point("merge.collect")
        self.entries.append(pending[0])
        self.sealed = True
        built = sorted(pending)
        fault_point("merge.swap")
        self.entries = built
        fault_point("merge.cleanup")
        return built

    def rebuild(self, name, items):
        fault_point("rebuild:" + name)
        staged = tuple(items)
        fault_point("rebuild.swap")
        self.items = staged
