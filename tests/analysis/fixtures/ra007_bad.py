"""RA007 firing fixture: handles that miss close() on some path."""


class Wal:
    def truncate(self, cutoff):
        replacement = self.build(cutoff)
        try:
            self._handle.close()
            self.publish(replacement)
        except BaseException:
            self.discard(replacement)
            # Abort path reopens without closing first: the PR-6 leak.
            self._handle = open(self.path, "ab")
            raise
        self._handle = open(self.path, "ab")


def never_closed(path):
    h = open(path, "rb")
    return h.read()


def straightline_close(path):
    h = open(path, "rb")
    data = h.read()
    h.close()
    return data
