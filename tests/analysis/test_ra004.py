"""RA004 telemetry hygiene: dynamic names and the schema pattern."""

from repro.analysis.rules.ra004_telemetry import (
    DEFAULT_NAME_PATTERN,
    TelemetryHygieneRule,
    schema_name_pattern,
)

from tests.analysis.helpers import REPO_ROOT, fixture_project, messages


def _run(fixture, schema_path=None):
    project = fixture_project(fixture)
    rule = TelemetryHygieneRule(schema_path=schema_path)
    return sorted(rule.run(project))


class TestFiringFixture:
    def test_all_dynamic_shapes_fire(self):
        texts = messages(_run("ra004_bad.py"))
        dynamic = [t for t in texts if "dynamically formatted name" in t]
        assert len(dynamic) == 3  # f-string, concat, .format()

    def test_off_schema_literal_fires(self):
        texts = messages(_run("ra004_bad.py"))
        assert any("does not match the trace-schema pattern" in t for t in texts)

    def test_finding_count_is_exact(self):
        assert len(_run("ra004_bad.py")) == 4


class TestSilentFixture:
    def test_name_tables_and_literals_pass(self):
        assert _run("ra004_good.py") == []


class TestSchemaPattern:
    def test_pattern_loads_from_the_real_schema(self):
        schema = REPO_ROOT / "docs" / "trace_schema.json"
        pattern = schema_name_pattern(schema)
        assert pattern == DEFAULT_NAME_PATTERN

    def test_missing_schema_falls_back(self, tmp_path):
        assert schema_name_pattern(tmp_path / "nope.json") == DEFAULT_NAME_PATTERN
        assert schema_name_pattern(None) == DEFAULT_NAME_PATTERN

    def test_custom_schema_overrides_pattern(self, tmp_path):
        schema = tmp_path / "schema.json"
        schema.write_text('{"properties": {"name": {"pattern": "^x-"}}}')
        rule = TelemetryHygieneRule(schema_path=schema)
        project = fixture_project("ra004_good.py")
        texts = messages(sorted(rule.run(project)))
        # Under the stricter pattern the previously-clean literals fail.
        assert any("does not match the trace-schema pattern" in t for t in texts)
