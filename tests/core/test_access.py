"""Tests for access statistics and classification history."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access import HISTORY_BITS, AccessStats, AccessType, Classification


class TestAccessType:
    def test_write_kinds(self):
        assert AccessType.INSERT.is_write
        assert AccessType.UPDATE.is_write
        assert AccessType.DELETE.is_write

    def test_read_kinds(self):
        assert not AccessType.READ.is_write
        assert not AccessType.SCAN.is_write


class TestRecord:
    def test_reads_and_writes_grouped(self):
        stats = AccessStats()
        stats.record(AccessType.READ, epoch=1)
        stats.record(AccessType.SCAN, epoch=1)
        stats.record(AccessType.INSERT, epoch=1)
        assert stats.reads == 2
        assert stats.writes == 1

    def test_epoch_change_resets_counters(self):
        stats = AccessStats()
        stats.record(AccessType.READ, epoch=1)
        stats.record(AccessType.READ, epoch=1)
        stats.record(AccessType.READ, epoch=2)
        assert stats.reads == 1
        assert stats.last_epoch == 2

    def test_frequency_weights(self):
        stats = AccessStats()
        stats.record(AccessType.READ, epoch=1)
        stats.record(AccessType.INSERT, epoch=1)
        assert stats.frequency() == 2.0
        assert stats.frequency(read_weight=1.0, write_weight=3.0) == 4.0


class TestHistory:
    def test_push_hot(self):
        stats = AccessStats()
        stats.push_classification(Classification.HOT)
        assert stats.history & 1 == 1
        assert stats.hot_streak() == 1
        assert stats.cold_streak() == 0

    def test_push_cold(self):
        stats = AccessStats()
        stats.push_classification(Classification.COLD)
        assert stats.cold_streak() == 1
        assert stats.hot_streak() == 0

    def test_streaks(self):
        stats = AccessStats()
        for classification in (
            Classification.HOT,
            Classification.COLD,
            Classification.COLD,
        ):
            stats.push_classification(classification)
        assert stats.cold_streak() == 2
        assert stats.hot_streak() == 0

    def test_history_bounded_to_eight(self):
        stats = AccessStats()
        for _ in range(20):
            stats.push_classification(Classification.HOT)
        assert stats.history == (1 << HISTORY_BITS) - 1
        assert stats.hot_streak() == HISTORY_BITS
        assert stats.epochs_tracked == HISTORY_BITS

    def test_hot_count_window(self):
        stats = AccessStats()
        for classification in (
            Classification.HOT,
            Classification.COLD,
            Classification.HOT,
        ):
            stats.push_classification(classification)
        assert stats.hot_count() == 2

    def test_untracked_history_is_empty(self):
        stats = AccessStats()
        assert stats.cold_streak() == 0
        assert stats.hot_streak() == 0
        assert stats.hot_count() == 0

    def test_size_bytes_constant(self):
        assert AccessStats().size_bytes() == 21


@settings(max_examples=50)
@given(st.lists(st.sampled_from([Classification.HOT, Classification.COLD]), max_size=30))
def test_streaks_match_naive(history):
    stats = AccessStats()
    for classification in history:
        stats.push_classification(classification)
    window = list(reversed(history[-HISTORY_BITS:]))
    naive_hot = 0
    for entry in window:
        if entry is Classification.HOT:
            naive_hot += 1
        else:
            break
    naive_cold = 0
    for entry in window:
        if entry is Classification.COLD:
            naive_cold += 1
        else:
            break
    assert stats.hot_streak() == naive_hot
    assert stats.cold_streak() == naive_cold
    assert stats.hot_count() == sum(
        1 for entry in window if entry is Classification.HOT
    )
