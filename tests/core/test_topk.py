"""Tests for the bounded-heap top-k classifier."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topk import TopKClassifier, classify_top_k


class TestTopKClassifier:
    def test_fewer_items_than_k(self):
        classifier = TopKClassifier(10)
        classifier.offer("a", 5)
        classifier.offer("b", 1)
        assert classifier.hot_items() == {"a", "b"}

    def test_keeps_k_most_frequent(self):
        classifier = TopKClassifier(2)
        for item, frequency in [("a", 5), ("b", 1), ("c", 9), ("d", 3)]:
            classifier.offer(item, frequency)
        assert classifier.hot_items() == {"c", "a"}

    def test_k_zero(self):
        classifier = TopKClassifier(0)
        classifier.offer("a", 1)
        assert classifier.hot_items() == set()

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            TopKClassifier(-1)

    def test_tie_break_prefers_earlier(self):
        classifier = TopKClassifier(1)
        classifier.offer("first", 5)
        classifier.offer("second", 5)
        assert classifier.hot_items() == {"first"}

    def test_threshold(self):
        classifier = TopKClassifier(2)
        assert classifier.threshold() == float("inf")
        classifier.offer("a", 5)
        classifier.offer("b", 3)
        assert classifier.threshold() == 3

    def test_heap_operations_counted(self):
        classifier = TopKClassifier(2)
        classifier.offer("a", 1)  # push
        classifier.offer("b", 2)  # push
        classifier.offer("c", 3)  # replace
        classifier.offer("d", 0)  # rejected, no op
        assert classifier.heap_operations == 1 + 1 + 2

    def test_len(self):
        classifier = TopKClassifier(5)
        classifier.offer("a", 1)
        assert len(classifier) == 1


class TestClassifyTopK:
    def test_from_dict(self):
        assert classify_top_k({"a": 9, "b": 1, "c": 5}, 2) == {"a", "c"}

    def test_from_pairs(self):
        assert classify_top_k([("x", 2.0), ("y", 7.0)], 1) == {"y"}

    def test_empty(self):
        assert classify_top_k({}, 5) == set()


@settings(max_examples=80)
@given(
    st.dictionaries(st.integers(), st.floats(min_value=0, max_value=1e9), max_size=200),
    st.integers(min_value=0, max_value=50),
)
def test_matches_sorted_reference(frequencies, k):
    hot = classify_top_k(frequencies, k)
    assert len(hot) == min(k, len(frequencies))
    if not hot:
        return
    # Every hot item's frequency must be >= every cold item's frequency.
    hot_min = min(frequencies[item] for item in hot)
    cold = set(frequencies) - hot
    if cold:
        assert hot_min >= max(frequencies[item] for item in cold)
