"""Tests for manager-side degradation: retry, backoff, quarantine, disable."""

import pytest

from repro.core.access import AccessType
from repro.core.manager import AdaptationManager, ManagerConfig

COMPACT = "compact"
FAST = "fast"


class FlakyIndex:
    """A fake index whose migrations raise until told otherwise."""

    def __init__(self, units, failing=()):
        self.encodings = {unit: COMPACT for unit in units}
        self.failing = set(failing)
        self.attempts = []
        self.migrations = []

    def tracked_population(self):
        return len(self.encodings)

    def used_memory(self):
        return len(self.encodings) * 100

    @property
    def num_keys(self):
        return len(self.encodings) * 10

    def encoding_of(self, identifier):
        return self.encodings.get(identifier)

    def migrate(self, identifier, target_encoding, context):
        self.attempts.append(identifier)
        if identifier in self.failing:
            raise MemoryError(f"simulated allocation failure for {identifier}")
        if self.encodings.get(identifier) == target_encoding:
            return False
        self.encodings[identifier] = target_encoding
        self.migrations.append((identifier, target_encoding))
        return True

    def encoding_census(self):
        census = {}
        for encoding in (COMPACT, FAST):
            count = sum(1 for value in self.encodings.values() if value == encoding)
            if count:
                census[encoding] = (count, 100.0)
        return census


def make_manager(index, **overrides):
    defaults = dict(
        encoding_order=(COMPACT, FAST),
        initial_skip_length=0,
        skip_min=0,
        skip_max=10,
        initial_sample_size=1_000_000,  # phases are forced manually
        use_bloom_filter=False,
        fallback_k_min=4,
    )
    defaults.update(overrides)
    return AdaptationManager(index, ManagerConfig(**defaults))


def heat_and_adapt(manager, unit, reads=10):
    """Make ``unit`` hot this epoch and force an adaptation phase."""
    for _ in range(reads):
        manager.track(unit, AccessType.READ)
    return manager.run_adaptation()


class TestFailureAccounting:
    def test_failure_does_not_propagate_and_is_counted(self):
        index = FlakyIndex(range(5), failing={0})
        manager = make_manager(index)
        event = heat_and_adapt(manager, 0)
        assert index.attempts == [0]
        assert event.migration_failures == 1
        assert event.expansions == 0
        assert manager.total_migration_failures == 1
        assert manager.counters.migration_failures == 1
        assert index.encodings[0] == COMPACT  # untouched

    def test_success_leaves_failure_state_clean(self):
        index = FlakyIndex(range(5))
        manager = make_manager(index)
        event = heat_and_adapt(manager, 0)
        assert event.migration_failures == 0
        assert index.encodings[0] == FAST
        assert manager.total_migration_failures == 0


class TestBackoff:
    def test_failed_unit_backs_off_before_retry(self):
        index = FlakyIndex(range(5), failing={0})
        manager = make_manager(index, retry_backoff_base=1, max_migration_retries=5)
        heat_and_adapt(manager, 0)  # failure #1, backoff = 1 phase
        heat_and_adapt(manager, 0)  # still backing off: no attempt
        assert index.attempts == [0]
        event = heat_and_adapt(manager, 0)  # backoff elapsed: retry
        assert index.attempts == [0, 0]
        assert event.retries == 1
        assert manager.counters.migration_retries == 1

    def test_backoff_grows_exponentially_and_caps(self):
        index = FlakyIndex(range(5), failing={0})
        manager = make_manager(
            index,
            retry_backoff_base=1,
            retry_backoff_cap=2,
            max_migration_retries=100,
        )
        attempt_epochs = []
        for _ in range(12):
            before = len(index.attempts)
            epoch = manager.epoch
            heat_and_adapt(manager, 0)
            if len(index.attempts) > before:
                attempt_epochs.append(epoch)
        gaps = [b - a for a, b in zip(attempt_epochs, attempt_epochs[1:])]
        # backoff 1 after the first failure, then capped at 2 phases.
        assert gaps[0] == 2  # skipped exactly the one backoff phase
        assert all(gap == 3 for gap in gaps[1:])  # cap: 2 skipped phases

    def test_retry_after_transient_failure_succeeds(self):
        index = FlakyIndex(range(5), failing={0})
        manager = make_manager(index, retry_backoff_base=1)
        heat_and_adapt(manager, 0)
        index.failing.clear()  # the fault was transient
        heat_and_adapt(manager, 0)  # backing off
        event = heat_and_adapt(manager, 0)
        assert index.encodings[0] == FAST
        assert event.retries == 1
        assert event.expansions == 1
        assert manager.total_migration_failures == 1


class TestQuarantine:
    def make_quarantined(self, index, **overrides):
        manager = make_manager(
            index, retry_backoff_base=1, max_migration_retries=2, **overrides
        )
        heat_and_adapt(manager, 0)  # failure #1
        heat_and_adapt(manager, 0)  # backoff
        event = heat_and_adapt(manager, 0)  # failure #2 -> quarantine
        return manager, event

    def test_repeated_failures_quarantine_the_unit(self):
        index = FlakyIndex(range(5), failing={0})
        manager, event = self.make_quarantined(index)
        assert manager.is_quarantined(0)
        assert manager.quarantined_units == 1
        assert event.quarantined == 1
        assert manager.counters.quarantined_units == 1

    def test_quarantined_unit_never_retried(self):
        index = FlakyIndex(range(5), failing={0})
        manager, _ = self.make_quarantined(index)
        attempts_before = len(index.attempts)
        for _ in range(5):
            heat_and_adapt(manager, 0)
        assert len(index.attempts) == attempts_before

    def test_other_units_still_migrate(self):
        index = FlakyIndex(range(5), failing={0})
        manager, _ = self.make_quarantined(index)
        heat_and_adapt(manager, 1)
        assert index.encodings[1] == FAST

    def test_forget_clears_quarantine(self):
        index = FlakyIndex(range(5), failing={0})
        manager, _ = self.make_quarantined(index)
        manager.forget(0)
        assert not manager.is_quarantined(0)
        assert manager.quarantined_units == 0


class TestDisable:
    def test_adaptation_disables_after_total_failures(self):
        index = FlakyIndex(range(10), failing=set(range(10)))
        manager = make_manager(
            index,
            disable_after_failures=3,
            max_migration_retries=100,
            retry_backoff_base=1,
        )
        assert not manager.adaptation_degraded
        events = []
        for unit in range(3):
            events.append(heat_and_adapt(manager, unit))
        assert manager.adaptation_degraded
        assert events[-1].adaptation_disabled
        assert not events[0].adaptation_disabled
        # Disabled manager stops sampling: the index keeps its layout.
        assert not any(manager.is_sample() for _ in range(20))

    def test_event_log_surfaces_the_degradation(self):
        index = FlakyIndex(range(10), failing=set(range(10)))
        manager = make_manager(
            index, disable_after_failures=2, max_migration_retries=100
        )
        heat_and_adapt(manager, 0)
        heat_and_adapt(manager, 1)
        assert manager.events.total_migration_failures == 2
        assert any(event.adaptation_disabled for event in manager.events)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"epsilon": 0.0},
            {"epsilon": 1.0},
            {"delta": -0.1},
            {"delta": 1.5},
            {"skip_min": -1},
            {"skip_jitter": -0.01},
            {"skip_jitter": 1.01},
            {"bloom_bits_per_item": 0},
            {"max_sample_size": 0},
            {"initial_skip_length": 11},  # above skip_max=10
            {"initial_skip_length": 1, "skip_min": 2},  # below skip_min
            {"max_migration_retries": 0},
            {"retry_backoff_base": 0},
            {"retry_backoff_base": 4, "retry_backoff_cap": 2},
            {"disable_after_failures": 0},
        ],
    )
    def test_bad_config_rejected(self, overrides):
        defaults = dict(encoding_order=(COMPACT, FAST), skip_min=0, skip_max=10)
        defaults.update(overrides)
        with pytest.raises(ValueError):
            ManagerConfig(**defaults)

    def test_boundary_values_accepted(self):
        ManagerConfig(
            encoding_order=(COMPACT, FAST),
            epsilon=0.99,
            delta=0.01,
            skip_jitter=1.0,
            bloom_bits_per_item=1,
            skip_min=0,
            skip_max=0,
            initial_skip_length=0,
            max_migration_retries=1,
            retry_backoff_base=1,
            retry_backoff_cap=1,
            disable_after_failures=1,
        )
