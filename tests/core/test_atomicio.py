"""Tests for the build-aside+swap file publication helpers."""

import pytest

from repro.core.atomicio import discard_aside, fsync_dir, publish_aside, write_aside


class TestWriteAside:
    def test_temp_lives_next_to_final(self, tmp_path):
        final = tmp_path / "blob.bin"
        tmp = write_aside(final, b"payload")
        assert tmp.parent == tmp_path
        assert tmp.name.startswith("blob.bin.")
        assert tmp.suffix == ".tmp"
        assert tmp.read_bytes() == b"payload"
        assert not final.exists()
        discard_aside(tmp)

    def test_non_durable_write_skips_fsync(self, tmp_path):
        tmp = write_aside(tmp_path / "x", b"d", durable=False)
        assert tmp.read_bytes() == b"d"
        discard_aside(tmp)


class TestPublishAside:
    def test_publish_replaces_existing_file(self, tmp_path):
        final = tmp_path / "blob.bin"
        final.write_bytes(b"old")
        tmp = write_aside(final, b"new")
        publish_aside(tmp, final)
        assert final.read_bytes() == b"new"
        assert not tmp.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_failed_publish_removes_temp(self, tmp_path):
        final = tmp_path / "dir-in-the-way"
        final.mkdir()
        (final / "occupant").write_bytes(b"x")  # non-empty dir: replace fails
        tmp = write_aside(tmp_path / "blob.bin", b"data")
        with pytest.raises(OSError):
            publish_aside(tmp, final)
        assert not tmp.exists()


class TestDiscardAside:
    def test_discard_is_idempotent(self, tmp_path):
        tmp = write_aside(tmp_path / "blob", b"x")
        discard_aside(tmp)
        discard_aside(tmp)  # already gone: must not raise
        assert not tmp.exists()


class TestFsyncDir:
    def test_fsync_dir_accepts_a_directory(self, tmp_path):
        fsync_dir(tmp_path)  # smoke: no exception

    def test_fsync_missing_dir_raises(self, tmp_path):
        with pytest.raises(OSError):
            fsync_dir(tmp_path / "absent")
