"""Tests for the Bloom filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=100)
        items = [f"item-{i}" for i in range(100)]
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    def test_unseen_mostly_absent(self):
        bloom = BloomFilter(capacity=1000)
        for i in range(1000):
            bloom.add(("seen", i))
        false_positives = sum(1 for i in range(1000) if ("unseen", i) in bloom)
        # 10 bits/item -> ~1% FPR; allow generous slack.
        assert false_positives < 60

    def test_add_and_check_first_sighting_false(self):
        bloom = BloomFilter(capacity=64)
        assert bloom.add_and_check("x") is False
        assert bloom.add_and_check("x") is True

    def test_reset(self):
        bloom = BloomFilter(capacity=64)
        bloom.add("x")
        bloom.reset()
        assert "x" not in bloom
        assert bloom.approximate_count == 0

    def test_count_tracks_insertions(self):
        bloom = BloomFilter(capacity=64)
        bloom.add("a")
        bloom.add_and_check("b")
        assert bloom.approximate_count == 2

    def test_capacity_floor(self):
        bloom = BloomFilter(capacity=0)
        bloom.add("x")
        assert "x" in bloom

    def test_invalid_bits_per_item(self):
        with pytest.raises(ValueError):
            BloomFilter(capacity=10, bits_per_item=0)

    def test_size_bytes(self):
        bloom = BloomFilter(capacity=100, bits_per_item=10)
        assert bloom.size_bytes() == 125

    def test_num_hashes_near_optimal(self):
        bloom = BloomFilter(capacity=10, bits_per_item=10)
        assert bloom.num_hashes == 7  # round(ln2 * 10)

    def test_works_with_int_identifiers(self):
        bloom = BloomFilter(capacity=32)
        bloom.add(123456789)
        assert 123456789 in bloom


@settings(max_examples=40)
@given(st.lists(st.integers(), max_size=200))
def test_membership_property(items):
    bloom = BloomFilter(capacity=max(1, len(items)))
    for item in items:
        bloom.add(item)
    assert all(item in bloom for item in items)
