"""Tests for offline training."""

from repro.core.access import AccessType
from repro.core.budget import MemoryBudget
from repro.core.trained import rank_units, train_offline

from tests.core.test_manager import COMPACT, FAST, FakeIndex


class TestRankUnits:
    def test_orders_by_frequency(self):
        trace = [("a", AccessType.READ)] * 3 + [("b", AccessType.READ)] * 5
        assert rank_units(trace) == ["b", "a"]

    def test_write_weight(self):
        trace = [("a", AccessType.READ)] * 3 + [("b", AccessType.INSERT)] * 2
        assert rank_units(trace, read_weight=1.0, write_weight=2.0) == ["b", "a"]

    def test_empty_trace(self):
        assert rank_units([]) == []


class TestTrainOffline:
    def test_expands_hottest_first_until_budget(self):
        index = FakeIndex(range(10), compact_bytes=100, fast_bytes=1000)
        trace = []
        for unit in range(10):
            trace.extend([(unit, AccessType.READ)] * (10 - unit))
        # All-compact = 1000 bytes; each expansion adds 900.
        budget = MemoryBudget.absolute(1000 + 2 * 900 + 50)
        migrated = train_offline(index, trace, FAST, budget)
        assert migrated == 3  # budget checked before each migration
        assert index.encodings[0] == FAST
        assert index.encodings[1] == FAST
        assert index.encodings[2] == FAST
        assert index.encodings[3] == COMPACT

    def test_unbounded_expands_all_touched(self):
        index = FakeIndex(range(5))
        trace = [(unit, AccessType.READ) for unit in range(3)]
        migrated = train_offline(index, trace, FAST)
        assert migrated == 3
        assert index.encodings[3] == COMPACT

    def test_skips_already_fast_units(self):
        index = FakeIndex(range(3))
        index.encodings[0] = FAST
        migrated = train_offline(index, [(0, AccessType.READ)], FAST)
        assert migrated == 0

    def test_skips_vanished_units(self):
        index = FakeIndex(range(3))
        migrated = train_offline(index, [("ghost", AccessType.READ)], FAST)
        assert migrated == 0
