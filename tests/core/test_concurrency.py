"""Tests for the concurrent sampling strategies."""

import threading

from repro.core.access import AccessType
from repro.core.concurrency import (
    ConcurrentSampler,
    GlobalSampling,
    ThreadLocalSampling,
)


def run_threads(worker, count):
    threads = [threading.Thread(target=worker, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestGlobalSampling:
    def test_single_thread_aggregation(self):
        strategy = GlobalSampling()
        strategy.record("a", AccessType.READ, epoch=1)
        strategy.record("a", AccessType.INSERT, epoch=1)
        strategy.record("b", AccessType.READ, epoch=1)
        assert strategy.sampled_count() == 3
        samples = strategy.drain()
        assert samples["a"].reads == 1
        assert samples["a"].writes == 1
        assert samples["b"].reads == 1
        assert strategy.sampled_count() == 0

    def test_multithreaded_counts_complete(self):
        strategy = GlobalSampling()

        def worker(thread_index):
            for step in range(500):
                strategy.record(step % 7, AccessType.READ, epoch=1)

        run_threads(worker, 4)
        assert strategy.sampled_count() == 2000
        samples = strategy.drain()
        assert sum(stats.reads for stats in samples.values()) == 2000

    def test_drain_counts_phase_lock(self):
        strategy = GlobalSampling()
        strategy.drain()
        assert strategy.counters.global_phase_locks == 1

    def test_memory_scales_with_entries(self):
        strategy = GlobalSampling()
        for unit in range(100):
            strategy.record(unit, AccessType.READ, epoch=1)
        assert strategy.memory_bytes() == 100 * (8 + 8 + 21)


class TestThreadLocalSampling:
    def test_single_thread_aggregation(self):
        strategy = ThreadLocalSampling()
        strategy.record("a", AccessType.READ, epoch=1)
        strategy.record("a", AccessType.READ, epoch=1)
        merged = strategy.drain()
        assert merged["a"].reads == 2

    def test_merge_combines_thread_maps(self):
        strategy = ThreadLocalSampling()

        def worker(thread_index):
            for step in range(300):
                strategy.record(step % 5, AccessType.READ, epoch=1)

        run_threads(worker, 4)
        assert strategy.sampled_count() == 1200
        merged = strategy.drain()
        assert sum(stats.reads for stats in merged.values()) == 1200
        assert len(merged) == 5
        assert strategy.sampled_count() == 0

    def test_merge_counted(self):
        strategy = ThreadLocalSampling()
        strategy.drain()
        assert strategy.counters.merges == 1

    def test_memory_includes_per_map_overhead(self):
        strategy = ThreadLocalSampling()
        barrier = threading.Barrier(4)

        def worker(thread_index):
            strategy.record(thread_index, AccessType.READ, epoch=1)
            # Keep all four threads alive together so thread ids (and thus
            # thread-local stores) cannot be recycled mid-test.
            barrier.wait()

        run_threads(worker, 4)
        # Four thread maps, each with fixed bucket-array overhead.
        assert strategy.memory_bytes() >= 4 * 64 * 8


class TestConcurrentSampler:
    def test_rate_per_thread(self):
        sampler = ConcurrentSampler(skip_length=4)
        outcomes = [sampler.is_sample() for _ in range(10)]
        assert sum(outcomes) == 2

    def test_threads_have_independent_countdowns(self):
        sampler = ConcurrentSampler(skip_length=9)
        results = {}

        def worker(thread_index):
            results[thread_index] = sum(sampler.is_sample() for _ in range(100))

        run_threads(worker, 4)
        assert all(count == 10 for count in results.values())

    def test_skip_zero(self):
        sampler = ConcurrentSampler(skip_length=0)
        assert all(sampler.is_sample() for _ in range(5))

    def test_invalid_skip(self):
        import pytest

        with pytest.raises(ValueError):
            ConcurrentSampler(skip_length=-1)
        sampler = ConcurrentSampler()
        with pytest.raises(ValueError):
            sampler.set_skip_length(-5)


class TestCuckooGlobalSampling:
    def test_aggregation(self):
        from repro.core.concurrency import CuckooGlobalSampling

        strategy = CuckooGlobalSampling()
        strategy.record("a", AccessType.READ, epoch=1)
        strategy.record("a", AccessType.INSERT, epoch=1)
        assert strategy.sampled_count() == 2
        merged = strategy.drain()
        assert merged["a"].reads == 1
        assert merged["a"].writes == 1
        assert strategy.sampled_count() == 0

    def test_multithreaded_records_complete(self):
        from repro.core.concurrency import CuckooGlobalSampling

        strategy = CuckooGlobalSampling()

        def worker(thread_index):
            for step in range(400):
                strategy.record((thread_index, step % 9), AccessType.READ, epoch=1)

        run_threads(worker, 4)
        merged = strategy.drain()
        assert sum(stats.reads for stats in merged.values()) == 1600
        assert len(merged) == 36

    def test_counters_exposed(self):
        from repro.core.concurrency import CuckooGlobalSampling

        strategy = CuckooGlobalSampling()
        strategy.record("x", AccessType.READ, epoch=1)
        assert strategy.counters.lock_acquisitions > 0
        assert strategy.memory_bytes() > 0
