"""Failure-injection tests for the adaptation manager.

The manager must keep functioning when the index declines migrations,
when units vanish mid-phase, and when the heuristic returns pathological
decision streams — real indexes do all of these (full budgets, splits,
concurrent deletes).
"""

from repro.core.access import AccessType
from repro.core.heuristics import HeuristicDecision

from tests.core.test_manager import COMPACT, FAST, FakeIndex, make_manager


class RefusingIndex(FakeIndex):
    """An index whose migrate() always declines (e.g. allocation failed)."""

    def migrate(self, identifier, target_encoding, context):
        return False


class FlakyIndex(FakeIndex):
    """Declines every other migration."""

    def __init__(self, units):
        super().__init__(units)
        self._flip = False

    def migrate(self, identifier, target_encoding, context):
        self._flip = not self._flip
        if self._flip:
            return False
        return super().migrate(identifier, target_encoding, context)


class TestDeclinedMigrations:
    def test_refused_migrations_not_counted(self):
        index = RefusingIndex(range(10))
        manager = make_manager(index, initial_sample_size=20, max_sample_size=20)
        for _ in range(20):
            manager.track(0, AccessType.READ)
        assert manager.counters.expansions == 0
        assert manager.counters.compactions == 0
        assert manager.events[0].expansions == 0

    def test_flaky_index_partial_migrations(self):
        index = FlakyIndex(range(10))
        manager = make_manager(
            index, initial_sample_size=40, max_sample_size=40, fallback_k_min=5
        )
        for step in range(40):
            manager.track(step % 5, AccessType.READ)
        migrated = sum(1 for enc in index.encodings.values() if enc == FAST)
        assert manager.counters.expansions == migrated
        assert 0 < migrated < 5

    def test_manager_keeps_running_after_refusals(self):
        index = RefusingIndex(range(10))
        manager = make_manager(index, initial_sample_size=10, max_sample_size=10)
        for round_number in range(5):
            for _ in range(10):
                manager.track(0, AccessType.READ)
        assert manager.counters.adaptation_phases == 5


class TestPathologicalHeuristics:
    def test_stop_tracking_everything(self):
        def drop_all(info):
            return HeuristicDecision.stop_tracking()

        index = FakeIndex(range(10))
        manager = make_manager(
            index, initial_sample_size=10, max_sample_size=10, heuristic=drop_all
        )
        for _ in range(10):
            manager.track(3, AccessType.READ)
        assert manager.tracked_units == 0
        # Tracking resumes fine in the next phase.
        for _ in range(10):
            manager.track(3, AccessType.READ)
        assert manager.counters.adaptation_phases == 2

    def test_migrate_to_current_encoding_is_noop(self):
        def same_encoding(info):
            return HeuristicDecision.migrate(info.current_encoding)

        index = FakeIndex(range(10))
        manager = make_manager(
            index, initial_sample_size=10, max_sample_size=10, heuristic=same_encoding
        )
        for _ in range(10):
            manager.track(0, AccessType.READ)
        assert index.migrations == []
        assert manager.counters.expansions == 0

    def test_oscillating_heuristic_counts_both_directions(self):
        state = {"flip": False}

        def oscillate(info):
            state["flip"] = not state["flip"]
            target = FAST if info.current_encoding == COMPACT else COMPACT
            return HeuristicDecision.migrate(target)

        index = FakeIndex(range(4))
        manager = make_manager(
            index, initial_sample_size=8, max_sample_size=8, heuristic=oscillate
        )
        for round_number in range(3):
            for _ in range(8):
                manager.track(0, AccessType.READ)
        assert manager.counters.expansions >= 1
        assert manager.counters.compactions >= 1


class TestVanishingUnits:
    def test_all_units_vanish_before_phase(self):
        index = FakeIndex(range(5))
        manager = make_manager(index, initial_sample_size=10, max_sample_size=10)
        for _ in range(9):
            manager.track(0, AccessType.READ)
        index.encodings.clear()
        index.encodings["fresh"] = COMPACT
        manager.track("fresh", AccessType.READ)  # triggers the phase
        assert manager.counters.adaptation_phases == 1
        assert manager.stats_of(0) is None

    def test_forget_unknown_unit_is_noop(self):
        manager = make_manager(FakeIndex(range(3)))
        manager.forget("never-seen")  # must not raise

    def test_update_context_unknown_unit_is_noop(self):
        manager = make_manager(FakeIndex(range(3)))
        manager.update_context("never-seen", "ctx")  # must not raise


class TestManualAdaptation:
    def test_run_adaptation_with_empty_samples(self):
        manager = make_manager(FakeIndex(range(5)))
        event = manager.run_adaptation()
        assert event.sampled == 0
        assert event.hot == 0
        assert manager.epoch == 2

    def test_epoch_separates_stale_counters(self):
        index = FakeIndex(range(5))
        manager = make_manager(index, initial_sample_size=100, max_sample_size=100)
        manager.track(0, AccessType.READ)
        manager.run_adaptation()
        manager.track(0, AccessType.READ)
        stats = manager.stats_of(0)
        # Counter was reset when the new epoch's first access arrived.
        assert stats.reads == 1
        assert stats.last_epoch == manager.epoch
