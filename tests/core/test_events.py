"""Tests for the adaptation event log."""

from repro.core.events import AdaptationEvent, EventLog


def make_event(epoch=1, expansions=0, compactions=0):
    return AdaptationEvent(
        epoch=epoch,
        accesses_seen=1000,
        sampled=100,
        unique_tracked=50,
        hot=10,
        expansions=expansions,
        compactions=compactions,
        evictions=0,
        skip_length_before=50,
        skip_length_after=100,
        sample_size_after=2000,
        index_bytes=123456,
    )


class TestEventLog:
    def test_append_and_len(self):
        log = EventLog()
        log.append(make_event())
        log.append(make_event(epoch=2))
        assert len(log) == 2
        assert log[1].epoch == 2

    def test_totals(self):
        log = EventLog()
        log.append(make_event(expansions=3, compactions=1))
        log.append(make_event(epoch=2, expansions=2, compactions=4))
        assert log.total_expansions == 5
        assert log.total_compactions == 5
        assert log.total_migrations == 10

    def test_iteration(self):
        log = EventLog()
        log.append(make_event())
        assert [event.epoch for event in log] == [1]

    def test_clear(self):
        log = EventLog()
        log.append(make_event())
        log.clear()
        assert len(log) == 0
        assert log.total_migrations == 0

    def test_events_are_frozen(self):
        import dataclasses

        import pytest

        event = make_event()
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.epoch = 99
