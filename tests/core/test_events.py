"""Tests for the adaptation event log."""

import json

from repro.core.events import AdaptationEvent, EventLog


def make_event(epoch=1, expansions=0, compactions=0, **overrides):
    kwargs = dict(
        epoch=epoch,
        accesses_seen=1000,
        sampled=100,
        unique_tracked=50,
        hot=10,
        expansions=expansions,
        compactions=compactions,
        evictions=0,
        skip_length_before=50,
        skip_length_after=100,
        sample_size_after=2000,
        index_bytes=123456,
    )
    kwargs.update(overrides)
    return AdaptationEvent(**kwargs)


class TestEventLog:
    def test_append_and_len(self):
        log = EventLog()
        log.append(make_event())
        log.append(make_event(epoch=2))
        assert len(log) == 2
        assert log[1].epoch == 2

    def test_totals(self):
        log = EventLog()
        log.append(make_event(expansions=3, compactions=1))
        log.append(make_event(epoch=2, expansions=2, compactions=4))
        assert log.total_expansions == 5
        assert log.total_compactions == 5
        assert log.total_migrations == 10

    def test_iteration(self):
        log = EventLog()
        log.append(make_event())
        assert [event.epoch for event in log] == [1]

    def test_clear(self):
        log = EventLog()
        log.append(make_event())
        log.clear()
        assert len(log) == 0
        assert log.total_migrations == 0

    def test_events_are_frozen(self):
        import dataclasses

        import pytest

        event = make_event()
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.epoch = 99

    def test_aggregates_against_hand_built_sequence(self):
        log = EventLog()
        log.append(make_event(epoch=1, expansions=4, migration_failures=1))
        log.append(make_event(epoch=2, compactions=2, quarantined=1))
        log.append(make_event(epoch=3, expansions=1, compactions=1, retries=2))
        assert log.total_expansions == 5
        assert log.total_compactions == 3
        assert log.total_migrations == 8
        assert log.total_migration_failures == 1
        assert log.total_quarantined == 1
        assert log[2].migrations == 2


class TestSerialization:
    """AdaptationEvent.as_dict is the single serialization path (trace
    sink attributes, timeline benchmarks, and to_jsonl all use it)."""

    def test_as_dict_covers_every_field(self):
        import dataclasses

        event = make_event(migration_failures=2, adaptation_disabled=True)
        document = event.as_dict()
        assert set(document) == {f.name for f in dataclasses.fields(event)}
        assert document["epoch"] == 1
        assert document["migration_failures"] == 2
        assert document["adaptation_disabled"] is True
        json.dumps(document)  # JSON-safe as produced

    def test_as_dicts_preserves_order(self):
        log = EventLog()
        log.append(make_event(epoch=1))
        log.append(make_event(epoch=2))
        assert [entry["epoch"] for entry in log.as_dicts()] == [1, 2]

    def test_to_jsonl_roundtrips(self):
        log = EventLog()
        log.append(make_event(epoch=1, expansions=3))
        log.append(make_event(epoch=2, compactions=1))
        lines = log.to_jsonl().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed == log.as_dicts()

    def test_empty_log_to_jsonl(self):
        assert EventLog().to_jsonl() == ""
