"""Tests for the structural invariant validator."""

import pytest

from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.core.invariants import InvariantViolation, validate, violations_of
from repro.dualstage.index import DualStageIndex
from repro.fst.trie import FST
from repro.hybridtrie.tree import HybridTrie


def int_tree(n=500, encoding=LeafEncoding.GAPPED):
    return BPlusTree.bulk_load(
        [(key, key * 3) for key in range(n)], encoding, leaf_capacity=32
    )


def byte_pairs(n=300):
    return [(key.to_bytes(4, "big"), key) for key in range(0, n * 7, 7)]


class TestDispatch:
    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            violations_of(object())

    def test_validate_raises_with_violation_list(self):
        tree = int_tree()
        tree._num_keys += 1
        with pytest.raises(InvariantViolation) as exc_info:
            validate(tree)
        assert exc_info.value.violations
        assert "num_keys" in str(exc_info.value)

    def test_invariant_violation_is_assertion_error(self):
        assert issubclass(InvariantViolation, AssertionError)


class TestBPlusTree:
    @pytest.mark.parametrize("encoding", list(LeafEncoding))
    def test_healthy_tree_is_clean(self, encoding):
        assert violations_of(int_tree(encoding=encoding)) == []

    def test_healthy_after_mixed_operations(self):
        tree = int_tree()
        for key in range(500, 650):
            tree.insert(key, key)
        for key in range(0, 100, 3):
            tree.delete(key)
        assert violations_of(tree) == []
        tree.verify()  # must not raise

    def test_detects_key_count_drift(self):
        tree = int_tree()
        tree._num_keys -= 2
        assert any("num_keys" in violation for violation in violations_of(tree))

    def test_detects_leaf_byte_drift(self):
        tree = int_tree()
        tree._leaf_bytes += 64
        assert any("leaf bytes" in violation for violation in violations_of(tree))

    def test_detects_leaf_count_drift(self):
        tree = int_tree()
        tree._num_leaves += 1
        assert any("num_leaves" in violation for violation in violations_of(tree))


class TestHybridTrie:
    def test_healthy_trie_is_clean(self):
        trie = HybridTrie(byte_pairs(), adaptive=False)
        assert violations_of(trie) == []
        trie.verify()

    def test_healthy_after_expansions(self):
        trie = HybridTrie(byte_pairs(), art_levels=1, adaptive=False)
        expanded = []
        for branch in _branches(trie):
            if trie.expand_branch(branch):
                expanded.append(branch)
            if len(expanded) == 3:
                break
        assert expanded
        assert violations_of(trie) == []
        for branch in expanded:
            assert trie.compact_branch(branch)
        assert violations_of(trie) == []

    def test_detects_branch_counter_drift(self):
        trie = HybridTrie(byte_pairs(), adaptive=False)
        trie._num_branches += 1
        assert any("branch" in violation for violation in violations_of(trie))


def _branches(trie):
    """All reachable TrieBranch wrappers, found by walking the upper ART."""
    from repro.hybridtrie.tagged import TrieBranch

    found = []

    def walk(node):
        if isinstance(node, TrieBranch):
            found.append(node)
            if node.expanded:
                walk(node.art_node)
            return
        for _, child in node.children_items():
            if not isinstance(child, int):
                walk(child)

    if trie._root is not None:
        walk(trie._root)
    return found


class TestFST:
    @pytest.mark.parametrize("dense_levels", [0, 2, 64])
    def test_healthy_fst_is_clean(self, dense_levels):
        fst = FST(byte_pairs(), dense_levels=dense_levels)
        assert violations_of(fst) == []
        fst.verify()

    def test_empty_fst_is_clean(self):
        assert violations_of(FST([])) == []

    def test_detects_missing_value(self):
        fst = FST(byte_pairs())
        fst._values.pop()
        assert any("value array" in violation for violation in violations_of(fst))

    def test_detects_corrupt_rank_directory(self):
        fst = FST(byte_pairs())
        fst._sparse_louds._words[0] ^= 0b100
        assert violations_of(fst)


class TestDualStage:
    def test_healthy_index_is_clean(self):
        index = DualStageIndex(merge_ratio=0.2)
        for key in range(400):
            index.insert(key, key + 1)
        for key in range(0, 100, 5):
            index.delete(key)
        assert index.merges > 0
        assert violations_of(index) == []
        index.verify()

    def test_detects_tombstone_in_dynamic_stage(self):
        index = DualStageIndex()
        index._dynamic.insert(7, 70)  # bypass insert: it would merge at once
        index._tombstones.add(7)
        assert any("tombstoned" in violation for violation in violations_of(index))

    def test_detects_corrupt_block_directory(self):
        index = DualStageIndex.bulk_load([(key, key) for key in range(2000)])
        index._static._block_mins[1] += 1
        assert any("directory" in violation for violation in violations_of(index))
