"""Tests for Equation (1) and the skip sampler."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import (
    SkipSampler,
    adjust_skip_length,
    required_sample_size,
)


class TestRequiredSampleSize:
    def test_matches_equation(self):
        n, k, eps, delta = 1_000_000, 1000, 0.05, 0.05
        expected = math.ceil(
            (2 / eps**2) * math.log((2 * n + k * (n - k)) / delta)
        )
        assert required_sample_size(n, k, eps, delta) == expected

    def test_grows_quadratically_with_inverse_epsilon(self):
        small = required_sample_size(10**6, 1000, 0.10)
        large = required_sample_size(10**6, 1000, 0.05)
        assert 3.0 < large / small < 4.5  # ~4x plus the log term

    def test_paper_figure2_scale(self):
        # Figure 2's order of magnitude: O(100k) samples at eps=2%, a few
        # thousand at eps=10% (the paper's exact constants differ slightly
        # in the log argument; see EXPERIMENTS.md).
        assert 80_000 < required_sample_size(10**6, 1000, 0.02) < 250_000
        assert 3_000 < required_sample_size(10**6, 250, 0.10) < 15_000

    def test_empty_population(self):
        assert required_sample_size(0, 10) == 0

    def test_k_clamped_to_population(self):
        assert required_sample_size(10, 1000) == required_sample_size(10, 10)

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            required_sample_size(100, 10, epsilon=0.0)
        with pytest.raises(ValueError):
            required_sample_size(100, 10, epsilon=1.0)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            required_sample_size(100, 10, delta=1.5)


class TestSkipSampler:
    def test_skip_zero_samples_everything(self):
        sampler = SkipSampler(0)
        assert all(sampler.is_sample() for _ in range(10))

    def test_skip_n_samples_every_n_plus_one(self):
        sampler = SkipSampler(3)
        outcomes = [sampler.is_sample() for _ in range(12)]
        assert outcomes == [False, False, False, True] * 3

    def test_sampling_rate(self):
        sampler = SkipSampler(9)
        samples = sum(sampler.is_sample() for _ in range(1000))
        assert samples == 100

    def test_negative_skip_rejected(self):
        with pytest.raises(ValueError):
            SkipSampler(-1)

    def test_set_skip_takes_effect_on_reload(self):
        sampler = SkipSampler(1)
        assert not sampler.is_sample()
        sampler.set_skip_length(4)
        assert sampler.is_sample()  # old countdown expires
        # New countdown uses the updated skip of 4.
        outcomes = [sampler.is_sample() for _ in range(5)]
        assert outcomes == [False, False, False, False, True]


class TestAdjustSkipLength:
    def test_stable_workload_increases_skip(self):
        assert adjust_skip_length(100, migrated=1, sampled=1000) == 200

    def test_shifting_workload_decreases_skip(self):
        assert adjust_skip_length(200, migrated=400, sampled=1000) == 100

    def test_middle_band_keeps_skip(self):
        assert adjust_skip_length(100, migrated=200, sampled=1000) == 100

    def test_clamped_to_range(self):
        assert adjust_skip_length(400, migrated=0, sampled=100, skip_max=500) == 500
        assert adjust_skip_length(60, migrated=90, sampled=100, skip_min=50) == 50

    def test_zero_samples_clamps_only(self):
        assert adjust_skip_length(1000, migrated=0, sampled=0, skip_max=500) == 500


@settings(max_examples=50)
@given(
    st.integers(min_value=1, max_value=10**7),
    st.integers(min_value=1, max_value=10**5),
)
def test_sample_size_monotone_in_population(n, k):
    smaller = required_sample_size(n, k)
    larger = required_sample_size(n * 2, k)
    assert larger >= smaller


@settings(max_examples=50)
@given(st.integers(min_value=0, max_value=50), st.integers(min_value=1, max_value=500))
def test_skip_sampler_exact_rate(skip, rounds):
    sampler = SkipSampler(skip)
    total = rounds * (skip + 1)
    assert sum(sampler.is_sample() for _ in range(total)) == rounds


class TestSkipJitter:
    def test_jitter_zero_is_deterministic_stride(self):
        sampler = SkipSampler(5, jitter=0.0)
        outcomes = [sampler.is_sample() for _ in range(18)]
        assert outcomes == ([False] * 5 + [True]) * 3

    def test_jitter_preserves_average_rate(self):
        sampler = SkipSampler(10, jitter=0.5, seed=7)
        total = 110_000
        samples = sum(sampler.is_sample() for _ in range(total))
        expected = total / 11
        assert abs(samples - expected) < expected * 0.1

    def test_jitter_varies_strides(self):
        sampler = SkipSampler(20, jitter=0.5, seed=3)
        strides = []
        gap = 0
        for _ in range(2000):
            if sampler.is_sample():
                strides.append(gap)
                gap = 0
            else:
                gap += 1
        assert len(set(strides[1:])) > 3  # strides actually vary

    def test_jitter_bounds(self):
        sampler = SkipSampler(20, jitter=0.25, seed=9)
        gap = 0
        gaps = []
        for _ in range(5000):
            if sampler.is_sample():
                gaps.append(gap)
                gap = 0
            else:
                gap += 1
        for observed in gaps[1:]:
            assert 15 <= observed <= 25

    def test_invalid_jitter(self):
        with pytest.raises(ValueError):
            SkipSampler(5, jitter=1.5)

    def test_reproducible_with_seed(self):
        a = SkipSampler(10, jitter=0.5, seed=42)
        b = SkipSampler(10, jitter=0.5, seed=42)
        assert [a.is_sample() for _ in range(200)] == [
            b.is_sample() for _ in range(200)
        ]
