"""Batched primitives must be exact drop-ins for their per-item loops.

``SkipSampler.consume`` promises bit-identical sampler state to the
equivalent ``is_sample`` loop, ``BloomFilter.add_many``/``contains_many``
must match per-item calls, ``OpCounters.add_many`` must merge like
repeated ``add``, and the memoized ``required_sample_size`` must return
what the uncached math returns.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bloom import BloomFilter
from repro.core.sampling import SkipSampler, required_sample_size
from repro.sim.counters import OpCounters


class TestSkipSamplerConsume:
    @settings(max_examples=60, deadline=None)
    @given(
        skip=st.integers(min_value=0, max_value=20),
        jitter=st.sampled_from([0.0, 0.25, 0.5]),
        chunks=st.lists(st.integers(min_value=0, max_value=200), max_size=8),
    )
    def test_matches_is_sample_loop(self, skip, jitter, chunks):
        batched = SkipSampler(skip_length=skip, jitter=jitter)
        looped = SkipSampler(skip_length=skip, jitter=jitter)
        for count in chunks:
            offsets = batched.consume(count)
            expected = [
                offset for offset in range(count) if looped.is_sample()
            ]
            assert offsets == expected
            assert batched._countdown == looped._countdown
            assert batched._state == looped._state

    def test_zero_skip_samples_everything(self):
        sampler = SkipSampler(skip_length=0)
        assert sampler.consume(5) == [0, 1, 2, 3, 4]

    def test_consume_zero_is_noop(self):
        sampler = SkipSampler(skip_length=3)
        before = sampler._countdown
        assert sampler.consume(0) == []
        assert sampler._countdown == before

    def test_skip_length_change_takes_effect_at_reload(self):
        batched = SkipSampler(skip_length=2)
        looped = SkipSampler(skip_length=2)
        batched.consume(4)
        for _ in range(4):
            looped.is_sample()
        batched.set_skip_length(7)
        looped.set_skip_length(7)
        assert batched.consume(40) == [
            offset for offset in range(40) if looped.is_sample()
        ]


class TestBloomBatches:
    def test_add_many_equals_add_loop(self):
        batched = BloomFilter(capacity=256)
        looped = BloomFilter(capacity=256)
        items = [f"unit-{index}" for index in range(120)]
        batched.add_many(items)
        for item in items:
            looped.add(item)
        assert batched._bits == looped._bits
        assert batched.approximate_count == looped.approximate_count

    def test_contains_many_equals_membership_loop(self):
        bloom = BloomFilter(capacity=256)
        present = [f"in-{index}" for index in range(80)]
        bloom.add_many(present)
        probe = present + [f"out-{index}" for index in range(80)]
        assert bloom.contains_many(probe) == [item in bloom for item in probe]

    def test_double_hashing_matches_position_generator(self):
        bloom = BloomFilter(capacity=64)
        bloom.add("probe")
        for position in bloom._positions("probe"):
            assert (bloom._bits >> position) & 1

    def test_empty_batches(self):
        bloom = BloomFilter(capacity=8)
        bloom.add_many([])
        assert bloom.contains_many([]) == []
        assert bloom.approximate_count == 0


class TestCounterBatches:
    def test_add_many_equals_add_loop(self):
        batched = OpCounters()
        looped = OpCounters()
        events = {"a": 3, "b": 1, "c": 7}
        batched.add_many(events)
        batched.add_many({"a": 2})
        for event, amount in events.items():
            looped.add(event, amount)
        looped.add("a", 2)
        assert batched.snapshot() == looped.snapshot()


class TestRequiredSampleSizeCache:
    def test_cached_value_matches_formula(self):
        population, k, epsilon, delta = 10_000, 50, 0.05, 0.05
        expected = max(
            1,
            math.ceil(
                (2.0 / epsilon**2)
                * math.log((2 * population + k * (population - k)) / delta)
            ),
        )
        assert required_sample_size(population, k, epsilon, delta) == expected
        # Second call hits the LRU cache and must agree.
        assert required_sample_size(population, k, epsilon, delta) == expected

    def test_validation_still_runs_before_cache(self):
        import pytest

        with pytest.raises(ValueError):
            required_sample_size(100, 5, epsilon=1.5)
        with pytest.raises(ValueError):
            required_sample_size(100, 5, delta=0.0)
        assert required_sample_size(0, 5) == 0

    def test_k_is_clamped(self):
        assert required_sample_size(100, 500) == required_sample_size(100, 100)
