"""Tests for the default context-sensitive heuristic function."""

from repro.core.access import AccessStats, Classification
from repro.core.heuristics import (
    HeuristicAction,
    HeuristicInput,
    make_threshold_heuristic,
)

FAST = "fast"
COMPACT = "compact"


def make_input(
    classification,
    current_encoding,
    history=(),
    utilization=0.0,
):
    stats = AccessStats()
    for entry in history:
        stats.push_classification(entry)
    return HeuristicInput(
        identifier="unit",
        stats=stats,
        classification=classification,
        current_encoding=current_encoding,
        budget_utilization=utilization,
        epoch=1,
    )


def heuristic(**kwargs):
    return make_threshold_heuristic(FAST, COMPACT)(make_input(**kwargs))


class TestHotPath:
    def test_hot_compact_expands(self):
        decision = heuristic(classification=Classification.HOT, current_encoding=COMPACT)
        assert decision.action is HeuristicAction.MIGRATE
        assert decision.target_encoding == FAST

    def test_hot_already_fast_keeps(self):
        decision = heuristic(classification=Classification.HOT, current_encoding=FAST)
        assert decision.action is HeuristicAction.KEEP

    def test_hot_but_budget_full_keeps(self):
        decision = heuristic(
            classification=Classification.HOT,
            current_encoding=COMPACT,
            utilization=0.97,
        )
        assert decision.action is HeuristicAction.KEEP


class TestColdPath:
    def test_one_cold_phase_keeps(self):
        decision = heuristic(
            classification=Classification.COLD,
            current_encoding=FAST,
            history=[Classification.COLD],
        )
        assert decision.action is HeuristicAction.KEEP

    def test_two_cold_phases_compact(self):
        decision = heuristic(
            classification=Classification.COLD,
            current_encoding=FAST,
            history=[Classification.COLD, Classification.COLD],
        )
        assert decision.action is HeuristicAction.MIGRATE
        assert decision.target_encoding == COMPACT

    def test_cold_already_compact_keeps(self):
        decision = heuristic(
            classification=Classification.COLD,
            current_encoding=COMPACT,
            history=[Classification.COLD] * 3,
        )
        assert decision.action is HeuristicAction.KEEP

    def test_over_budget_compacts_immediately(self):
        decision = heuristic(
            classification=Classification.COLD,
            current_encoding=FAST,
            history=[Classification.COLD],
            utilization=1.2,
        )
        assert decision.action is HeuristicAction.MIGRATE
        assert decision.target_encoding == COMPACT

    def test_long_cold_stops_tracking(self):
        decision = heuristic(
            classification=Classification.COLD,
            current_encoding=COMPACT,
            history=[Classification.COLD] * 8,
        )
        assert decision.action is HeuristicAction.STOP_TRACKING

    def test_hot_then_cold_streak_broken(self):
        decision = heuristic(
            classification=Classification.COLD,
            current_encoding=FAST,
            history=[Classification.COLD, Classification.HOT, Classification.COLD],
        )
        # Most recent is cold, but the streak is 1 -> keep.
        assert decision.action is HeuristicAction.KEEP


class TestFactories:
    def test_decision_constructors(self):
        from repro.core.heuristics import HeuristicDecision

        assert HeuristicDecision.keep().action is HeuristicAction.KEEP
        assert HeuristicDecision.migrate("x").target_encoding == "x"
        assert HeuristicDecision.stop_tracking().action is HeuristicAction.STOP_TRACKING
