"""Tests for memory budgets and the k estimate."""

import pytest

from repro.core.budget import MemoryBudget, estimate_expandable_k


class TestEstimateExpandableK:
    def test_paper_formula(self):
        # k = (mb - (nc*mc + nu*mu)) / (mu - mc)
        k = estimate_expandable_k(
            budget_bytes=100_000,
            compressed_count=100,
            compressed_avg_bytes=100.0,
            expanded_count=10,
            expanded_avg_bytes=1000.0,
        )
        # current = 10_000 + 10_000 = 20_000; headroom 80_000; growth 900
        assert k == 80_000 // 900

    def test_clamped_to_compressed_count(self):
        k = estimate_expandable_k(10**9, 5, 10.0, 0, 100.0)
        assert k == 5

    def test_over_budget_returns_zero(self):
        assert estimate_expandable_k(1_000, 100, 100.0, 0, 1000.0) == 0

    def test_zero_budget(self):
        assert estimate_expandable_k(0, 10, 1.0, 0, 2.0) == 0

    def test_free_expansion(self):
        assert estimate_expandable_k(10**6, 7, 100.0, 0, 100.0) == 7


class TestMemoryBudget:
    def test_unbounded(self):
        budget = MemoryBudget.unbounded()
        assert not budget.bounded
        assert budget.limit_bytes(100) == float("inf")
        assert not budget.exceeded(10**18, 1)
        assert budget.utilization(10**18, 1) == 0.0

    def test_absolute(self):
        budget = MemoryBudget.absolute(1000)
        assert budget.bounded
        assert budget.limit_bytes(123456) == 1000
        assert budget.exceeded(1001, 1)
        assert not budget.exceeded(1000, 1)
        assert budget.utilization(500, 1) == 0.5

    def test_relative(self):
        budget = MemoryBudget.relative(bits_per_key=16)
        assert budget.limit_bytes(1000) == 2000
        assert budget.exceeded(2001, 1000)
        assert not budget.exceeded(1999, 1000)

    def test_relative_scales_with_keys(self):
        budget = MemoryBudget.relative(bits_per_key=8)
        assert budget.limit_bytes(2000) == 2 * budget.limit_bytes(1000)

    def test_both_set_rejected(self):
        with pytest.raises(ValueError):
            MemoryBudget(absolute_bytes=10, bits_per_key=1.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            MemoryBudget.absolute(0)
        with pytest.raises(ValueError):
            MemoryBudget.relative(-1.0)
