"""Tests for the adaptation manager, against a minimal fake index."""

import pytest

from repro.core.access import AccessType
from repro.core.budget import MemoryBudget
from repro.core.heuristics import HeuristicDecision
from repro.core.manager import AdaptationManager, ManagerConfig

COMPACT = "compact"
FAST = "fast"


class FakeIndex:
    """A dictionary of unit -> encoding standing in for a real index."""

    def __init__(self, units, compact_bytes=100, fast_bytes=1000):
        self.encodings = {unit: COMPACT for unit in units}
        self.compact_bytes = compact_bytes
        self.fast_bytes = fast_bytes
        self.migrations = []

    def tracked_population(self):
        return len(self.encodings)

    def used_memory(self):
        return sum(
            self.fast_bytes if encoding == FAST else self.compact_bytes
            for encoding in self.encodings.values()
        )

    @property
    def num_keys(self):
        return len(self.encodings) * 10

    def encoding_of(self, identifier):
        return self.encodings.get(identifier)

    def migrate(self, identifier, target_encoding, context):
        if self.encodings.get(identifier) == target_encoding:
            return False
        self.encodings[identifier] = target_encoding
        self.migrations.append((identifier, target_encoding))
        return True

    def encoding_census(self):
        census = {}
        for encoding in (COMPACT, FAST):
            count = sum(1 for value in self.encodings.values() if value == encoding)
            if count:
                avg = self.fast_bytes if encoding == FAST else self.compact_bytes
                census[encoding] = (count, float(avg))
        return census


def make_manager(index, **overrides):
    defaults = dict(
        encoding_order=(COMPACT, FAST),
        initial_skip_length=0,
        skip_min=0,
        skip_max=10,
        initial_sample_size=50,
        use_bloom_filter=False,
    )
    defaults.update(overrides)
    return AdaptationManager(index, ManagerConfig(**defaults))


class TestConfig:
    def test_requires_two_encodings(self):
        with pytest.raises(ValueError):
            ManagerConfig(encoding_order=(COMPACT,))

    def test_skip_range_validated(self):
        with pytest.raises(ValueError):
            ManagerConfig(encoding_order=(COMPACT, FAST), skip_min=10, skip_max=5)

    def test_fast_and_compact_ends(self):
        config = ManagerConfig(encoding_order=(COMPACT, "mid", FAST))
        assert config.compact_encoding == COMPACT
        assert config.fast_encoding == FAST


class TestSamplingFlow:
    def test_is_sample_counts_accesses(self):
        manager = make_manager(FakeIndex(range(10)))
        for _ in range(5):
            manager.is_sample()
        assert manager.counters.accesses == 5

    def test_disabled_manager_never_samples(self):
        manager = make_manager(FakeIndex(range(10)))
        manager.disable()
        assert not any(manager.is_sample() for _ in range(20))
        manager.enable()
        assert manager.is_sample()

    def test_track_aggregates_per_unit(self):
        manager = make_manager(FakeIndex(range(10)))
        manager.track(3, AccessType.READ)
        manager.track(3, AccessType.INSERT)
        stats = manager.stats_of(3)
        assert stats.reads == 1
        assert stats.writes == 1

    def test_context_stored_and_updated(self):
        manager = make_manager(FakeIndex(range(10)))
        manager.track(1, AccessType.READ, context="parent-a")
        assert manager.stats_of(1).context == "parent-a"
        manager.update_context(1, "parent-b")
        assert manager.stats_of(1).context == "parent-b"

    def test_forget(self):
        manager = make_manager(FakeIndex(range(10)))
        manager.track(1, AccessType.READ)
        manager.forget(1)
        assert manager.stats_of(1) is None

    def test_register_without_sample(self):
        manager = make_manager(FakeIndex(range(10)))
        manager.register(5, context="parent")
        stats = manager.stats_of(5)
        assert stats.reads == 0
        assert stats.context == "parent"
        assert manager.counters.sampled == 0


class TestBloomGating:
    def test_first_sighting_filtered(self):
        manager = make_manager(
            FakeIndex(range(10)), use_bloom_filter=True, initial_sample_size=1000
        )
        manager.track(1, AccessType.READ)
        assert manager.stats_of(1) is None  # only in the filter
        manager.track(1, AccessType.READ)
        assert manager.stats_of(1) is not None
        assert manager.counters.bloom_rejections == 1


class TestAdaptation:
    def test_phase_triggers_at_sample_size(self):
        index = FakeIndex(range(20))
        manager = make_manager(index, initial_sample_size=10)
        for step in range(10):
            manager.track(step % 2, AccessType.READ)
        assert manager.counters.adaptation_phases == 1
        assert manager.epoch == 2

    def test_hot_units_expanded(self):
        index = FakeIndex(range(20))
        manager = make_manager(index, initial_sample_size=100, fallback_k_min=2)
        for _ in range(50):
            manager.track(0, AccessType.READ)
        for _ in range(49):
            manager.track(1, AccessType.READ)
        manager.track(2, AccessType.READ)  # triggers the phase
        assert index.encodings[0] == FAST
        assert index.encodings[1] == FAST
        assert index.encodings[2] == COMPACT

    def test_cold_units_compacted_after_two_phases(self):
        index = FakeIndex(range(20))
        manager = make_manager(
            index, initial_sample_size=100, fallback_k_min=1, max_sample_size=100
        )
        # Phase 1: unit 0 is hot.
        for _ in range(100):
            manager.track(0, AccessType.READ)
        assert index.encodings[0] == FAST
        # Phases 2 and 3: unit 1 is hot, unit 0 silent (cold).
        for _ in range(2):
            for _ in range(100):
                manager.track(1, AccessType.READ)
        assert index.encodings[0] == COMPACT

    def test_vanished_units_evicted(self):
        index = FakeIndex(range(5))
        manager = make_manager(index, initial_sample_size=10)
        for _ in range(9):
            manager.track(0, AccessType.READ)
        del index.encodings[0]  # unit disappears before the phase
        index.encodings["replacement"] = COMPACT
        manager.track("replacement", AccessType.READ)
        assert manager.stats_of(0) is None

    def test_event_log_written(self):
        index = FakeIndex(range(20))
        manager = make_manager(index, initial_sample_size=10)
        for _ in range(10):
            manager.track(0, AccessType.READ)
        assert len(manager.events) == 1
        event = manager.events[0]
        assert event.epoch == 1
        assert event.sampled == 10
        assert event.index_bytes == index.used_memory()

    def test_custom_heuristic_used(self):
        decisions = []

        def heuristic(info):
            decisions.append(info.identifier)
            return HeuristicDecision.keep()

        index = FakeIndex(range(5))
        manager = make_manager(index, initial_sample_size=5, heuristic=heuristic)
        for _ in range(5):
            manager.track(0, AccessType.READ)
        assert decisions == [0]
        assert index.migrations == []

    def test_skip_length_adapts_up_when_stable(self):
        index = FakeIndex(range(20))
        manager = make_manager(
            index,
            initial_skip_length=2,
            skip_min=2,
            skip_max=100,
            initial_sample_size=20,
            heuristic=lambda info: HeuristicDecision.keep(),
        )
        for _ in range(20):
            manager.track(0, AccessType.READ)
        assert manager.skip_length == 4  # doubled: no migrations at all


class TestBudgetK:
    def test_bounded_budget_limits_k(self):
        index = FakeIndex(range(100))
        index.encodings[0] = FAST  # census needs one expanded unit
        # current = 99*100 + 1000 = 10_900; growth per expansion = 900.
        budget = MemoryBudget.absolute(10_900 + 5 * 900 + 100)
        manager = make_manager(index, budget=budget, initial_sample_size=1000)
        assert manager._choose_k() == 5

    def test_unbounded_uses_fallback(self):
        index = FakeIndex(range(1000))
        manager = make_manager(index, fallback_k_min=64, initial_sample_size=10)
        assert manager._choose_k() == 64

    def test_sample_size_respects_cap(self):
        index = FakeIndex(range(10**6))
        manager = make_manager(index, max_sample_size=500, initial_sample_size=None)
        assert manager.sample_size == 500


class TestSizeAccounting:
    def test_size_grows_with_tracked_units(self):
        manager = make_manager(FakeIndex(range(100)), initial_sample_size=10**6)
        empty = manager.size_bytes()
        for unit in range(50):
            manager.track(unit, AccessType.READ)
        assert manager.size_bytes() > empty


class TestClassificationWeights:
    def test_write_weight_prioritizes_writers(self):
        index = FakeIndex(range(10))
        manager = make_manager(
            index,
            initial_sample_size=30,
            max_sample_size=30,
            fallback_k_min=1,
            write_weight=10.0,
        )
        # Unit 0: many reads; unit 1: fewer but heavily-weighted writes.
        for _ in range(20):
            manager.track(0, AccessType.READ)
        for _ in range(9):
            manager.track(1, AccessType.INSERT)
        manager.track(2, AccessType.READ)  # trigger
        assert index.encodings[1] == FAST
        assert index.encodings[0] == COMPACT

    def test_default_weights_by_raw_frequency(self):
        index = FakeIndex(range(10))
        manager = make_manager(
            index, initial_sample_size=30, max_sample_size=30, fallback_k_min=1
        )
        for _ in range(20):
            manager.track(0, AccessType.READ)
        for _ in range(9):
            manager.track(1, AccessType.INSERT)
        manager.track(2, AccessType.READ)
        assert index.encodings[0] == FAST


class TestSampleMapChoice:
    def test_hopscotch_map_backs_the_sample_store(self):
        from repro.hashmap.hopscotch import HopscotchMap

        index = FakeIndex(range(20))
        manager = make_manager(
            index, sample_map="hopscotch", initial_sample_size=20, max_sample_size=20
        )
        assert isinstance(manager._samples, HopscotchMap)
        for _ in range(20):
            manager.track(0, AccessType.READ)
        assert manager.counters.adaptation_phases == 1
        assert index.encodings[0] == FAST

    def test_unknown_sample_map_rejected(self):
        index = FakeIndex(range(5))
        import pytest

        with pytest.raises(ValueError):
            make_manager(index, sample_map="btree")
