"""TokenBucket / TenantQuota / ResourceArbiter (the PR-7 generalization)."""

import pytest

from repro.core.budget import (
    ADMIT_OK,
    SHED_OVERLOADED,
    SHED_THROTTLED,
    MemoryBudget,
    ResourceArbiter,
    TenantQuota,
    TokenBucket,
)


class FakeIndex:
    def __init__(self, keys, size):
        self.num_keys = keys
        self._size = size

    def size_bytes(self):
        return self._size


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        assert all(bucket.try_take(1.0, 0.0) for _ in range(5))
        assert not bucket.try_take(1.0, 0.0)

    def test_refills_with_caller_time(self):
        bucket = TokenBucket(rate=10.0, burst=5.0)
        for _ in range(5):
            bucket.try_take(1.0, 0.0)
        assert not bucket.try_take(1.0, 0.0)
        assert bucket.try_take(1.0, 0.1)  # 0.1s * 10/s = 1 token
        assert not bucket.try_take(1.0, 0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0)
        assert bucket.available(1000.0) == 3.0

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate=10.0, burst=10.0)
        bucket.try_take(10.0, 5.0)
        # An earlier timestamp neither refills nor corrupts state.
        assert not bucket.try_take(1.0, 4.0)
        assert bucket.try_take(1.0, 5.2)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)
        bucket = TokenBucket(rate=1.0, burst=1.0)
        with pytest.raises(ValueError):
            bucket.try_take(-1.0, 0.0)


class TestTenantQuota:
    def test_unlimited_has_no_bucket(self):
        assert TenantQuota.unlimited().bucket() is None

    def test_burst_defaults_to_one_second(self):
        bucket = TenantQuota(ops_per_sec=50.0).bucket()
        assert bucket.burst == 50.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(ops_per_sec=-1.0)
        with pytest.raises(ValueError):
            TenantQuota(burst_ops=5.0)  # burst without a rate
        with pytest.raises(ValueError):
            TenantQuota(ops_per_sec=1.0, max_inflight=0)


class TestResourceArbiterAdmission:
    def test_unknown_tenant_raises(self):
        arbiter = ResourceArbiter()
        with pytest.raises(KeyError):
            arbiter.admit("ghost")

    def test_unlimited_default_admits_everything(self):
        arbiter = ResourceArbiter()
        arbiter.register_tenant("t")
        assert all(arbiter.admit("t", now=0.0) == ADMIT_OK for _ in range(1000))

    def test_rate_quota_throttles_then_refills(self):
        arbiter = ResourceArbiter(
            default_quota=TenantQuota(ops_per_sec=10.0, burst_ops=5.0)
        )
        arbiter.register_tenant("t")
        decisions = [arbiter.admit("t", now=0.0) for _ in range(6)]
        assert decisions[:5] == [ADMIT_OK] * 5
        assert decisions[5] == SHED_THROTTLED
        assert arbiter.admit("t", now=0.5) == ADMIT_OK

    def test_inflight_bound_sheds_overloaded_until_release(self):
        arbiter = ResourceArbiter(default_quota=TenantQuota(max_inflight=2))
        arbiter.register_tenant("t")
        assert arbiter.admit("t") == ADMIT_OK
        assert arbiter.admit("t") == ADMIT_OK
        assert arbiter.admit("t") == SHED_OVERLOADED
        arbiter.release("t")
        assert arbiter.inflight("t") == 1
        assert arbiter.admit("t") == ADMIT_OK

    def test_overload_shed_consumes_no_tokens(self):
        arbiter = ResourceArbiter(
            default_quota=TenantQuota(ops_per_sec=10.0, burst_ops=2.0, max_inflight=1)
        )
        arbiter.register_tenant("t")
        assert arbiter.admit("t", now=0.0) == ADMIT_OK
        # Queue full: shed before the bucket is touched.
        for _ in range(10):
            assert arbiter.admit("t", now=0.0) == SHED_OVERLOADED
        arbiter.release("t")
        assert arbiter.admit("t", now=0.0) == ADMIT_OK

    def test_tenants_are_isolated(self):
        arbiter = ResourceArbiter(
            default_quota=TenantQuota(ops_per_sec=10.0, burst_ops=1.0)
        )
        arbiter.register_tenant("a")
        arbiter.register_tenant("b")
        assert arbiter.admit("a", now=0.0) == ADMIT_OK
        assert arbiter.admit("a", now=0.0) == SHED_THROTTLED
        assert arbiter.admit("b", now=0.0) == ADMIT_OK

    def test_describe_counts_sheds(self):
        arbiter = ResourceArbiter(
            default_quota=TenantQuota(ops_per_sec=10.0, burst_ops=1.0, max_inflight=1)
        )
        arbiter.register_tenant("t")
        arbiter.admit("t", now=0.0)
        arbiter.admit("t", now=0.0)  # overloaded (inflight full)
        arbiter.release("t")
        arbiter.admit("t", now=0.0)  # throttled (bucket empty)
        info = arbiter.describe()["tenants"]["t"]
        assert info["admitted"] == 1
        assert info["overloaded"] == 1
        assert info["throttled"] == 1


class TestResourceArbiterMemory:
    def test_memory_carve_across_tenant_members(self):
        arbiter = ResourceArbiter(budget=MemoryBudget.absolute(1_000_000))
        arbiter.register_tenant("a")
        arbiter.register_tenant("b")
        arbiter.register_memory_member("a", "shard-0", FakeIndex(keys=900, size=10))
        arbiter.register_memory_member("b", "shard-0", FakeIndex(keys=100, size=10))
        allocations = arbiter.rebalance()
        assert set(allocations) == {"a/shard-0", "b/shard-0"}
        assert (
            allocations["a/shard-0"].absolute_bytes
            > allocations["b/shard-0"].absolute_bytes
        )

    def test_memory_member_requires_registered_tenant(self):
        arbiter = ResourceArbiter()
        with pytest.raises(KeyError):
            arbiter.register_memory_member("ghost", "shard-0", FakeIndex(1, 1))

    def test_unregister_tenant_drops_memory_members(self):
        arbiter = ResourceArbiter(budget=MemoryBudget.absolute(1_000_000))
        arbiter.register_tenant("a")
        arbiter.register_memory_member("a", "shard-0", FakeIndex(10, 10))
        arbiter.register_memory_member("a", "shard-1", FakeIndex(10, 10))
        assert arbiter.memory.num_members == 2
        arbiter.unregister_tenant("a")
        assert arbiter.memory.num_members == 0
        assert arbiter.tenants() == []
