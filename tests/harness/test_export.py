"""Tests for result export (CSV/JSON)."""

import csv
import json

from repro.harness.experiments import experiment_fig3
from repro.harness.export import result_to_json, write_result


class TestJson:
    def test_table_result_roundtrips(self):
        result = experiment_fig3()
        document = json.loads(result_to_json(result))
        assert document["headers"] == result["headers"]
        assert len(document["rows"]) == len(result["rows"])

    def test_handles_enums_and_bytes(self):
        from repro.bptree.leaves import LeafEncoding

        document = json.loads(
            result_to_json({"encoding": LeafEncoding.GAPPED, "blob": b"\x01\x02"})
        )
        assert document["encoding"] == "gapped"
        assert document["blob"] == "0102"

    def test_handles_run_results(self):
        from repro.harness.runner import RunResult

        document = json.loads(result_to_json({"results": {"x": RunResult()}}))
        assert document["results"]["x"]["total_operations"] == 0


class TestWriteResult:
    def test_table_written_as_csv_and_json(self, tmp_path):
        result = experiment_fig3()
        written = write_result(result, tmp_path, "fig3")
        assert written["json"].exists()
        with written["csv"].open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == result["headers"]
        assert len(rows) == len(result["rows"]) + 1

    def test_series_written(self, tmp_path):
        result = {"series": {"a": [1.0, 2.0], "b": [3.0]}}
        written = write_result(result, tmp_path, "timeline")
        with written["series_csv"].open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["interval", "a", "b"]
        assert rows[1] == ["0", "1.0", "3.0"]
        assert rows[2] == ["1", "2.0", ""]


class TestCliExport:
    def test_export_flag(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        assert main(["fig3", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "fig3.json").exists()
        assert (tmp_path / "fig3.csv").exists()
