"""Tests for result export (CSV/JSON)."""

import csv
import json

from repro.harness.experiments import experiment_fig3
from repro.harness.export import result_to_json, write_result


class TestJson:
    def test_table_result_roundtrips(self):
        result = experiment_fig3()
        document = json.loads(result_to_json(result))
        assert document["headers"] == result["headers"]
        assert len(document["rows"]) == len(result["rows"])

    def test_handles_enums_and_bytes(self):
        from repro.bptree.leaves import LeafEncoding

        document = json.loads(
            result_to_json({"encoding": LeafEncoding.GAPPED, "blob": b"\x01\x02"})
        )
        assert document["encoding"] == "gapped"
        assert document["blob"] == "0102"

    def test_handles_run_results(self):
        from repro.harness.runner import RunResult

        document = json.loads(result_to_json({"results": {"x": RunResult()}}))
        assert document["results"]["x"]["total_operations"] == 0

    def test_run_results_export_as_summaries_not_intervals(self):
        from repro.harness.runner import IntervalStats, RunResult

        result = RunResult(total_operations=10, total_modeled_ns=1000.0)
        result.intervals.append(
            IntervalStats(
                interval=0, operations=10, modeled_ns_per_op=100.0,
                wall_ns_per_op=1.0, index_bytes=1, aux_bytes=0,
                expansions=0, compactions=0,
            )
        )
        document = json.loads(result_to_json({"r": result}))
        assert document["r"]["modeled_ns_per_op"] == 100.0
        assert "intervals" not in document["r"]

    def test_handles_counters_and_bytes_keys(self):
        from collections import Counter

        document = json.loads(
            result_to_json({"events": Counter({b"\x01": 2, "leaf_visit": 3})})
        )
        assert document["events"] == {"01": 2, "leaf_visit": 3}

    def test_handles_dataclasses(self):
        import dataclasses

        @dataclasses.dataclass
        class Row:
            name: str
            blob: bytes

        document = json.loads(result_to_json({"row": Row("a", b"\xff")}))
        assert document["row"] == {"name": "a", "blob": "ff"}

    def test_adaptation_events_export_via_single_path(self):
        from tests.core.test_events import make_event

        events = [make_event(epoch=1).as_dict(), make_event(epoch=2).as_dict()]
        document = json.loads(result_to_json({"adaptation_events": events}))
        assert document["adaptation_events"] == events


class TestWriteResult:
    def test_table_written_as_csv_and_json(self, tmp_path):
        result = experiment_fig3()
        written = write_result(result, tmp_path, "fig3")
        assert written["json"].exists()
        with written["csv"].open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == result["headers"]
        assert len(rows) == len(result["rows"]) + 1

    def test_series_written(self, tmp_path):
        result = {"series": {"a": [1.0, 2.0], "b": [3.0]}}
        written = write_result(result, tmp_path, "timeline")
        with written["series_csv"].open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["interval", "a", "b"]
        assert rows[1] == ["0", "1.0", "3.0"]
        assert rows[2] == ["1", "2.0", ""]


class TestCliExport:
    def test_export_flag(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        assert main(["fig3", "--export", str(tmp_path)]) == 0
        assert (tmp_path / "fig3.json").exists()
        assert (tmp_path / "fig3.csv").exists()
