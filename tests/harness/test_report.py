"""Tests for the report formatting helpers."""

from repro.harness.report import format_series, format_table, human_bytes


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [("alpha", 1), ("beta-longer", 22.5)],
            title="My Table",
        )
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) == {"-"}
        assert "alpha" in lines[3]
        assert "22.50" in lines[4]

    def test_thousands_separator(self):
        text = format_table(["n"], [(1234567,)])
        assert "1,234,567" in text

    def test_float_formats(self):
        text = format_table(["x"], [(0.123456,), (12345.6,)])
        assert "0.12" in text
        assert "12,346" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_summary_stats(self):
        text = format_series("latency", [1.0, 5.0, 3.0], unit="ns")
        assert "min=1.0ns" in text
        assert "max=5.0ns" in text
        assert "first=1.0ns" in text
        assert "last=3.0ns" in text

    def test_sparkline_present(self):
        text = format_series("s", list(range(50)))
        assert "[" in text and "]" in text

    def test_constant_series(self):
        text = format_series("flat", [2.0] * 10)
        assert "min=2.0" in text

    def test_empty_series(self):
        assert "(empty)" in format_series("none", [])

    def test_downsampling(self):
        text = format_series("long", list(range(1000)), max_points=10)
        spark = text[text.index("[") + 1 : text.index("]")]
        assert len(spark) <= 101


class TestHumanBytes:
    def test_units(self):
        assert human_bytes(512) == "512B"
        assert human_bytes(1536) == "1.5KiB"
        assert human_bytes(3 * 1024 * 1024) == "3.0MiB"
        assert human_bytes(5 * 1024**3) == "5.0GiB"
