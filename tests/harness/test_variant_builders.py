"""Tests for the experiment variant builders and scaled configs."""

import numpy as np
import pytest

from repro.art.tree import ART
from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.core.budget import MemoryBudget
from repro.dualstage.index import DualStageIndex
from repro.fst.trie import FST
from repro.harness.experiments import (
    build_btree_variants,
    build_trie_variants,
    scaled_manager_config,
    scaled_trie_manager_config,
)
from repro.hybridtrie.tree import HybridTrie


@pytest.fixture(scope="module")
def pairs():
    return [(key * 3, key) for key in range(2000)]


class TestScaledConfigs:
    def test_btree_config_defaults(self):
        config = scaled_manager_config()
        assert config.skip_min == 5
        assert config.skip_max == 100
        assert config.max_sample_size == 1500
        assert not config.budget.bounded

    def test_btree_config_budget_passthrough(self):
        budget = MemoryBudget.absolute(1234)
        assert scaled_manager_config(budget).budget is budget

    def test_trie_config(self):
        config = scaled_trie_manager_config()
        from repro.hybridtrie.tagged import TrieEncoding

        assert config.fast_encoding is TrieEncoding.ART
        assert config.compact_encoding is TrieEncoding.FST


class TestBtreeVariants:
    def test_full_lineup_types(self, pairs):
        variants = build_btree_variants(
            pairs,
            include=(
                "gapped", "packed", "succinct", "ahi", "pretrained",
                "dualstage-succinct", "dualstage-packed",
            ),
        )
        assert isinstance(variants["gapped"], BPlusTree)
        assert variants["gapped"].leaf_encoding is LeafEncoding.GAPPED
        assert variants["packed"].leaf_encoding is LeafEncoding.PACKED
        assert variants["succinct"].leaf_encoding is LeafEncoding.SUCCINCT
        assert isinstance(variants["ahi"], AdaptiveBPlusTree)
        assert isinstance(variants["pretrained"], AdaptiveBPlusTree)
        assert isinstance(variants["dualstage-succinct"], DualStageIndex)

    def test_all_variants_answer_lookups(self, pairs):
        variants = build_btree_variants(
            pairs, include=("gapped", "ahi", "dualstage-succinct")
        )
        for name, index in variants.items():
            assert index.lookup(300) == 100, name
            assert index.lookup(301) is None, name

    def test_pretrained_manager_disabled(self, pairs):
        keys = np.array([key for key, _ in pairs])
        variants = build_btree_variants(
            pairs, training_keys=keys[:200], include=("pretrained",)
        )
        tree = variants["pretrained"]
        assert not any(tree.manager.is_sample() for _ in range(50))
        # Training expanded the hot leaves.
        assert tree.encoding_counts().get(LeafEncoding.GAPPED, 0) >= 1

    def test_dualstage_has_populated_dynamic_stage(self, pairs):
        variants = build_btree_variants(pairs, include=("dualstage-succinct",))
        index = variants["dualstage-succinct"]
        assert index.dynamic_size > 0  # the paper's 5%-dynamic setup

    def test_unknown_variant_rejected(self, pairs):
        with pytest.raises(ValueError):
            build_btree_variants(pairs, include=("btree-9000",))


class TestTrieVariants:
    def test_full_lineup_types(self):
        byte_keys = [key.to_bytes(8, "big") for key in range(0, 4000, 2)]
        variants = build_trie_variants(byte_keys, art_levels=2)
        assert isinstance(variants["art"], ART)
        assert isinstance(variants["fst"], FST)
        assert isinstance(variants["ahi-trie"], HybridTrie)
        assert isinstance(variants["pretrained"], HybridTrie)
        assert not variants["pretrained"].adaptive
        for name, index in variants.items():
            assert index.lookup(byte_keys[7]) == 7, name

    def test_training_ranks_expand_pretrained(self):
        byte_keys = [key.to_bytes(8, "big") for key in range(0, 60_000, 7)]
        ranks = np.zeros(500, dtype=np.int64)  # hammer rank 0
        variants = build_trie_variants(
            byte_keys, art_levels=1, training_ranks=ranks, include=("pretrained",)
        )
        assert variants["pretrained"].expanded_branch_count() >= 1

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            build_trie_variants([b"\x00" * 8], include=("nope",))
