"""Tests for the ``python -m repro.harness`` experiment CLI."""

import pytest

from repro.harness.__main__ import EXPERIMENTS, _scaled_kwargs, main


class TestScaledKwargs:
    def test_identity_scale(self):
        assert _scaled_kwargs(EXPERIMENTS["fig2"], 1.0) == {}

    def test_scales_integer_size_params(self):
        kwargs = _scaled_kwargs(EXPERIMENTS["fig2"], 0.5)
        assert kwargs["num_items"] == 500_000
        assert kwargs["workload_size"] == 200_000

    def test_floor_prevents_degenerate_sizes(self):
        kwargs = _scaled_kwargs(EXPERIMENTS["fig2"], 0.00001)
        assert all(value >= 64 for value in kwargs.values())

    def test_non_size_params_untouched(self):
        kwargs = _scaled_kwargs(EXPERIMENTS["fig14"], 0.5)
        assert "alphas" not in kwargs
        assert "seed" not in kwargs


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "fig12" in output
        assert "tab4" in output

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["figZZ"])

    def test_runs_cheap_experiment(self, capsys):
        assert main(["fig3"]) == 0
        output = capsys.readouterr().out
        assert "Samsung 870 SSD" in output
        assert "compression ratio" in output

    def test_runs_table_experiment(self, capsys):
        assert main(["tab4"]) == 0
        output = capsys.readouterr().out
        assert "AHI-BTree" in output

    def test_scale_flag(self, capsys):
        assert main(["fig6", "--scale", "0.2"]) == 0
        assert "unique_samples" in capsys.readouterr().out

    def test_every_name_resolves(self):
        for name in ("fig2", "fig5", "fig12", "fig20", "tab1", "tab2"):
            assert name in EXPERIMENTS


class TestTelemetryFlags:
    def test_trace_and_metrics_files_are_valid(self, tmp_path, capsys):
        from repro.obs import parse_prometheus
        from repro.obs.runtime import active
        from repro.obs.schema import validate_trace_file

        trace = tmp_path / "run.jsonl"
        metrics = tmp_path / "run.prom"
        assert main(
            ["fig13", "--scale", "0.05", "--trace", str(trace),
             "--metrics", str(metrics), "--trace-ops", "64"]
        ) == 0
        assert active() is None  # uninstalled after the run
        names = validate_trace_file(trace)
        assert "experiment:fig13" in names
        assert "harness.interval" in names
        assert "lookup" in names
        samples = parse_prometheus(metrics.read_text())
        assert any(key.startswith("repro_ops_") for key in samples)
        output = capsys.readouterr().out
        assert "telemetry report" in output
        assert f"trace: {trace}" in output

    def test_metrics_only_run(self, tmp_path, capsys):
        from repro.obs import parse_prometheus

        metrics = tmp_path / "only.prom"
        assert main(["fig13", "--scale", "0.05", "--metrics", str(metrics)]) == 0
        samples = parse_prometheus(metrics.read_text())
        assert "repro_harness_operations_total" in samples
        assert "telemetry report" in capsys.readouterr().out
