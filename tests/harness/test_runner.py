"""Tests for the workload runner and adapters."""


from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.fst.trie import FST
from repro.harness.runner import (
    ByteKeyIndexAdapter,
    IntKeyIndexAdapter,
    RunResult,
    run_operations,
)
from repro.sim.costmodel import CostModel
from repro.workloads.spec import OpKind
from repro.workloads.stream import Operation


def make_tree(n=500):
    return BPlusTree.bulk_load([(key, key) for key in range(n)], LeafEncoding.GAPPED)


class TestIntKeyAdapter:
    def test_executes_all_kinds(self):
        tree = make_tree()
        adapter = IntKeyIndexAdapter(tree)
        adapter.execute(Operation(OpKind.READ, 5))
        adapter.execute(Operation(OpKind.SCAN, 5, scan_length=3))
        adapter.execute(Operation(OpKind.INSERT, 10_001, value=7))
        adapter.execute(Operation(OpKind.UPDATE, 5, value=50))
        assert tree.lookup(10_001) == 7
        assert tree.lookup(5) == 50

    def test_update_falls_back_to_insert(self):
        tree = make_tree()
        adapter = IntKeyIndexAdapter(tree)
        adapter.execute(Operation(OpKind.UPDATE, 99_999, value=1))
        assert tree.lookup(99_999) == 1

    def test_counter_snapshot_plain_tree(self):
        tree = make_tree()
        adapter = IntKeyIndexAdapter(tree)
        adapter.execute(Operation(OpKind.READ, 5))
        events = adapter.counter_snapshot()
        assert events.get("leaf_visit:gapped", 0) >= 1
        assert adapter.aux_bytes() == 0
        assert adapter.expansions() == 0
        assert adapter.skip_length() is None

    def test_counter_snapshot_adaptive_tree(self):
        tree = AdaptiveBPlusTree.bulk_load_adaptive([(key, key) for key in range(500)])
        adapter = IntKeyIndexAdapter(tree)
        for key in range(100):
            adapter.execute(Operation(OpKind.READ, key))
        events = adapter.counter_snapshot()
        assert "sample_track" in events or tree.manager.counters.map_updates == 0
        assert adapter.aux_bytes() >= 0
        assert adapter.skip_length() == tree.manager.skip_length


class TestByteKeyAdapter:
    def test_rank_mapping(self):
        pairs = [(bytes([0, label]), label) for label in range(64)]
        fst = FST(pairs)
        adapter = ByteKeyIndexAdapter(fst, [key for key, _ in pairs])
        adapter.execute(Operation(OpKind.READ, 10))
        adapter.execute(Operation(OpKind.SCAN, 0, scan_length=5))
        assert adapter.counter_snapshot()

    def test_writes_rejected(self):
        pairs = [(bytes([0, label]), label) for label in range(8)]
        fst = FST(pairs)
        adapter = ByteKeyIndexAdapter(fst, [key for key, _ in pairs])
        import pytest

        with pytest.raises(ValueError):
            adapter.execute(Operation(OpKind.INSERT, 0, value=1))


class TestRunOperations:
    def test_interval_series(self):
        tree = make_tree()
        adapter = IntKeyIndexAdapter(tree)
        operations = [Operation(OpKind.READ, key % 500) for key in range(250)]
        result = run_operations(adapter, operations, interval_ops=100)
        assert len(result.intervals) == 3
        assert [stats.operations for stats in result.intervals] == [100, 100, 50]
        assert result.total_operations == 250
        assert result.modeled_ns_per_op > 0
        assert result.wall_ns_per_op > 0
        assert result.final_index_bytes == tree.size_bytes()

    def test_result_accumulates_across_phases(self):
        tree = make_tree()
        adapter = IntKeyIndexAdapter(tree)
        operations = [Operation(OpKind.READ, 1)] * 50
        result = RunResult()
        run_operations(adapter, operations, interval_ops=25, result=result)
        run_operations(adapter, operations, interval_ops=25, result=result)
        assert len(result.intervals) == 4
        assert [stats.interval for stats in result.intervals] == [0, 1, 2, 3]
        assert result.total_operations == 100

    def test_series_accessor(self):
        tree = make_tree()
        adapter = IntKeyIndexAdapter(tree)
        operations = [Operation(OpKind.READ, 1)] * 60
        result = run_operations(adapter, operations, interval_ops=20)
        series = result.series("modeled_ns_per_op")
        assert len(series) == 3
        assert all(value > 0 for value in series)

    def test_custom_cost_model(self):
        tree = make_tree()
        adapter = IntKeyIndexAdapter(tree)
        operations = [Operation(OpKind.READ, 1)] * 10
        free = CostModel(costs_ns={})
        result = run_operations(adapter, operations, cost_model=free)
        assert result.total_modeled_ns == 0.0

    def test_empty_operations(self):
        adapter = IntKeyIndexAdapter(make_tree())
        result = run_operations(adapter, [])
        assert result.total_operations == 0
        assert result.modeled_ns_per_op == 0.0
