"""Smoke tests for every paper-experiment entry point (tiny scales).

The benchmarks run the experiments at representative scales; these tests
only assert that each function executes and that its headline *shape*
claim holds even at toy scale.

The multi-phase campaign tests (tens of seconds even at toy scale) are
marked ``slow``: the default lane deselects them via addopts while the
nightly/full CI lane runs everything with ``-m ""``.
"""


import pytest

from repro.harness import experiments as exp


def rows_by(result, **filters):
    headers = result["headers"]
    selected = []
    for row in result["rows"]:
        record = dict(zip(headers, row))
        if all(record.get(key) == value for key, value in filters.items()):
            selected.append(record)
    return selected


class TestMicroExperiments:
    def test_fig2_sample_sizes_shrink_with_epsilon(self):
        result = exp.experiment_fig2(
            num_items=20_000, workload_size=30_000, ks=(100,), epsilons=(0.05, 0.10)
        )
        sizes = [row[2] for row in result["rows"]]
        assert sizes[0] > sizes[1]

    def test_fig3_device_ordering(self):
        result = exp.experiment_fig3()
        reads = {row[0]: row[1] for row in result["rows"]}
        assert reads["Samsung 870 SSD"] > reads["Samsung 970 NVMe"] > reads["PMEM"]
        assert reads["DRAM compressed"] > reads["DRAM uncompressed"]
        assert reads["PMEM"] > reads["DRAM compressed"]
        assert 0.2 < result["compression_ratio"] < 0.8

    def test_fig5_overhead_decreases_with_skip(self):
        result = exp.experiment_fig5(
            num_keys=5_000, num_lookups=20_000, skip_lengths=(0, 20)
        )
        rows = result["rows"]
        assert rows[0][1] > rows[1][1]  # skip 0 costs more than skip 20

    def test_fig6_runs(self):
        result = exp.experiment_fig6(
            unique_sample_counts=(500,), ks=(100, 250), repetitions=2
        )
        assert len(result["rows"]) == 2
        assert all(row[2] > 0 for row in result["rows"])

    def test_table1_ordering(self):
        result = exp.experiment_table1(num_keys=5_000, num_lookups=3_000)
        sizes = {row[0]: row[1] for row in result["rows"]}
        modeled = {row[0]: row[2] for row in result["rows"]}
        assert sizes["succinct"] < sizes["packed"] < sizes["gapped"]
        assert modeled["succinct"] > modeled["gapped"]

    def test_fig9_recode_more_expensive(self):
        result = exp.experiment_fig9(
            small_keys=3_000, large_keys=6_000, migrations_per_pair=20
        )
        small_rows = rows_by(result, index_size="small")
        by_name = {row["migration"]: row["modeled_ns"] for row in small_rows}
        assert by_name["succinct->gapped"] > 3 * by_name["gapped->packed"]

    def test_table2_ordering(self):
        result = exp.experiment_table2(num_keys=6_000, num_lookups=2_000)
        modeled = {row[0]: row[2] for row in result["rows"]}
        sizes = {row[0]: row[1] for row in result["rows"]}
        assert modeled["ART"] < modeled["FST-dense"] < modeled["FST-sparse"]
        assert sizes["FST-sparse"] < sizes["ART"]

    def test_table4_tracking_loc_small(self):
        result = exp.experiment_table4()
        rows = {row[0]: row for row in result["rows"]}
        # The adaptive variants add only a handful of tracking lines.
        assert 0 < rows["AHI-BTree"][2] <= 8
        assert rows["B+-tree"][2] == 0


class TestBtreeExperiments:
    @pytest.mark.slow
    def test_fig12_adaptive_converges(self):
        result = exp.experiment_fig12(
            num_keys=8_000, ops_per_phase=12_000, interval_ops=3_000, training_ops=3_000
        )
        ahi = result["series"]["ahi"]
        gapped = result["series"]["gapped"]
        succinct = result["series"]["succinct"]
        # Adaptive starts near succinct, ends far below it.
        assert ahi[-1] < 0.75 * succinct[-1]
        assert result["sizes"]["ahi"][0] < result["sizes"]["gapped"][0]

    def test_fig13_cost_function_rows(self):
        result = exp.experiment_fig13(num_keys=6_000, num_ops=8_000, interval_ops=4_000)
        assert len(result["rows"]) == 10  # 2 workloads x 5 indexes

    def test_fig14_skew_helps_adaptive(self):
        result = exp.experiment_fig14(
            num_keys=6_000,
            num_ops=10_000,
            alphas=(0.2, 1.2),
            include=("gapped", "succinct", "ahi"),
        )
        low = rows_by(result, alpha=0.2, index="ahi")[0]
        high = rows_by(result, alpha=1.2, index="ahi")[0]
        assert high["modeled_ns_per_op"] < low["modeled_ns_per_op"]

    def test_fig15_budget_monotone(self):
        result = exp.experiment_fig15(
            num_keys=5_000, num_ops=10_000, budget_fractions=(0.4, 1.0)
        )
        small, large = result["rows"]
        assert small[2] <= large[2]  # index size grows with budget
        assert small[3] <= large[3]  # expanded share grows with budget

    @pytest.mark.slow
    def test_fig16_writes_then_scans(self):
        result = exp.experiment_fig16(
            num_keys=5_000, ops_per_phase=10_000, interval_ops=2_500
        )
        assert result["expansions"][-1] > 0
        assert result["compactions"][-1] > 0

    @pytest.mark.slow
    def test_fig17_ahi_beats_dualstage_on_skew(self):
        result = exp.experiment_fig17(num_keys=8_000, num_ops=8_000, interval_ops=4_000)
        w4_rows = {row[1]: row for row in result["rows"] if row[0] == "W4"}
        assert w4_rows["ahi"][2] < w4_rows["dualstage-succinct"][2]


class TestTrieExperiments:
    @pytest.mark.slow
    def test_fig19_tradeoff(self):
        result = exp.experiment_fig19(
            num_keys=3_000, num_ops=3_000, interval_ops=1_500, art_levels=4
        )
        points = {row[1]: row for row in result["rows"] if row[0] == "W6.1 points"}
        assert points["art"][2] < points["fst"][2]          # ART faster
        assert points["fst"][4] < points["art"][4]          # FST smaller
        assert points["ahi-trie"][2] < points["fst"][2]     # hybrid beats FST
        assert points["ahi-trie"][4] < points["art"][4]     # and is smaller than ART

    @pytest.mark.slow
    def test_fig20_adaptation_timeline(self):
        result = exp.experiment_fig20(
            num_keys=6_000, ops_per_phase=8_000, interval_ops=2_000
        )
        assert result["expansions"][-1] > 0
        ahi = result["series"]["ahi-trie"]
        fst = result["series"]["fst"]
        assert ahi[-1] < fst[-1]


class TestConcurrencyExperiment:
    def test_fig18_tls_not_slower_than_gs(self):
        result = exp.experiment_fig18(
            num_keys=3_000, ops_per_thread=1_500, thread_counts=(2,)
        )
        rows = result["rows"]
        by_key = {(row[0], row[2]): row for row in rows}
        for workload in ("W5.1 writes", "W5.2 reads"):
            gs = by_key[(workload, "GS")]
            tls = by_key[(workload, "TLS")]
            # Modeled throughput: TLS avoids the per-record lock.
            assert tls[4] >= gs[4] * 0.95


class TestAppendixExperiments:
    def test_appendix_fig2_distributions(self):
        result = exp.experiment_appendix_fig2_distributions(
            num_items=10_000, workload_size=15_000, k=100, epsilons=(0.05, 0.10)
        )
        distributions = {row[0] for row in result["rows"]}
        assert distributions == {"zipf", "normal", "lognormal", "uniform"}
        for row in result["rows"]:
            assert row[4] <= row[3] + 1e-9  # sampled mass never exceeds true

    def test_appendix_fig5_workloads(self):
        result = exp.experiment_appendix_fig5_workloads(
            num_keys=5_000, num_lookups=15_000, skip_lengths=(0, 20)
        )
        by_key = {(row[0], row[1]): row[2] for row in result["rows"]}
        for distribution in ("zipf", "normal", "lognormal", "uniform"):
            assert by_key[(distribution, 0)] > by_key[(distribution, 20)]
