"""Divergence profiles: registry, resolution, and manager wiring."""

import pytest

from repro.replication import REPLICA_PROFILES, resolve_profiles


class TestRegistry:
    def test_registry_names_match_keys(self):
        for name, profile in REPLICA_PROFILES.items():
            assert profile.name == name

    def test_specialists_and_baseline_exist(self):
        assert {"point", "scan", "squeezed", "balanced"} <= set(REPLICA_PROFILES)

    def test_affinities(self):
        assert REPLICA_PROFILES["point"].affinity == "point"
        assert REPLICA_PROFILES["scan"].affinity == "scan"
        assert REPLICA_PROFILES["squeezed"].affinity is None
        assert REPLICA_PROFILES["balanced"].affinity is None

    def test_squeezed_budget_below_specialists(self):
        squeezed = REPLICA_PROFILES["squeezed"].budget_bits_per_key
        point = REPLICA_PROFILES["point"].budget_bits_per_key
        assert squeezed is not None and point is not None
        assert squeezed < point

    def test_balanced_budget_matches_specialists(self):
        # The identical-replica baseline must not be handicapped: the
        # bench's comparison is divergence, not budget.
        assert (
            REPLICA_PROFILES["balanced"].budget_bits_per_key
            == REPLICA_PROFILES["point"].budget_bits_per_key
        )

    def test_manager_config_carries_budget(self):
        config = REPLICA_PROFILES["point"].manager_config()
        assert config.budget.bits_per_key is not None
        assert config.heuristic is not None

    def test_describe_is_json_safe(self):
        import json

        for profile in REPLICA_PROFILES.values():
            json.dumps(profile.describe())


class TestResolve:
    def test_factor_one_is_balanced(self):
        (profile,) = resolve_profiles(1)
        assert profile.name == "balanced"

    def test_default_lineup_for_factor_three(self):
        names = [profile.name for profile in resolve_profiles(3)]
        assert names == ["point", "scan", "squeezed"]

    def test_larger_factors_fill_with_balanced(self):
        names = [profile.name for profile in resolve_profiles(5)]
        assert names == ["point", "scan", "squeezed", "balanced", "balanced"]

    def test_explicit_names(self):
        names = [p.name for p in resolve_profiles(2, ["scan", "scan"])]
        assert names == ["scan", "scan"]

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValueError, match="factor"):
            resolve_profiles(0)

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="profiles"):
            resolve_profiles(3, ["point"])

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="mystery"):
            resolve_profiles(1, ["mystery"])


class TestBuildIndex:
    def test_builds_working_adaptive_tree(self):
        pairs = [(key, key * 7) for key in range(0, 600, 2)]
        tree = REPLICA_PROFILES["squeezed"].build_index(pairs)
        assert tree.lookup(100) == 700
        assert tree.lookup(101) is None
        assert len(tree.scan(0, 5)) == 5
