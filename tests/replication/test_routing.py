"""Replica router: scoring, affinity, exploration, and round-robin."""

import pytest

from repro.replication import (
    REPLICA_PROFILES,
    ReplicaRouter,
    ReplicaSetUnavailableError,
    build_replicated_shard,
)


def make_shard(profiles=("point", "scan", "squeezed"), num_keys=400, router=None):
    pairs = [(key, key + 1) for key in range(0, num_keys * 2, 2)]
    return build_replicated_shard(
        0,
        pairs,
        [REPLICA_PROFILES[name] for name in profiles],
        router=router,
    )


class TestConstruction:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            ReplicaRouter(policy="random")

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError, match="ewma_alpha"):
            ReplicaRouter(ewma_alpha=0.0)


class TestScoring:
    def test_census_prior_prefers_expanded_replicas(self):
        shard = make_shard(profiles=("balanced", "balanced"))
        router = shard.router
        fast, slow = shard.replicas
        # Identical all-Succinct copies price identically...
        succinct_prior = router.score(slow, "point")
        assert router.score(fast, "point") == succinct_prior
        # ...and a measured cheap (Gapped-priced) batch undercuts it.
        router.observe(fast, "point", {"leaf_visit:gapped": 4, "inner_visit": 8}, 4)
        assert router.score(fast, "point") < succinct_prior

    def test_affinity_discount_applies_to_measured_cost(self):
        shard = make_shard()
        router = shard.router
        point_replica, scan_replica, _ = shard.replicas
        events = {"leaf_visit:succinct": 4, "inner_visit": 8}
        router.observe(point_replica, "point", events, 4)
        router.observe(scan_replica, "point", events, 4)
        # Same measured cost; the point-affine replica must score lower
        # for the point class (the divergence feedback loop's seed).
        assert router.score(point_replica, "point") < router.score(
            scan_replica, "point"
        )

    def test_observe_prices_only_read_service_events(self):
        shard = make_shard()
        router = shard.router
        replica = shard.replicas[0]
        router.observe(replica, "point", {"leaf_visit:succinct": 4}, 4)
        baseline = replica.cost_ewma["point"]
        # Migration work riding along in the delta must not change the
        # read-cost estimate.
        router.observe(
            replica,
            "point",
            {"leaf_visit:succinct": 4, "migration": 50, "leaf_reencode": 50},
            4,
        )
        assert replica.cost_ewma["point"] == pytest.approx(baseline)

    def test_lag_penalty_raises_score(self):
        shard = make_shard()
        router = shard.router
        replica = shard.replicas[0]
        before = router.score(replica, "point")
        replica.behind = 100
        assert router.score(replica, "point") > before


class TestPicking:
    def test_all_down_raises(self):
        shard = make_shard()
        for replica in shard.replicas:
            shard.mark_down(replica, "test")
        with pytest.raises(ReplicaSetUnavailableError):
            shard.router.pick(shard, "point")

    def test_down_replicas_never_picked(self):
        shard = make_shard()
        shard.mark_down(shard.replicas[0], "test")
        for _ in range(64):
            assert shard.router.pick(shard, "point") is not shard.replicas[0]

    def test_round_robin_rotates(self):
        shard = make_shard(router=ReplicaRouter(policy="round_robin"))
        seen = {shard.router.pick(shard, "point").replica_id for _ in range(6)}
        assert seen == {0, 1, 2}

    def test_cost_policy_steers_class_to_affine_replica(self):
        shard = make_shard(router=ReplicaRouter(explore_every=0))
        picks = [shard.router.pick(shard, "scan").profile.name for _ in range(8)]
        assert set(picks) == {"scan"}

    def test_exploration_rotation_touches_other_replicas(self):
        shard = make_shard(router=ReplicaRouter(explore_every=4))
        picked = {
            shard.router.pick(shard, "point").replica_id for _ in range(32)
        }
        assert len(picked) > 1

    def test_should_measure_is_skip_sampled(self):
        shard = make_shard(router=ReplicaRouter(measure_every=4))
        replica = shard.replicas[0]
        decisions = []
        for batch in range(8):
            replica.routed_batches["point"] = batch + 1
            decisions.append(shard.router.should_measure(replica, "point"))
        assert decisions == [True, False, False, False, True, False, False, False]


class TestDescribe:
    def test_describe_lists_every_replica(self):
        shard = make_shard()
        rows = shard.router.describe(shard)
        assert [row["profile"] for row in rows] == ["point", "scan", "squeezed"]
        for row in rows:
            assert set(row["scores_ns"]) == {"point", "scan"}
