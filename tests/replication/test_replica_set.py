"""Replicated shards: fan-out, fencing, fallback, revive, verify."""

import pytest

from repro.core.invariants import InvariantViolation
from repro.durability.manager import DurabilityManager
from repro.faults.injector import FaultInjector
from repro.replication import (
    REPLICA_PROFILES,
    ReplicaSetUnavailableError,
    build_replicated_shard,
)

PROFILES = [REPLICA_PROFILES[name] for name in ("point", "scan", "squeezed")]


def make_shard(num_keys=500, durability=None):
    pairs = [(key, key + 1) for key in range(0, num_keys * 2, 2)]
    return build_replicated_shard(0, pairs, PROFILES, durability=durability)


class TestBasics:
    def test_reads_and_writes_fan_out(self):
        shard = make_shard()
        assert shard.get(10) == 11
        assert shard.get(11) is None
        shard.put(11, 99)
        assert shard.get(11) == 99
        shard.put_many([(201, 1), (203, 2)])
        assert shard.get_many([201, 203, 205]) == [1, 2, None]
        assert shard.delete(201) is True
        assert shard.delete(201) is False
        assert [pair[0] for pair in shard.scan(0, 3)] == [0, 2, 4]
        shard.verify()

    def test_every_replica_sees_every_write(self):
        shard = make_shard(num_keys=50)
        shard.put_many([(odd, odd * 2) for odd in range(1, 41, 2)])
        contents = [replica.shard.items() for replica in shard.replicas]
        assert contents[0] == contents[1] == contents[2]

    def test_stats_exposes_per_replica_rows(self):
        shard = make_shard()
        stats = shard.stats()
        assert stats["replication_factor"] == 3
        assert stats["replicas_up"] == 3
        profiles = [row["profile"] for row in stats["replicas"]]
        assert profiles == ["point", "scan", "squeezed"]
        assert len(stats["routing"]) == 3

    def test_size_counts_every_replica(self):
        shard = make_shard()
        single = shard.replicas[0].shard.size_bytes()
        assert shard.size_bytes() > single


class TestReadFailover:
    def test_failed_read_reroutes_without_raising(self):
        shard = make_shard()
        target = shard.router.pick(shard, "point")
        shard.router._picks["point"] = 0  # rewind so the next pick repeats

        def explode(keys):
            raise RuntimeError("replica storage failure")

        target.shard.get_many = explode
        # The batch must succeed on a survivor; the caller never sees it.
        assert shard.get_many([10, 12]) == [11, 13]
        assert target.down
        assert "storage failure" in target.down_reason

    def test_mid_stream_down_reroutes_later_batches(self):
        shard = make_shard()
        shard.mark_down(shard.replicas[0], "operator")
        for _ in range(8):
            assert shard.get_many([10, 14]) == [11, 15]
        assert shard.replicas[0].reads_routed == 0

    def test_all_replicas_down_read_raises(self):
        shard = make_shard()
        for replica in shard.replicas:
            shard.mark_down(replica, "test")
        with pytest.raises(ReplicaSetUnavailableError):
            shard.get(10)


class TestWriteFencing:
    def test_poisoned_wal_fences_only_that_replica(self, tmp_path):
        durability = DurabilityManager(tmp_path)
        shard = make_shard(num_keys=100, durability=durability)
        try:
            # Fail the second replica's append of one fan-out: appends
            # run in replica order, so fail_at=2 poisons exactly r1.
            with FaultInjector(
                site="durability.wal.append", fail_at=2, max_failures=1
            ) as injector:
                shard.put_many([(1, 10), (3, 30)])
            assert injector.failures_injected == 1
            downs = [replica.down for replica in shard.replicas]
            assert downs == [False, True, False]
            poisoned = shard.replicas[1].shard.durable_log
            assert poisoned is not None and poisoned.wal.poisoned is not None
            # The write acked on the survivors.
            assert shard.get_many([1, 3]) == [10, 30]
            # Behind counts the failed batch's 2 records plus every
            # later write the fenced replica misses.
            shard.put_many([(5, 50)])
            assert shard.replicas[1].behind == 3
            assert shard.get(5) == 50
        finally:
            shard.close_logs()

    def test_poisoned_replica_cannot_revive_in_process(self, tmp_path):
        durability = DurabilityManager(tmp_path)
        shard = make_shard(num_keys=100, durability=durability)
        try:
            with FaultInjector(
                site="durability.wal.append", fail_at=2, max_failures=1
            ):
                shard.put_many([(1, 10)])
            with pytest.raises(RuntimeError, match="poisoned"):
                shard.revive(1)
        finally:
            shard.close_logs()

    def test_all_replicas_down_write_raises(self):
        shard = make_shard()
        for replica in shard.replicas:
            shard.mark_down(replica, "test")
        with pytest.raises(ReplicaSetUnavailableError):
            shard.put(1, 1)


class TestRevive:
    def test_revive_rebuilds_from_authoritative_copy(self):
        shard = make_shard(num_keys=100)
        shard.mark_down(shard.replicas[2], "operator")
        shard.put_many([(odd, odd) for odd in range(1, 21, 2)])
        assert shard.replicas[2].behind == 10
        revived = shard.revive(2)
        assert not revived.down
        assert revived.behind == 0
        assert revived.profile.name == "squeezed"
        assert revived.shard.items() == shard.replicas[0].shard.items()
        shard.verify()

    def test_revive_is_idempotent_on_live_replica(self):
        shard = make_shard()
        assert shard.revive(0) is shard.replicas[0]


class TestVerify:
    def test_verify_detects_content_divergence(self):
        shard = make_shard(num_keys=50)
        # Corrupt one live replica behind the fan-out's back.
        shard.replicas[1].shard.index.insert(999, 999)
        with pytest.raises(InvariantViolation, match="diverged"):
            shard.verify()

    def test_verify_skips_down_replicas(self):
        shard = make_shard(num_keys=50)
        shard.replicas[1].shard.index.insert(999, 999)
        shard.mark_down(shard.replicas[1], "known bad")
        shard.verify()
