"""Replication through the service, tenancy, and network layers."""

import asyncio

import pytest

from repro.net import NetClient, NetServer
from repro.net.tenancy import TenantDirectory, TenantSpec
from repro.service.partition import PartitionError
from repro.service.router import ShardRouter


def make_pairs(num_keys=300):
    return [(key, key + 1) for key in range(0, num_keys * 2, 2)]


class TestRouterWiring:
    def test_replication_requires_adaptive_family(self):
        with pytest.raises(ValueError, match="adaptive"):
            ShardRouter.build(make_pairs(), family="olc", replication_factor=3)

    def test_factor_inferred_from_profiles(self):
        router = ShardRouter.build(
            make_pairs(), family="adaptive", replica_profiles=["point", "scan"]
        )
        assert router.table.shards[0].stats()["replication_factor"] == 2
        router.close()

    def test_round_robin_policy_plumbs_through(self):
        router = ShardRouter.build(
            make_pairs(),
            family="adaptive",
            replication_factor=2,
            replica_routing="round_robin",
        )
        assert router.table.shards[0].router.policy == "round_robin"
        router.close()

    def test_split_and_merge_refuse_replicated_shards(self):
        router = ShardRouter.build(
            make_pairs(),
            family="adaptive",
            num_shards=2,
            partitioning="range",
            replication_factor=2,
        )
        with pytest.raises(PartitionError, match="replicated"):
            router.split_shard(0)
        with pytest.raises(PartitionError, match="replicated"):
            router.merge_shards(0)
        router.close()

    def test_routed_reads_serve_through_replicas(self):
        router = ShardRouter.build(
            make_pairs(400), family="adaptive", num_shards=2, replication_factor=3
        )
        keys = list(range(0, 200, 2))
        assert router.get_many(keys) == [key + 1 for key in keys]
        routed = sum(
            row["reads_routed"]
            for shard in router.stats()["shards"]
            for row in shard["replicas"]
        )
        assert routed == len(keys)
        router.close()


class TestTenancy:
    def test_replicated_tenant_group(self):
        directory = TenantDirectory(
            [
                TenantSpec(
                    name="acme",
                    num_shards=2,
                    family="adaptive",
                    pairs=make_pairs(),
                    replication_factor=3,
                ),
                TenantSpec(name="smol", num_shards=1, pairs=make_pairs(50)),
            ]
        )
        try:
            router = directory.router_for("acme")
            assert router.get(10) == 11
            stats = router.stats()["shards"][0]
            assert stats["replication_factor"] == 3
            # Replicated shards stay out of the global memory arbiter:
            # their budgets are divergence policy, not rebalancing pool.
            # Only smol's single plain shard registers as a member.
            assert directory.arbiter.describe()["memory"]["members"] == 1
        finally:
            directory.close()

    def test_bad_replication_factor_rejected(self):
        with pytest.raises(ValueError, match="replication_factor"):
            TenantSpec(name="acme", replication_factor=0)


class TestStatsOpcode:
    def test_stats_exposes_replica_state_over_the_wire(self):
        async def scenario():
            directory = TenantDirectory(
                [
                    TenantSpec(
                        name="acme",
                        num_shards=1,
                        family="adaptive",
                        pairs=make_pairs(),
                        replication_factor=3,
                    )
                ]
            )
            try:
                async with (
                    NetServer(directory) as server,
                    await NetClient.connect("127.0.0.1", server.port) as client,
                ):
                    assert await client.get("acme", 10) == 11
                    stats = await client.stats()
                    (shard,) = stats["shards"]["acme"]
                    assert shard["replication_factor"] == 3
                    profiles = [row["profile"] for row in shard["replicas"]]
                    assert profiles == ["point", "scan", "squeezed"]
                    for row in shard["replicas"]:
                        assert "encoding_census" in row
                        assert "reads_routed" in row
                    assert len(shard["routing"]) == 3
            finally:
                directory.close()

        asyncio.run(scenario())
