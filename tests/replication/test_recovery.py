"""Durable replicated groups: manifest, recovery, and reconciliation."""

import pytest

from repro.durability.manager import DurabilityManager, Manifest
from repro.faults.injector import FaultInjector
from repro.service.router import ShardRouter


def build_router(tmp_path, num_keys=400, num_shards=2, factor=3):
    durability = DurabilityManager(tmp_path)
    pairs = [(key, key + 1) for key in range(0, num_keys * 2, 2)]
    router = ShardRouter.build(
        pairs,
        family="adaptive",
        num_shards=num_shards,
        replication_factor=factor,
        durability=durability,
    )
    return durability, router, dict(pairs)


class TestManifest:
    def test_build_publishes_replica_block(self, tmp_path):
        durability, router, _ = build_router(tmp_path)
        router.close()
        manifest = durability.read_manifest()
        assert manifest.replicas is not None
        assert manifest.replicas["factor"] == 3
        assert manifest.replicas["profiles"] == ["point", "scan", "squeezed"]
        assert len(manifest.replicas["logs"]) == 2
        for log_ids in manifest.replicas["logs"]:
            assert len(log_ids) == 3

    def test_orphan_sweep_keeps_replica_logs(self, tmp_path):
        durability, router, expected = build_router(tmp_path)
        router.close()
        stray = durability.wal_dir / "e00000099-p0000.wal"
        stray.write_bytes(b"debris")
        recovered = ShardRouter.recover(durability)
        try:
            assert not stray.exists()
            assert recovered.last_recovery["orphans_removed"] >= 1
            items = sorted(expected.items())
            assert recovered.scan(-1, len(items) + 10) == items
        finally:
            recovered.close()

    def test_unknown_profile_in_manifest_rejected(self, tmp_path):
        durability, router, _ = build_router(tmp_path)
        router.close()
        manifest = durability.read_manifest()
        replicas = dict(manifest.replicas)
        replicas["profiles"] = ["mystery"] + list(replicas["profiles"][1:])
        durability.publish_manifest(
            Manifest(
                epoch=manifest.epoch,
                partitioner=manifest.partitioner,
                shards=manifest.shards,
                replicas=replicas,
            )
        )
        with pytest.raises(ValueError, match="mystery"):
            ShardRouter.recover(durability)


class TestRecovery:
    def test_each_replica_recovers_from_its_own_snapshot_and_tail(self, tmp_path):
        durability, router, expected = build_router(tmp_path)
        # Checkpoint gives every replica its own snapshot...
        router.put_many([(odd, odd * 3) for odd in range(1, 41, 2)])
        summaries = router.checkpoint()
        assert len(summaries["shards"]) == 6  # 2 shards x 3 replica logs
        # ...and the post-checkpoint writes are each replica's WAL tail.
        router.put_many([(odd, odd * 7) for odd in range(41, 81, 2)])
        expected.update({odd: odd * 3 for odd in range(1, 41, 2)})
        expected.update({odd: odd * 7 for odd in range(41, 81, 2)})
        router.close()

        recovered = ShardRouter.recover(durability)
        try:
            info = recovered.last_recovery
            assert info["replication_factor"] == 3
            # Every log was equally fresh: nothing needed rebuilding —
            # each divergent replica came from its own snapshot + tail.
            assert info["replicas_rebuilt"] == 0
            assert info["frames_replayed"] >= 1
            profiles = [
                replica.profile.name
                for replica in recovered.table.shards[0].replicas
            ]
            assert profiles == ["point", "scan", "squeezed"]
            items = sorted(expected.items())
            assert recovered.scan(-1, len(items) + 10) == items
            recovered.verify()
        finally:
            recovered.close()

    def test_fenced_straggler_is_rebuilt_from_authoritative(self, tmp_path):
        durability, router, expected = build_router(tmp_path, num_shards=1)
        with FaultInjector(
            site="durability.wal.append", fail_at=2, max_failures=1
        ) as injector:
            router.put_many([(1, 100), (3, 300)])
        assert injector.failures_injected == 1
        expected.update({1: 100, 3: 300})
        # The fenced replica misses these entirely.
        router.put_many([(5, 500), (7, 700)])
        expected.update({5: 500, 7: 700})
        router.close()

        recovered = ShardRouter.recover(durability)
        try:
            assert recovered.last_recovery["replicas_rebuilt"] >= 1
            items = sorted(expected.items())
            assert recovered.scan(-1, len(items) + 10) == items
            recovered.verify()  # live replicas agree on content again
        finally:
            recovered.close()

    def test_recovered_router_keeps_serving_and_adapting(self, tmp_path):
        durability, router, expected = build_router(tmp_path, num_keys=200)
        router.close()
        recovered = ShardRouter.recover(durability)
        try:
            keys = sorted(expected)[:50]
            assert recovered.get_many(keys) == [expected[key] for key in keys]
            recovered.put_many([(9991, 1), (9993, 2)])
            assert recovered.get(9991) == 1
            stats = recovered.stats()["shards"][0]
            assert stats["replication_factor"] == 3
        finally:
            recovered.close()
