"""End-to-end distributed tracing through the wire.

Client and server share one process (and therefore one installed
tracer), which is exactly the hard case for propagation: only the wire
context — not ambient state — may link the two sides.  The tests
install an in-memory sink, drive real requests through a real TCP
server, and assert on the emitted span graph and the stitched tree.
"""

import asyncio

from repro.net import NetClient, NetServer, demo_directory
from repro.net.protocol import (
    OP_GET,
    OP_TRACE_FLAG,
    Request,
    decode_request,
    encode_request,
)
from repro.obs import InMemoryTraceSink, Telemetry, Tracer, validate_trace
from repro.obs.distributed import TraceContext
from repro.obs.slo import SloMonitor, ratio_objective
from repro.obs.stitch import stitch


def run(coro):
    return asyncio.run(coro)


async def traced_workload(directory_kwargs=None, client_kwargs=None, ops=None):
    """Run a workload against a live server; returns the emitted records."""
    sink = InMemoryTraceSink()
    with Telemetry(tracer=Tracer(sink, op_sample_every=1)):
        directory = demo_directory(
            ["acme"], 500, **(directory_kwargs or {"family": "adaptive"})
        )
        server = NetServer(directory, port=0)
        await server.start()
        try:
            client = await NetClient.connect(
                "127.0.0.1", server.port, **(client_kwargs or {"trace_sample_every": 1})
            )
            try:
                if ops is None:
                    assert await client.get("acme", 2) == 3
                    await client.put("acme", 9001, 1)
                else:
                    await ops(client)
            finally:
                await client.close()
        finally:
            await server.stop()
            directory.close()
    return sink.records


class TestWireContext:
    def test_traced_op_byte_sets_the_flag_and_round_trips(self):
        request = Request(
            req_id=1,
            op=OP_GET,
            tenant="acme",
            key=2,
            trace=TraceContext(trace_id=7, parent_span_id=3, sampled=True),
        )
        body = encode_request(request)
        assert body[8] & OP_TRACE_FLAG  # op byte follows the u64 req_id
        decoded = decode_request(body)
        assert decoded.trace == request.trace
        assert decoded.op == OP_GET
        assert decoded.key == 2

    def test_untraced_requests_pay_no_context_bytes(self):
        bare = encode_request(Request(req_id=1, op=OP_GET, tenant="acme", key=2))
        traced = encode_request(
            Request(
                req_id=1,
                op=OP_GET,
                tenant="acme",
                key=2,
                trace=TraceContext(trace_id=7, parent_span_id=3, sampled=True),
            )
        )
        assert len(traced) - len(bare) == 17  # u64 + u64 + flags byte


class TestPropagation:
    def test_server_span_links_to_client_span_across_the_wire(self):
        records = run(traced_workload())
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        client_spans = by_name["net.client.request"]
        server_spans = by_name["net.server.request"]
        assert len(client_spans) == len(server_spans) == 2
        client_ids = {span["span_id"] for span in client_spans}
        for span in server_spans:
            assert span["attributes"]["remote_parent_id"] in client_ids
            assert span["parent_id"] is None  # local root; link is remote
        trace_ids = {span["trace_id"] for span in client_spans}
        assert trace_ids == {span["trace_id"] for span in server_spans}
        assert len(trace_ids) == 2  # each request is its own trace

    def test_full_chain_reaches_index_and_wal(self, tmp_path):
        records = run(
            traced_workload(
                directory_kwargs={
                    "family": "adaptive",
                    "durability_root": tmp_path / "wal",
                }
            )
        )
        validate_trace(records)
        traces = stitch(records)
        assert len(traces) == 2
        assert any(
            trace.has_chain(
                ["net.client.request", "net.server.request", "service.shard_op", "lookup"]
            )
            for trace in traces
        )
        assert any(
            trace.has_chain(["net.client.request", "durability.wal.append"])
            for trace in traces
        )

    def test_sampling_every_n_traces_one_in_n(self):
        async def ops(client):
            for key in range(0, 20, 2):
                await client.get("acme", key)

        records = run(
            traced_workload(client_kwargs={"trace_sample_every": 5}, ops=ops)
        )
        client_spans = [r for r in records if r["name"] == "net.client.request"]
        assert len(client_spans) == 2  # 10 requests, every 5th sampled

    def test_untraced_client_emits_no_net_spans(self):
        records = run(traced_workload(client_kwargs={"trace_sample_every": 0}))
        assert not [r for r in records if r["name"].startswith("net.")]


class TestStatsConsole:
    def test_stats_snapshot_is_structured_and_complete(self):
        async def scenario():
            directory = demo_directory(["acme", "zeta"], 200, family="adaptive")
            objectives = [
                ratio_objective(
                    "shed_rate", bad=("net.shed.throttled",), total="net.requests", target=0.05
                )
            ]
            server = NetServer(
                directory, port=0, slo=SloMonitor(objectives), slo_interval=0.01
            )
            await server.start()
            try:
                client = await NetClient.connect("127.0.0.1", server.port)
                try:
                    await client.get("acme", 2)
                    await asyncio.sleep(0.05)  # let the SLO loop tick
                    return await client.stats()
                finally:
                    await client.close()
            finally:
                await server.stop()
                directory.close()

        with Telemetry():
            stats = run(scenario())
        for key in ("server", "coalescer", "tenants", "arbiter", "shards", "slo"):
            assert key in stats, key
        assert stats["server"]["requests"] >= 2
        shard = stats["shards"]["acme"][0]
        assert "encoding_census" in shard
        assert "wal_lag" in shard
        assert stats["slo"]["objectives"]["shed_rate"]["state"] == "ok"
