"""The open-loop load generator: config validation, a short live run,
shed accounting, and the censoring rule for unanswered requests."""

import asyncio

import pytest

from repro.core.budget import TenantQuota
from repro.net.loadgen import LoadgenConfig, measure_capacity, run_loadgen
from repro.net.server import NetServer
from repro.net.tenancy import demo_directory


class TestConfig:
    def test_validation(self):
        good = dict(rate=10.0, duration=0.1, tenants=["a"], key_space=10)
        LoadgenConfig(**good)
        for bad in (
            dict(good, rate=0.0),
            dict(good, duration=-1.0),
            dict(good, tenants=[]),
            dict(good, key_space=0),
            dict(good, get_fraction=1.5),
            dict(good, connections=0),
        ):
            with pytest.raises(ValueError):
                LoadgenConfig(**bad)


class TestLiveRun:
    def test_short_open_loop_run(self):
        async def scenario():
            directory = demo_directory(["a", "b"], keys_per_tenant=500)
            try:
                async with NetServer(directory) as server:
                    config = LoadgenConfig(
                        rate=400.0,
                        duration=0.5,
                        tenants=["a", "b"],
                        key_space=500,
                        connections=2,
                        seed=3,
                    )
                    return await run_loadgen("127.0.0.1", server.port, config)
            finally:
                directory.close()

        result = asyncio.run(scenario())
        assert result.offered == 200
        assert result.errors == 0
        assert result.unanswered == 0
        assert result.ok == result.offered
        assert result.latency.count == result.offered
        summary = result.summary()
        assert summary["latency"]["p99"] >= summary["latency"]["p50"] > 0.0
        assert 0.0 <= summary["shed_fraction"] <= 1.0

    def test_quota_produces_sheds(self):
        async def scenario():
            directory = demo_directory(
                ["a"],
                keys_per_tenant=200,
                quota=TenantQuota(ops_per_sec=50.0, burst_ops=10.0),
            )
            try:
                async with NetServer(directory) as server:
                    config = LoadgenConfig(
                        rate=500.0, duration=0.5, tenants=["a"], key_space=200, seed=5
                    )
                    return await run_loadgen("127.0.0.1", server.port, config)
            finally:
                directory.close()

        result = asyncio.run(scenario())
        assert result.shed_throttled > 0
        assert result.ok > 0
        # Sheds are counted and timed separately, never folded into the
        # accepted-latency distribution.
        assert result.latency.count == result.ok + result.unanswered
        assert result.shed_latency.count == result.shed
        assert result.shed_fraction > 0.2

    def test_capacity_probe(self):
        async def scenario():
            directory = demo_directory(["a"], keys_per_tenant=200)
            try:
                async with NetServer(directory) as server:
                    return await measure_capacity(
                        "127.0.0.1",
                        server.port,
                        tenants=["a"],
                        key_space=200,
                        concurrency=8,
                        duration=0.2,
                    )
            finally:
                directory.close()

        capacity = asyncio.run(scenario())
        assert capacity > 100.0  # anything slower means the stack is broken
