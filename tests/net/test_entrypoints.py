"""The two CLI entry points after the RA005 fix.

Both ``python -m repro.net`` and loadgen ``--self-serve`` used to build
their demo directory (index preload, optional WAL creation) inline in
the coroutine, stalling the event loop before the first connection was
accepted.  RA005 flagged both; these tests pin the fix — the build runs
on the executor, off the loop thread — and that the self-serve path
still works end to end.
"""

import asyncio
import contextlib
import json
import threading

import repro.net.__main__ as net_main
from repro.net import loadgen


class TestNetMain:
    def test_demo_directory_builds_off_loop(self, monkeypatch):
        built_on = {}
        real = net_main.demo_directory

        def spy(*args, **kwargs):
            built_on["thread"] = threading.current_thread()
            return real(*args, **kwargs)

        monkeypatch.setattr(net_main, "demo_directory", spy)

        async def drive():
            args = net_main._build_parser().parse_args(
                ["--port", "0", "--tenants", "1", "--keys", "50", "--shards", "1"]
            )
            task = asyncio.ensure_future(net_main._serve(args))
            for _ in range(500):
                if "thread" in built_on:
                    break
                await asyncio.sleep(0.01)
            task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await task

        asyncio.run(drive())
        assert built_on["thread"] is not threading.main_thread()


class TestLoadgenSelfServe:
    def test_self_serve_round_trip(self, capsys):
        code = loadgen.main(
            [
                "--self-serve",
                "--rate",
                "200",
                "--duration",
                "0.3",
                "--tenants",
                "2",
                "--keys",
                "200",
                "--connections",
                "2",
                "--json",
            ]
        )
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["offered"] == 60
        assert summary["errors"] == 0

    def test_self_serve_build_runs_off_loop(self, monkeypatch, capsys):
        built_on = {}
        from repro.net import tenancy

        real = tenancy.demo_directory

        def spy(*args, **kwargs):
            built_on["thread"] = threading.current_thread()
            return real(*args, **kwargs)

        monkeypatch.setattr(tenancy, "demo_directory", spy)
        code = loadgen.main(
            [
                "--self-serve",
                "--rate",
                "100",
                "--duration",
                "0.1",
                "--tenants",
                "1",
                "--keys",
                "50",
                "--json",
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert built_on["thread"] is not threading.main_thread()
