"""Wire codec: round trips and the corruption contract.

The contract under test: every byte sequence either decodes to exactly
what was encoded, or raises :class:`ProtocolError` — never another
exception type, never a hang, never a half-decoded frame.  Truncation,
single-bit flips, and oversized declared lengths are each exercised
explicitly, plus a Hypothesis fuzz loop over arbitrary bodies.
"""

import asyncio
import random
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.protocol import (
    MAX_FRAME_BYTES,
    MAX_SCAN_COUNT,
    OP_DELETE,
    OP_GET,
    OP_PING,
    OP_PUT,
    OP_SCAN,
    OP_STATS,
    STATUS_OK,
    STATUS_THROTTLED,
    STATUS_UNKNOWN_TENANT,
    ProtocolError,
    Request,
    Response,
    decode_frame,
    decode_request,
    decode_response,
    encode_frame,
    encode_request,
    encode_response,
    read_frame,
)

KEYS = st.one_of(
    st.integers(min_value=-(2**80), max_value=2**80),
    st.binary(max_size=48),
)
VALUES = st.integers(min_value=-(2**63), max_value=2**63)
REQ_IDS = st.integers(min_value=0, max_value=2**64 - 1)
TENANTS = st.text(max_size=40).filter(lambda t: len(t.encode("utf-8")) <= 255)


@st.composite
def requests(draw):
    op = draw(st.sampled_from([OP_GET, OP_PUT, OP_DELETE, OP_SCAN, OP_PING, OP_STATS]))
    key = draw(KEYS) if op in (OP_GET, OP_PUT, OP_DELETE, OP_SCAN) else None
    value = draw(VALUES) if op == OP_PUT else None
    count = draw(st.integers(1, MAX_SCAN_COUNT)) if op == OP_SCAN else 0
    return Request(
        req_id=draw(REQ_IDS),
        op=op,
        tenant=draw(TENANTS),
        key=key,
        value=value,
        count=count,
    )


class TestRequestRoundtrip:
    @settings(max_examples=200, deadline=None)
    @given(requests())
    def test_roundtrip(self, request):
        body = encode_request(request)
        frame = encode_frame(body)
        decoded_body, consumed = decode_frame(frame)
        assert consumed == len(frame)
        assert decoded_body == body
        assert decode_request(decoded_body) == request

    def test_tenant_too_long(self):
        with pytest.raises(ProtocolError):
            encode_request(Request(1, OP_GET, "x" * 256, key=1))

    def test_scan_count_bounds(self):
        for count in (0, MAX_SCAN_COUNT + 1):
            with pytest.raises(ProtocolError):
                encode_request(Request(1, OP_SCAN, "t", key=1, count=count))


class TestResponseRoundtrip:
    @settings(max_examples=100, deadline=None)
    @given(REQ_IDS, KEYS, VALUES)
    def test_get_hit(self, req_id, _key, value):
        response = Response(req_id, STATUS_OK, found=True, value=value)
        assert decode_response(encode_response(response, OP_GET), OP_GET) == response

    @settings(max_examples=50, deadline=None)
    @given(REQ_IDS)
    def test_get_miss_vs_put_ack(self, req_id):
        miss = encode_response(Response(req_id, STATUS_OK, found=False), OP_GET)
        ack = encode_response(Response(req_id, STATUS_OK), OP_PUT)
        assert miss != ack  # a GET miss is not a PUT ack on the wire
        decoded = decode_response(miss, OP_GET)
        assert decoded.found is False and decoded.ok
        assert decode_response(ack, OP_PUT).ok

    @settings(max_examples=100, deadline=None)
    @given(REQ_IDS, st.lists(st.tuples(KEYS, VALUES), max_size=20))
    def test_scan(self, req_id, pairs):
        response = Response(req_id, STATUS_OK, pairs=list(pairs))
        decoded = decode_response(encode_response(response, OP_SCAN), OP_SCAN)
        assert decoded.pairs == list(pairs)

    @settings(max_examples=50, deadline=None)
    @given(REQ_IDS, st.booleans())
    def test_delete(self, req_id, removed):
        response = Response(req_id, STATUS_OK, removed=removed)
        decoded = decode_response(encode_response(response, OP_DELETE), OP_DELETE)
        assert decoded.removed is removed

    @settings(max_examples=50, deadline=None)
    @given(REQ_IDS, st.binary(max_size=200))
    def test_stats_payload(self, req_id, payload):
        response = Response(req_id, STATUS_OK, payload=payload)
        decoded = decode_response(encode_response(response, OP_STATS), OP_STATS)
        assert decoded.payload == payload

    @settings(max_examples=50, deadline=None)
    @given(REQ_IDS, st.text(max_size=100))
    def test_error_statuses_carry_messages(self, req_id, message):
        for status in (STATUS_THROTTLED, STATUS_UNKNOWN_TENANT):
            response = Response(req_id, status, message=message)
            decoded = decode_response(encode_response(response, OP_GET), OP_GET)
            assert decoded.status == status
            assert decoded.message == message
            assert not decoded.ok


def _read_one(data: bytes):
    """Feed ``data`` then EOF into a fresh StreamReader, read one frame."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(run())


class TestCorruption:
    def _frame(self):
        request = Request(7, OP_PUT, "tenant-a", key=12345, value=-99)
        return encode_frame(encode_request(request))

    def test_clean_eof_returns_none(self):
        assert _read_one(b"") is None

    def test_whole_frame_reads(self):
        frame = self._frame()
        body = _read_one(frame)
        assert decode_request(body).key == 12345

    def test_every_truncation_errors(self):
        frame = self._frame()
        for cut in range(1, len(frame)):
            with pytest.raises(ProtocolError):
                _read_one(frame[:cut])
            # sans-io decoder: truncation is "incomplete", never a crash
            result = decode_frame(frame[:cut])
            assert result is None

    def test_every_bit_flip_errors(self):
        frame = self._frame()
        for position in range(len(frame)):
            for bit in range(8):
                corrupt = bytearray(frame)
                corrupt[position] ^= 1 << bit
                with pytest.raises(ProtocolError):
                    body = _read_one(bytes(corrupt))
                    if body is None:  # length flip swallowed the frame
                        raise ProtocolError("frame vanished")
                    decode_request(body)

    def test_oversized_declared_length(self):
        header = struct.pack("<II", MAX_FRAME_BYTES + 1, 0)
        with pytest.raises(ProtocolError):
            _read_one(header)
        with pytest.raises(ProtocolError):
            decode_frame(header + b"\x00" * 16)
        with pytest.raises(ProtocolError):
            encode_frame(b"\x00" * (MAX_FRAME_BYTES + 1))

    def test_decoders_never_hang_on_huge_declared_lengths(self):
        # A body whose *inner* lengths lie must error, not allocate.
        prefix = struct.pack("<QBB", 1, OP_GET, 4) + b"abcd"
        lying_key = bytes((0x01,)) + struct.pack("<I", 2**31) + b"xx"
        with pytest.raises(ProtocolError):
            decode_request(prefix + lying_key)


class TestFuzz:
    @settings(max_examples=300, deadline=None)
    @given(st.binary(max_size=300))
    def test_arbitrary_request_bodies(self, body):
        try:
            decoded = decode_request(body)
        except ProtocolError:
            return
        # Anything that decodes must survive a canonical re-encode cycle
        # (byte-identity is not required: int keys may arrive non-minimal).
        assert decode_request(encode_request(decoded)) == decoded

    @settings(max_examples=300, deadline=None)
    @given(
        st.binary(max_size=300),
        st.sampled_from([None, OP_GET, OP_PUT, OP_DELETE, OP_SCAN, OP_PING, OP_STATS]),
    )
    def test_arbitrary_response_bodies(self, body, op):
        try:
            decode_response(body, op=op)
        except ProtocolError:
            pass

    def test_mutation_fuzz_loop(self):
        """Random mutations of valid frames: ProtocolError or clean decode."""
        rng = random.Random(0xC0FFEE)
        seeds = [
            encode_frame(encode_request(Request(1, OP_GET, "t", key=5))),
            encode_frame(encode_request(Request(2, OP_PUT, "t", key=b"k", value=9))),
            encode_frame(encode_request(Request(3, OP_SCAN, "u", key=0, count=10))),
            encode_frame(encode_response(Response(4, STATUS_OK, found=True, value=1), OP_GET)),
        ]
        for _ in range(2000):
            frame = bytearray(rng.choice(seeds))
            for _ in range(rng.randint(1, 4)):
                mutation = rng.randrange(3)
                if mutation == 0 and len(frame) > 1:
                    del frame[rng.randrange(len(frame))]
                elif mutation == 1:
                    frame.insert(rng.randrange(len(frame) + 1), rng.randrange(256))
                else:
                    frame[rng.randrange(len(frame))] ^= 1 << rng.randrange(8)
            try:
                result = decode_frame(bytes(frame))
                if result is None:
                    continue
                body, _ = result
                decode_request(body)
                decode_response(body)
            except ProtocolError:
                continue
