"""End-to-end server tests: ops, coalescing, backpressure, garbage.

No pytest-asyncio in the container, so every test wraps its coroutine
in ``asyncio.run`` — which also guarantees each test gets a fresh
event loop and a clean shutdown path.
"""

import asyncio

import pytest

from repro.core.budget import TenantQuota
from repro.net import (
    BackpressureError,
    RequestError,
    NetClient,
    NetServer,
    OP_GET,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_THROTTLED,
    STATUS_UNKNOWN_TENANT,
    demo_directory,
)
from repro.net.tenancy import TenantDirectory, TenantSpec
from repro.obs.runtime import Telemetry


def run(coro):
    return asyncio.run(coro)


class TestOps:
    def test_get_put_delete_scan(self):
        async def scenario():
            directory = demo_directory(["alpha", "beta"], keys_per_tenant=500)
            try:
                async with (
                    NetServer(directory) as server,
                    await NetClient.connect("127.0.0.1", server.port) as client,
                ):
                    await client.ping()
                    assert await client.get("alpha", 10) == 11
                    assert await client.get("alpha", 11) is None
                    await client.put("alpha", 11, 99)
                    assert await client.get("alpha", 11) == 99
                    assert await client.delete("alpha", 11) is True
                    assert await client.delete("alpha", 11) is False
                    assert await client.scan("alpha", 0, 3) == [(0, 1), (2, 3), (4, 5)]
                    stats = await client.stats()
                    assert set(stats["tenants"]) == {"alpha", "beta"}
            finally:
                directory.close()

        run(scenario())

    def test_tenant_namespaces_are_isolated(self):
        async def scenario():
            directory = demo_directory(["alpha", "beta"], keys_per_tenant=10)
            try:
                async with (
                    NetServer(directory) as server,
                    await NetClient.connect("127.0.0.1", server.port) as client,
                ):
                    await client.put("alpha", 1001, 7)
                    assert await client.get("alpha", 1001) == 7
                    assert await client.get("beta", 1001) is None
            finally:
                directory.close()

        run(scenario())

    def test_unknown_tenant_is_a_response_not_a_disconnect(self):
        async def scenario():
            directory = demo_directory(["alpha"], keys_per_tenant=10)
            try:
                async with (
                    NetServer(directory) as server,
                    await NetClient.connect("127.0.0.1", server.port) as client,
                ):
                    response = await client.request(OP_GET, "ghost", key=1)
                    assert response.status == STATUS_UNKNOWN_TENANT
                    # Same connection still serves real tenants.
                    assert await client.get("alpha", 0) == 1
            finally:
                directory.close()

        run(scenario())

    def test_bytes_keys_and_clean_server_errors(self):
        async def scenario():
            directory = TenantDirectory(
                [
                    TenantSpec(
                        name="alpha",
                        num_shards=1,
                        family="hybridtrie",
                        pairs=[(b"aa", 1), (b"bb", 2), (b"cc", 3)],
                    )
                ]
            )
            try:
                async with (
                    NetServer(directory) as server,
                    await NetClient.connect("127.0.0.1", server.port) as client,
                ):
                    assert await client.get("alpha", b"bb") == 2
                    assert await client.get("alpha", b"zz") is None
                    assert await client.scan("alpha", b"aa", 2) == [(b"aa", 1), (b"bb", 2)]
                    # A write to a read-only family is a SERVER_ERROR
                    # *response*, not a disconnect...
                    with pytest.raises(RequestError):
                        await client.put("alpha", b"dd", 4)
                    # ...and the connection keeps serving.
                    assert await client.get("alpha", b"cc") == 3
            finally:
                directory.close()

        run(scenario())


class TestCoalescing:
    def test_concurrent_gets_batch(self):
        async def scenario():
            directory = demo_directory(["alpha"], keys_per_tenant=2000)
            try:
                async with (
                    NetServer(directory, max_batch=64, max_delay=0.002) as server,
                    await NetClient.connect("127.0.0.1", server.port) as client,
                ):
                    values = await asyncio.gather(
                        *(client.get("alpha", k * 2) for k in range(300))
                    )
                    assert values == [k * 2 + 1 for k in range(300)]
                    return server.coalescer.batches_flushed, server.coalescer.requests_coalesced
            finally:
                directory.close()

        batches, requests = run(scenario())
        assert requests >= 300
        # 300 concurrent requests must land in far fewer dispatches.
        assert batches < requests / 2

    def test_concurrent_puts_batch_and_land(self):
        async def scenario():
            directory = demo_directory(["alpha"], keys_per_tenant=10)
            try:
                async with (
                    NetServer(directory, max_batch=32, max_delay=0.002) as server,
                    await NetClient.connect("127.0.0.1", server.port) as client,
                ):
                    await asyncio.gather(
                        *(client.put("alpha", 10_000 + k, k) for k in range(100))
                    )
                    values = await asyncio.gather(
                        *(client.get("alpha", 10_000 + k) for k in range(100))
                    )
                    assert values == list(range(100))
                    return server.coalescer.batches_flushed
            finally:
                directory.close()

        batches = run(scenario())
        assert batches < 200  # gets + puts in far fewer than 200 dispatches

    def test_max_batch_one_means_per_request_dispatch(self):
        async def scenario():
            directory = demo_directory(["alpha"], keys_per_tenant=100)
            try:
                async with NetServer(directory, max_batch=1) as server:
                    assert not server.coalescer.enabled
                    async with await NetClient.connect("127.0.0.1", server.port) as client:
                        await asyncio.gather(*(client.get("alpha", 2 * k) for k in range(20)))
                        return server.coalescer.batches_flushed
            finally:
                directory.close()

        assert run(scenario()) == 20

    def test_coalescer_metrics_are_recorded(self):
        telemetry = Telemetry()

        async def scenario():
            directory = demo_directory(["alpha"], keys_per_tenant=100)
            try:
                async with (
                    NetServer(directory) as server,
                    await NetClient.connect("127.0.0.1", server.port) as client,
                ):
                    await asyncio.gather(*(client.get("alpha", 2 * k) for k in range(30)))
            finally:
                directory.close()

        with telemetry:
            run(scenario())
        snapshot = telemetry.registry.snapshot()
        assert snapshot["counters"]["net.coalesce.requests"] >= 30
        assert snapshot["counters"]["net.requests"] >= 30
        assert "net.request_seconds" in snapshot["histograms"]


class TestBackpressure:
    def test_throttle_is_a_response(self):
        async def scenario():
            directory = demo_directory(
                ["q"],
                keys_per_tenant=50,
                quota=TenantQuota(ops_per_sec=5.0, burst_ops=5.0),
            )
            try:
                async with (
                    NetServer(directory) as server,
                    await NetClient.connect("127.0.0.1", server.port) as client,
                ):
                    statuses = []
                    for _ in range(40):
                        response = await client.request(OP_GET, "q", key=2)
                        statuses.append(response.status)
                    return statuses
            finally:
                directory.close()

        statuses = run(scenario())
        assert STATUS_OK in statuses
        assert STATUS_THROTTLED in statuses

    def test_inflight_bound_sheds_overloaded(self):
        async def scenario():
            directory = demo_directory(
                ["q"], keys_per_tenant=50, quota=TenantQuota(max_inflight=2)
            )
            try:
                # A wide coalescing window holds requests in flight long
                # enough for the bounded queue to fill.
                async with (
                    NetServer(directory, max_batch=256, max_delay=0.05) as server,
                    await NetClient.connect("127.0.0.1", server.port) as client,
                ):
                    responses = await asyncio.gather(
                        *(client.request(OP_GET, "q", key=2) for _ in range(30))
                    )
                    return [response.status for response in responses]
            finally:
                directory.close()

        statuses = run(scenario())
        assert STATUS_OVERLOADED in statuses
        assert statuses.count(STATUS_OK) <= 4

    def test_typed_client_raises_backpressure_error(self):
        async def scenario():
            directory = demo_directory(
                ["q"], keys_per_tenant=50, quota=TenantQuota(ops_per_sec=1.0, burst_ops=1.0)
            )
            try:
                async with (
                    NetServer(directory) as server,
                    await NetClient.connect("127.0.0.1", server.port) as client,
                ):
                    with pytest.raises(BackpressureError):
                        for _ in range(10):
                            await client.get("q", 2)
            finally:
                directory.close()

        run(scenario())

    def test_admission_off_never_sheds(self):
        async def scenario():
            directory = demo_directory(
                ["q"], keys_per_tenant=50, quota=TenantQuota(ops_per_sec=1.0, burst_ops=1.0)
            )
            try:
                async with (
                    NetServer(directory, admission=False) as server,
                    await NetClient.connect("127.0.0.1", server.port) as client,
                ):
                    for _ in range(20):
                        assert (await client.request(OP_GET, "q", key=2)).status == STATUS_OK
            finally:
                directory.close()

        run(scenario())


class TestGarbage:
    def test_garbage_closes_connection_but_not_server(self):
        async def scenario():
            directory = demo_directory(["alpha"], keys_per_tenant=10)
            try:
                async with NetServer(directory) as server:
                    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                    writer.write(b"\xde\xad\xbe\xef" * 64)
                    await writer.drain()
                    # Server must close the poisoned connection...
                    assert await reader.read() == b""
                    writer.close()
                    await writer.wait_closed()
                    assert server.protocol_errors >= 1
                    # ...and keep serving fresh clients.
                    async with await NetClient.connect("127.0.0.1", server.port) as client:
                        assert await client.get("alpha", 0) == 1
            finally:
                directory.close()

        run(scenario())

    def test_mid_frame_disconnect_is_counted_not_fatal(self):
        async def scenario():
            directory = demo_directory(["alpha"], keys_per_tenant=10)
            try:
                async with NetServer(directory) as server:
                    _, writer = await asyncio.open_connection("127.0.0.1", server.port)
                    writer.write(b"\x40")  # one byte of a frame header
                    await writer.drain()
                    writer.close()
                    await writer.wait_closed()
                    await asyncio.sleep(0.05)
                    assert server.protocol_errors >= 1
                    async with await NetClient.connect("127.0.0.1", server.port) as client:
                        assert await client.get("alpha", 0) == 1
            finally:
                directory.close()

        run(scenario())
