"""Tenant directory: shard groups, arbiter wiring, memory carve."""

import pytest

from repro.core.budget import MemoryBudget, TenantQuota
from repro.net.tenancy import TenantDirectory, TenantSpec, demo_directory


class TestTenantSpec:
    def test_rejects_empty_and_oversized_names(self):
        with pytest.raises(ValueError):
            TenantSpec(name="")
        with pytest.raises(ValueError):
            TenantSpec(name="x" * 256)
        TenantSpec(name="x" * 255)  # boundary is fine

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            TenantSpec(name="t", num_shards=0)


class TestTenantDirectory:
    def test_requires_tenants_and_unique_names(self):
        with pytest.raises(ValueError):
            TenantDirectory([])
        with pytest.raises(ValueError):
            TenantDirectory([TenantSpec(name="a"), TenantSpec(name="a")])

    def test_groups_are_private(self):
        with demo_directory(["a", "b"], keys_per_tenant=100) as directory:
            router_a = directory.router_for("a")
            router_b = directory.router_for("b")
            assert router_a is not router_b
            router_a.put(999_999, 1)
            assert router_a.get(999_999) == 1
            assert router_b.get(999_999) is None

    def test_per_tenant_shard_counts(self):
        specs = [
            TenantSpec(name="hot", num_shards=4),
            TenantSpec(name="cold", num_shards=1),
        ]
        with TenantDirectory(specs) as directory:
            assert directory.router_for("hot").num_shards == 4
            assert directory.router_for("cold").num_shards == 1
            assert directory.num_shards == 5

    def test_arbiter_has_every_tenant_and_shard_member(self):
        with demo_directory(["a", "b"], keys_per_tenant=50, num_shards=2) as directory:
            assert directory.arbiter.tenants() == ["a", "b"]
            members = set(directory.arbiter.rebalance())
            assert members == {"a/shard-0", "a/shard-1", "b/shard-0", "b/shard-1"}

    def test_memory_budget_carves_across_tenants(self):
        budget = MemoryBudget.absolute(1 << 20)
        with demo_directory(
            ["a", "b"], keys_per_tenant=100, budget=budget
        ) as directory:
            carve = directory.arbiter.describe()["memory"]
            assert carve["absolute_bytes"] == 1 << 20
            allocations = directory.arbiter.rebalance()
            # Equal key counts -> (near-)equal carve across all 4 shards.
            shares = [b.absolute_bytes for b in allocations.values()]
            assert len(shares) == 4
            # Hash partitioning skews per-shard key counts slightly; the
            # carve tracks keys, so shares are near-equal, not exact.
            assert max(shares) < 1.5 * min(shares)
            assert sum(shares) <= 1 << 20

    def test_quota_installed_from_spec(self):
        quota = TenantQuota(ops_per_sec=10.0, max_inflight=3)
        with demo_directory(["a"], keys_per_tenant=10, quota=quota) as directory:
            assert directory.arbiter.admit("a", now=0.0) == "ok"
            stats = directory.stats()
            assert stats["tenants"]["a"]["num_keys"] == 10

    def test_unknown_tenant_raises(self):
        with demo_directory(["a"], keys_per_tenant=10) as directory:
            with pytest.raises(KeyError):
                directory.router_for("ghost")
            assert "ghost" not in directory
            assert "a" in directory

    def test_stats_is_json_shaped(self):
        import json

        with demo_directory(["a"], keys_per_tenant=25) as directory:
            blob = json.dumps(directory.stats())
            assert "arbiter" in blob


class TestDemoDirectory:
    def test_even_keys_loaded_odd_keys_miss(self):
        with demo_directory(["a"], keys_per_tenant=100) as directory:
            router = directory.router_for("a")
            assert router.get(10) == 11
            assert router.get(11) is None
            assert len(router) == 100
