"""A fault at every injection point of a trie migration must be harmless.

Mirrors the B+-tree fault tests: observer-enumerate the injection points
of ``expand_branch`` / ``compact_branch``, then arm a fault at each point
in turn and prove via the invariant validator and a key-set diff against
the underlying FST (the oracle — it is static and complete) that the
trie is exactly as it was before the attempt.
"""

import pytest

from repro.core.invariants import violations_of
from repro.faults import FaultInjector, InjectedFault
from repro.hybridtrie.tagged import TrieBranch
from repro.hybridtrie.tree import HybridTrie

PAIRS = [(key.to_bytes(4, "big"), key) for key in range(0, 2000, 7)]


def make_trie():
    return HybridTrie(PAIRS, art_levels=1, adaptive=False)


def branches_of(trie):
    found = []

    def walk(node):
        if isinstance(node, TrieBranch):
            found.append(node)
            if node.expanded:
                walk(node.art_node)
            return
        for _, child in node.children_items():
            if not isinstance(child, int):
                walk(child)

    walk(trie._root)
    return found


def enumerate_sites(operation):
    trie = make_trie()
    branch = branches_of(trie)[0]
    if operation == "compact":
        assert trie.expand_branch(branch)
    with FaultInjector() as observer:
        if operation == "expand":
            assert trie.expand_branch(branch)
        else:
            assert trie.compact_branch(branch)
    return observer.sites_seen()


EXPAND_SITES = enumerate_sites("expand")
COMPACT_SITES = enumerate_sites("compact")


def test_migrations_cross_the_expected_sites():
    assert EXPAND_SITES == {
        "trie.expand.read": 1,
        "trie.expand.build": 1,
        "trie.expand.swap": 1,
    }
    assert COMPACT_SITES == {
        "trie.compact.collect": 1,
        "trie.compact.swap": 1,
    }


class TestExpandFaults:
    @pytest.mark.parametrize("fail_at", range(1, sum(EXPAND_SITES.values()) + 1))
    def test_faulted_expansion_leaves_trie_intact(self, fail_at):
        trie = make_trie()
        branch = branches_of(trie)[0]
        branches_before = trie.num_branches
        with FaultInjector(fail_at=fail_at) as injector, pytest.raises(InjectedFault):
            trie.expand_branch(branch)
        assert injector.failures_injected == 1
        assert not branch.expanded  # swap never happened
        assert trie.num_branches == branches_before
        assert violations_of(trie) == []
        assert trie.items() == PAIRS

    @pytest.mark.parametrize("fail_at", range(1, sum(EXPAND_SITES.values()) + 1))
    def test_expansion_succeeds_after_the_fault_clears(self, fail_at):
        trie = make_trie()
        branch = branches_of(trie)[0]
        with FaultInjector(fail_at=fail_at), pytest.raises(InjectedFault):
            trie.expand_branch(branch)
        assert trie.expand_branch(branch)
        assert branch.expanded
        assert violations_of(trie) == []
        assert trie.items() == PAIRS


class TestCompactFaults:
    @pytest.mark.parametrize("fail_at", range(1, sum(COMPACT_SITES.values()) + 1))
    def test_faulted_compaction_leaves_trie_intact(self, fail_at):
        trie = make_trie()
        branch = branches_of(trie)[0]
        assert trie.expand_branch(branch)
        branches_before = trie.num_branches
        with FaultInjector(fail_at=fail_at) as injector, pytest.raises(InjectedFault):
            trie.compact_branch(branch)
        assert injector.failures_injected == 1
        assert branch.expanded  # still expanded: nothing was detached
        assert trie.num_branches == branches_before
        assert violations_of(trie) == []
        assert trie.items() == PAIRS

    @pytest.mark.parametrize("fail_at", range(1, sum(COMPACT_SITES.values()) + 1))
    def test_compaction_succeeds_after_the_fault_clears(self, fail_at):
        trie = make_trie()
        branch = branches_of(trie)[0]
        assert trie.expand_branch(branch)
        with FaultInjector(fail_at=fail_at), pytest.raises(InjectedFault):
            trie.compact_branch(branch)
        assert trie.compact_branch(branch)
        assert not branch.expanded
        assert violations_of(trie) == []
        assert trie.items() == PAIRS

    def test_faulted_compaction_of_nested_expansion(self):
        trie = make_trie()
        outer = branches_of(trie)[0]
        assert trie.expand_branch(outer)
        inner = next(
            child for child in branches_of(trie) if child.level > outer.level
        )
        assert trie.expand_branch(inner)
        branches_before = trie.num_branches
        with FaultInjector(site="trie.compact.swap", fail_at=1), pytest.raises(
            InjectedFault
        ):
            trie.compact_branch(outer)
        assert outer.expanded and inner.expanded
        assert not inner.detached
        assert trie.num_branches == branches_before
        assert violations_of(trie) == []
        # The retry drops the whole subtree, inner wrapper included.
        assert trie.compact_branch(outer)
        assert inner.detached
        assert violations_of(trie) == []
        assert trie.items() == PAIRS
