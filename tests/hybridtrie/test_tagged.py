"""Tests for the tagged branch identifiers."""

from repro.hybridtrie.tagged import BRANCH_POINTER_BYTES, TrieBranch, TrieEncoding


class TestTrieBranch:
    def test_starts_compact(self):
        branch = TrieBranch(fst_node=17, level=3)
        assert branch.encoding is TrieEncoding.FST
        assert not branch.expanded
        assert branch.fst_node == 17
        assert branch.level == 3
        assert not branch.detached

    def test_expansion_flips_encoding(self):
        branch = TrieBranch(1, 1)
        branch.art_node = object()
        assert branch.encoding is TrieEncoding.ART
        assert branch.expanded

    def test_identity_semantics(self):
        a = TrieBranch(5, 2)
        b = TrieBranch(5, 2)
        assert a == a
        assert a != b
        assert hash(a) != hash(b)

    def test_usable_as_dict_key_across_migration(self):
        branch = TrieBranch(9, 1)
        table = {branch: "stats"}
        branch.art_node = object()  # expansion must not change the hash
        assert table[branch] == "stats"

    def test_encoding_order_string(self):
        assert str(TrieEncoding.FST) == "fst"
        assert str(TrieEncoding.ART) == "art"

    def test_pointer_bookkeeping_constant(self):
        assert BRANCH_POINTER_BYTES == 8
