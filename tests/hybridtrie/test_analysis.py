"""Tests for the multi-FST design analysis (the paper's negative result)."""

import random

from repro.hybridtrie.analysis import MultiFstEstimate, multi_fst_overhead
from repro.hybridtrie.tree import HybridTrie


def make_trie(n=3000, art_levels=3, seed=0):
    rng = random.Random(seed)
    ints = sorted(rng.sample(range(2**40), n))
    pairs = [(key.to_bytes(8, "big"), index) for index, key in enumerate(ints)]
    return HybridTrie(pairs, art_levels=art_levels, adaptive=False)


class TestMultiFstOverhead:
    def test_branch_count_matches_trie(self):
        trie = make_trie()
        estimate = multi_fst_overhead(trie)
        assert estimate.branch_count == trie.num_branches

    def test_fine_granularity_does_not_pay_off(self):
        # Deep ART region -> many small branches -> per-FST headers swamp
        # the payload: exactly the paper's observation.
        trie = make_trie(art_levels=4)
        estimate = multi_fst_overhead(trie)
        assert estimate.branch_count > 100
        assert not estimate.pays_off
        assert estimate.multi_fst_header_bytes > 0.2 * estimate.single_fst_bytes

    def test_header_overhead_scales_with_branches(self):
        shallow = multi_fst_overhead(make_trie(art_levels=1))
        deep = multi_fst_overhead(make_trie(art_levels=4))
        assert deep.branch_count > shallow.branch_count
        assert deep.multi_fst_header_bytes > shallow.multi_fst_header_bytes

    def test_payload_bounded_by_global_fst_scale(self):
        trie = make_trie(art_levels=2)
        estimate = multi_fst_overhead(trie)
        # Splitting never shrinks the payload below ~the shared structure;
        # allow slack because the approximation drops shared directories.
        assert estimate.multi_fst_payload_bytes > 0.3 * estimate.single_fst_bytes

    def test_expanded_branches_replaced_by_children(self):
        trie = make_trie(art_levels=2)
        full = multi_fst_overhead(trie)
        # Expand a handful of branches: each expanded branch leaves the
        # cold pool but its children (one level deeper) join it.
        count = 0
        items = trie.items()
        for key, _ in items[:: max(1, len(items) // 50)]:
            branch = trie._branch_on_path(key)
            if branch is not None and not branch.expanded:
                trie.expand_branch(branch)
                count += 1
            if count >= 5:
                break
        assert count == 5
        after = multi_fst_overhead(trie)
        assert after.branch_count >= full.branch_count

    def test_dataclass_totals(self):
        estimate = MultiFstEstimate(
            branch_count=10,
            single_fst_bytes=1000,
            multi_fst_payload_bytes=700,
            multi_fst_header_bytes=960,
        )
        assert estimate.multi_fst_total_bytes == 1660
        assert not estimate.pays_off
