"""Tests for Hybrid Trie serialization (ship-a-trained-trie)."""

import random

import pytest

from repro.core.budget import MemoryBudget
from repro.hybridtrie import HybridTrie


def int_pairs(n, seed=0):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(2**44), n))
    return [(key.to_bytes(8, "big"), index) for index, key in enumerate(keys)]


class TestRoundtrip:
    def test_untrained_trie(self):
        pairs = int_pairs(800)
        trie = HybridTrie(pairs, art_levels=2, adaptive=False)
        loaded = HybridTrie.from_bytes(trie.to_bytes(), adaptive=False)
        for key, value in pairs[::13]:
            assert loaded.lookup(key) == value
        assert loaded.art_levels == 2
        assert loaded.expanded_branch_count() == 0
        assert loaded.num_branches == trie.num_branches

    def test_trained_layout_survives(self):
        pairs = int_pairs(2000)
        trie = HybridTrie(pairs, art_levels=2, adaptive=False)
        hot = [pairs[index % 50][0] for index in range(2000)]
        trie.train(hot, budget=MemoryBudget.absolute(trie.size_bytes() + 20_000))
        assert trie.expanded_branch_count() >= 1
        loaded = HybridTrie.from_bytes(trie.to_bytes(), adaptive=False)
        assert loaded.expanded_fst_nodes() == trie.expanded_fst_nodes()
        assert loaded.size_bytes() == trie.size_bytes()
        for key, value in pairs[::31]:
            assert loaded.lookup(key) == value
        assert loaded.items() == pairs

    def test_nested_expansions_survive(self):
        pairs = int_pairs(2000)
        trie = HybridTrie(pairs, art_levels=1, adaptive=False)
        # Expand a chain: branch, then its child, then the grandchild.
        for _ in range(3):
            branch = trie._branch_on_path(pairs[0][0])
            if branch is not None:
                trie.expand_branch(branch)
        depth_before = trie.expanded_branch_count()
        loaded = HybridTrie.from_bytes(trie.to_bytes(), adaptive=False)
        assert loaded.expanded_branch_count() == depth_before
        assert loaded.lookup(pairs[0][0]) == pairs[0][1]

    def test_loaded_adaptive_trie_keeps_adapting(self):
        import numpy as np

        pairs = int_pairs(1500)
        trie = HybridTrie(pairs, art_levels=2, adaptive=False)
        loaded = HybridTrie.from_bytes(trie.to_bytes(), adaptive=True)
        loaded.manager.config.initial_sample_size = None
        # Drive a hot workload; the loaded trie must be able to expand.
        rng = np.random.default_rng(0)
        hot = [pairs[index][0] for index in range(40)]
        branch = loaded._branch_on_path(hot[0])
        assert loaded.expand_branch(branch)
        assert loaded.expanded_branch_count() == 1

    def test_scan_after_reload(self):
        pairs = int_pairs(600)
        loaded = HybridTrie.from_bytes(
            HybridTrie(pairs, art_levels=2, adaptive=False).to_bytes(), adaptive=False
        )
        assert loaded.scan(pairs[100][0], 15) == pairs[100:115]

    def test_bad_magic(self):
        pairs = int_pairs(50)
        blob = HybridTrie(pairs, adaptive=False).to_bytes()
        with pytest.raises(ValueError):
            HybridTrie.from_bytes(b"XXXX" + blob[4:])

    def test_empty_trie(self):
        loaded = HybridTrie.from_bytes(HybridTrie([], adaptive=False).to_bytes())
        assert loaded.lookup(b"x") is None
        assert len(loaded) == 0
