"""Tests for the Hybrid Trie (AHI-Trie)."""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.tree import terminated
from repro.core.budget import MemoryBudget
from repro.core.manager import ManagerConfig
from repro.hybridtrie.tagged import TrieBranch, TrieEncoding
from repro.hybridtrie.tree import TRIE_ENCODING_ORDER, HybridTrie


def int_pairs(n, seed=0, bits=48):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(2**bits), n))
    return [(key.to_bytes(8, "big"), index) for index, key in enumerate(keys)]


def fast_config(budget=None):
    return ManagerConfig(
        encoding_order=TRIE_ENCODING_ORDER,
        budget=budget or MemoryBudget.unbounded(),
        initial_skip_length=0,
        skip_min=0,
        skip_max=10,
        initial_sample_size=400,
        max_sample_size=400,
        use_bloom_filter=False,
    )


class TestConstruction:
    def test_lookup_all_keys(self):
        pairs = int_pairs(1000)
        trie = HybridTrie(pairs, art_levels=2)
        for key, value in pairs[::17]:
            assert trie.lookup(key) == value

    def test_art_levels_zero_means_root_branch(self):
        pairs = int_pairs(100)
        trie = HybridTrie(pairs, art_levels=0)
        assert isinstance(trie._root, TrieBranch)
        for key, value in pairs[::9]:
            assert trie.lookup(key) == value

    def test_art_levels_clamped_to_height(self):
        pairs = int_pairs(50)
        trie = HybridTrie(pairs, art_levels=100)
        assert trie.art_levels <= trie.fst.height
        for key, value in pairs[::7]:
            assert trie.lookup(key) == value

    def test_empty(self):
        trie = HybridTrie([])
        assert trie.lookup(b"x") is None
        assert trie.items() == []
        assert len(trie) == 0

    def test_misses(self):
        trie = HybridTrie(int_pairs(200), art_levels=2)
        assert trie.lookup(b"\x00" * 8) is None

    def test_variable_length_keys(self):
        words = sorted(terminated(word) for word in [b"car", b"cart", b"cat", b"dog"])
        trie = HybridTrie([(word, index) for index, word in enumerate(words)], art_levels=1)
        for index, word in enumerate(words):
            assert trie.lookup(word) == index


class TestScans:
    def test_items_and_scan(self):
        pairs = int_pairs(400)
        trie = HybridTrie(pairs, art_levels=2)
        assert trie.items() == pairs
        assert trie.scan(pairs[100][0], 20) == pairs[100:120]

    def test_scan_spanning_art_and_fst(self):
        pairs = int_pairs(400)
        trie = HybridTrie(pairs, art_levels=3, manager_config=fast_config())
        # Expand one branch, then scan across it.
        branch = trie._branch_on_path(pairs[100][0])
        trie.expand_branch(branch)
        assert trie.scan(pairs[95][0], 30) == pairs[95:125]


class TestBranchMigrations:
    def test_expand_preserves_lookups(self):
        pairs = int_pairs(500)
        trie = HybridTrie(pairs, art_levels=1)
        branch = trie._branch_on_path(pairs[0][0])
        assert trie.expand_branch(branch)
        assert branch.encoding is TrieEncoding.ART
        for key, value in pairs[::23]:
            assert trie.lookup(key) == value

    def test_expand_idempotent(self):
        pairs = int_pairs(100)
        trie = HybridTrie(pairs, art_levels=1)
        branch = trie._branch_on_path(pairs[0][0])
        assert trie.expand_branch(branch)
        assert not trie.expand_branch(branch)

    def test_compact_restores_fst_mode(self):
        pairs = int_pairs(500)
        trie = HybridTrie(pairs, art_levels=1)
        branch = trie._branch_on_path(pairs[0][0])
        trie.expand_branch(branch)
        size_expanded = trie.size_bytes()
        assert trie.compact_branch(branch)
        assert branch.encoding is TrieEncoding.FST
        assert trie.size_bytes() < size_expanded
        for key, value in pairs[::23]:
            assert trie.lookup(key) == value

    def test_compact_detaches_nested_children(self):
        pairs = int_pairs(800)
        trie = HybridTrie(pairs, art_levels=1)
        outer = trie._branch_on_path(pairs[0][0])
        trie.expand_branch(outer)
        inner = trie._branch_on_path(pairs[0][0])
        assert inner is not outer
        trie.expand_branch(inner)
        branches_before = trie.num_branches
        trie.compact_branch(outer)
        assert inner.detached
        assert trie.num_branches < branches_before
        assert trie.encoding_of(inner) is None
        for key, value in pairs[::31]:
            assert trie.lookup(key) == value

    def test_size_accounting_consistent(self):
        pairs = int_pairs(600)
        trie = HybridTrie(pairs, art_levels=1)
        base = trie.size_bytes()
        branch = trie._branch_on_path(pairs[0][0])
        trie.expand_branch(branch)
        trie.compact_branch(branch)
        # Branch-count bookkeeping may differ by the dropped children only.
        assert trie.size_bytes() <= base

    def test_migration_counters(self):
        pairs = int_pairs(300)
        trie = HybridTrie(pairs, art_levels=1)
        branch = trie._branch_on_path(pairs[0][0])
        trie.expand_branch(branch)
        assert trie.counters.get("migration:fst->art") == 1
        assert trie.counters.get("migration_label:fst->art") > 0
        trie.compact_branch(branch)
        assert trie.counters.get("migration:art->fst") == 1


class TestAdaptation:
    def test_hot_branches_expand(self):
        pairs = int_pairs(2000)
        trie = HybridTrie(pairs, art_levels=2, manager_config=fast_config())
        hot = [key for key, _ in pairs[:60]]
        rng = np.random.default_rng(0)
        for _ in range(2500):
            trie.lookup(hot[rng.integers(0, len(hot))])
        assert trie.expanded_branch_count() >= 1
        for key, value in pairs[::41]:
            assert trie.lookup(key) == value

    def test_workload_shift_compacts(self):
        pairs = int_pairs(2000)
        trie = HybridTrie(pairs, art_levels=2, manager_config=fast_config())
        rng = np.random.default_rng(1)
        first = [key for key, _ in pairs[:50]]
        second = [key for key, _ in pairs[-50:]]
        for _ in range(2000):
            trie.lookup(first[rng.integers(0, 50)])
        for _ in range(4000):
            trie.lookup(second[rng.integers(0, 50)])
        assert trie.manager.events.total_compactions >= 1

    def test_non_adaptive_never_migrates(self):
        pairs = int_pairs(1000)
        trie = HybridTrie(pairs, art_levels=2, adaptive=False)
        rng = np.random.default_rng(2)
        hot = [key for key, _ in pairs[:30]]
        for _ in range(3000):
            trie.lookup(hot[rng.integers(0, 30)])
        assert trie.expanded_branch_count() == 0


class TestTraining:
    def test_train_expands_hot_branches(self):
        pairs = int_pairs(1500)
        trie = HybridTrie(pairs, art_levels=2, adaptive=False)
        workload = [pairs[index % 40][0] for index in range(2000)]
        migrated = trie.train(workload, budget=MemoryBudget.absolute(trie.size_bytes() + 20_000))
        assert migrated >= 1
        assert trie.expanded_branch_count() == migrated
        for key, value in pairs[::37]:
            assert trie.lookup(key) == value

    def test_train_respects_budget(self):
        pairs = int_pairs(1500)
        trie = HybridTrie(pairs, art_levels=2, adaptive=False)
        budget = MemoryBudget.absolute(trie.size_bytes() + 1)
        migrated = trie.train([pairs[0][0]] * 100, budget)
        assert migrated <= 1


class TestProtocol:
    def test_callbacks(self):
        pairs = int_pairs(300)
        trie = HybridTrie(pairs, art_levels=2)
        assert trie.tracked_population() == trie.num_branches
        assert trie.used_memory() == trie.size_bytes()
        branch = trie._branch_on_path(pairs[0][0])
        assert trie.encoding_of(branch) is TrieEncoding.FST
        assert trie.migrate(branch, TrieEncoding.ART, None)
        assert trie.encoding_of(branch) is TrieEncoding.ART
        assert trie.migrate(branch, TrieEncoding.FST, None)
        assert trie.encoding_of("junk") is None

    def test_census(self):
        pairs = int_pairs(300)
        trie = HybridTrie(pairs, art_levels=2)
        census = trie.encoding_census()
        assert census[TrieEncoding.FST][0] == trie.num_branches
        branch = trie._branch_on_path(pairs[0][0])
        trie.expand_branch(branch)
        census = trie.encoding_census()
        assert census[TrieEncoding.ART][0] == 1

    def test_total_size_includes_manager(self):
        trie = HybridTrie(int_pairs(100))
        assert trie.total_size_bytes() >= trie.size_bytes()


@settings(max_examples=15, deadline=None)
@given(
    # The 0x00 terminator convention requires null-free raw keys.
    st.lists(
        st.lists(st.integers(min_value=1, max_value=255), min_size=1, max_size=5).map(bytes),
        unique=True,
        min_size=2,
        max_size=50,
    ),
    st.integers(min_value=0, max_value=4),
    st.lists(st.integers(min_value=0, max_value=49), max_size=12),
)
def test_hybrid_trie_consistent_under_random_migrations(raw_keys, art_levels, expand_picks):
    keys = sorted({terminated(key) for key in raw_keys})
    pairs = [(key, index) for index, key in enumerate(keys)]
    trie = HybridTrie(pairs, art_levels=art_levels, adaptive=False)
    for pick in expand_picks:
        branch = trie._branch_on_path(keys[pick % len(keys)])
        if branch is not None:
            trie.expand_branch(branch)
    for key, value in pairs:
        assert trie.lookup(key) == value
    assert trie.items() == pairs


class TestPrefixAndSuccessor:
    def test_prefix_items_across_mixed_structure(self):
        pairs = int_pairs(800)
        trie = HybridTrie(pairs, art_levels=2, adaptive=False)
        # Expand a branch so the result set spans ART and FST regions.
        branch = trie._branch_on_path(pairs[0][0])
        trie.expand_branch(branch)
        prefix = pairs[100][0][:3]
        expected = [(key, value) for key, value in pairs if key.startswith(prefix)]
        assert trie.prefix_items(prefix) == expected
        assert expected  # the prefix really matches something

    def test_prefix_items_no_match(self):
        trie = HybridTrie(int_pairs(100), art_levels=1, adaptive=False)
        assert trie.prefix_items(b"\xff\xff\xff") == []

    def test_prefix_items_chunk_boundary(self):
        # More than one scan chunk (256) of matches under one prefix.
        pairs = [(bytes([1]) + key.to_bytes(7, "big"), key) for key in range(700)]
        trie = HybridTrie(pairs, art_levels=1, adaptive=False)
        assert trie.prefix_items(bytes([1])) == pairs

    def test_successor(self):
        pairs = int_pairs(300)
        trie = HybridTrie(pairs, art_levels=2, adaptive=False)
        assert trie.successor(pairs[42][0]) == pairs[42]
        probe = (int.from_bytes(pairs[42][0], "big") + 1).to_bytes(8, "big")
        assert trie.successor(probe) == pairs[43]
        assert trie.successor(b"\xff" * 8) is None
