"""Tests for the concurrent cuckoo hash map."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashmap.cuckoo import CuckooMap


class TestBasics:
    def test_set_get(self):
        table = CuckooMap()
        table["a"] = 1
        assert table["a"] == 1
        assert table.get("missing") is None
        assert table.get("missing", 9) == 9

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            CuckooMap()["nope"]

    def test_overwrite(self):
        table = CuckooMap()
        table[1] = "a"
        table[1] = "b"
        assert table[1] == "b"
        assert len(table) == 1

    def test_delete_and_pop(self):
        table = CuckooMap()
        table["x"] = 1
        del table["x"]
        assert "x" not in table
        with pytest.raises(KeyError):
            del table["x"]
        table["y"] = 2
        assert table.pop("y") == 2
        assert table.pop("y", "dflt") == "dflt"

    def test_items(self):
        table = CuckooMap()
        for index in range(50):
            table[index] = -index
        assert dict(table.items()) == {index: -index for index in range(50)}

    def test_clear(self):
        table = CuckooMap()
        table[1] = 1
        table.clear()
        assert len(table) == 0


class TestCuckooMechanics:
    def test_displacement_paths_preserve_entries(self):
        table = CuckooMap(initial_buckets=8)
        for index in range(2000):
            table[index] = index * 3
        for index in range(2000):
            assert table[index] == index * 3
        table.check_invariants()

    def test_resize_counted(self):
        table = CuckooMap(initial_buckets=8)
        for index in range(5000):
            table[index] = index
        assert table.resizes >= 1
        assert len(table) == 5000

    def test_load_factor(self):
        table = CuckooMap(initial_buckets=8)
        for index in range(100):
            table[index] = index
        assert 0.0 < table.load_factor() <= 1.0


class TestConcurrency:
    def test_parallel_writers_disjoint_keys(self):
        table = CuckooMap()
        errors = []

        def worker(base):
            try:
                for index in range(500):
                    table[(base, index)] = base * 1000 + index
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(table) == 2000
        for base in range(4):
            for index in range(0, 500, 49):
                assert table[(base, index)] == base * 1000 + index

    def test_readers_during_writes(self):
        table = CuckooMap()
        for index in range(200):
            table[index] = index
        stop = threading.Event()
        mismatches = []

        def reader():
            while not stop.is_set():
                for index in range(0, 200, 7):
                    value = table.get(index)
                    if value is not None and value not in (index, index + 1):
                        mismatches.append((index, value))

        def writer():
            for round_number in range(50):
                for index in range(200):
                    table[index] = index + (round_number % 2)

        reader_thread = threading.Thread(target=reader)
        writer_thread = threading.Thread(target=writer)
        reader_thread.start()
        writer_thread.start()
        writer_thread.join()
        stop.set()
        reader_thread.join()
        assert not mismatches

    def test_contention_counters_exposed(self):
        table = CuckooMap()
        table["k"] = 1
        table.get("k")
        assert table.lock_acquisitions > 0


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["set", "del", "get"]),
            st.integers(min_value=0, max_value=200),
        ),
        max_size=300,
    )
)
def test_matches_dict(operations):
    table = CuckooMap(initial_buckets=8)
    reference = {}
    for action, key in operations:
        if action == "set":
            table[key] = key * 7
            reference[key] = key * 7
        elif action == "del":
            if key in reference:
                del table[key]
                del reference[key]
        else:
            assert table.get(key) == reference.get(key)
    assert dict(table.items()) == reference
    table.check_invariants()
