"""Tests for the hopscotch hash map."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashmap.hopscotch import NEIGHBOURHOOD, HopscotchMap


class TestBasics:
    def test_set_get(self):
        table = HopscotchMap()
        table["a"] = 1
        assert table["a"] == 1
        assert table.get("a") == 1
        assert table.get("b") is None
        assert table.get("b", 7) == 7

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            HopscotchMap()["missing"]

    def test_overwrite(self):
        table = HopscotchMap()
        table["k"] = 1
        table["k"] = 2
        assert table["k"] == 2
        assert len(table) == 1

    def test_contains_and_len(self):
        table = HopscotchMap()
        assert "x" not in table
        table["x"] = 0
        assert "x" in table
        assert len(table) == 1

    def test_delete(self):
        table = HopscotchMap()
        table["x"] = 1
        del table["x"]
        assert "x" not in table
        assert len(table) == 0
        with pytest.raises(KeyError):
            del table["x"]

    def test_pop(self):
        table = HopscotchMap()
        table["x"] = 5
        assert table.pop("x") == 5
        assert table.pop("x", "default") == "default"
        with pytest.raises(KeyError):
            table.pop("x")

    def test_items_keys_values(self):
        table = HopscotchMap()
        for index in range(20):
            table[index] = index * 2
        assert dict(table.items()) == {index: index * 2 for index in range(20)}
        assert set(table.keys()) == set(range(20))
        assert sorted(table.values()) == [index * 2 for index in range(20)]

    def test_clear(self):
        table = HopscotchMap()
        table["a"] = 1
        table.clear()
        assert len(table) == 0
        assert "a" not in table


class TestNeighbourhoodInvariant:
    def test_many_inserts_keep_invariant(self):
        table = HopscotchMap(initial_capacity=64)
        for index in range(5000):
            table[f"key-{index}"] = index
        table.check_invariants()
        assert len(table) == 5000
        assert table.max_probe_window() == NEIGHBOURHOOD

    def test_resize_preserves_entries(self):
        table = HopscotchMap(initial_capacity=64)
        for index in range(1000):
            table[index] = index
        assert table.resizes >= 1
        for index in range(1000):
            assert table[index] == index
        table.check_invariants()

    def test_colliding_hashes(self):
        class SameHash:
            def __init__(self, tag):
                self.tag = tag

            def __hash__(self):
                return 42

            def __eq__(self, other):
                return isinstance(other, SameHash) and self.tag == other.tag

        table = HopscotchMap()
        keys = [SameHash(index) for index in range(NEIGHBOURHOOD - 1)]
        for index, key in enumerate(keys):
            table[key] = index
        for index, key in enumerate(keys):
            assert table[key] == index
        table.check_invariants()

    def test_load_factor_bounded(self):
        table = HopscotchMap(initial_capacity=64)
        for index in range(500):
            table[index] = index
        assert table.load_factor() <= 0.9


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["set", "del", "get"]),
            st.integers(min_value=0, max_value=200),
        ),
        max_size=300,
    )
)
def test_matches_dict(operations):
    table = HopscotchMap(initial_capacity=64)
    reference = {}
    for action, key in operations:
        if action == "set":
            table[key] = key + 1
            reference[key] = key + 1
        elif action == "del":
            if key in reference:
                del table[key]
                del reference[key]
            else:
                with pytest.raises(KeyError):
                    del table[key]
        else:
            assert table.get(key) == reference.get(key)
    assert dict(table.items()) == reference
    table.check_invariants()
