"""Tests for the Dual-Stage hybrid index baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dualstage.index import CompactSortedArray, DualStageIndex, StaticEncoding


def sorted_pairs(n, seed=0):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(10**9), n))
    return [(key, key * 2) for key in keys]


@pytest.fixture(params=list(StaticEncoding), ids=lambda e: e.value)
def encoding(request):
    return request.param


class TestCompactSortedArray:
    def test_lookup(self, encoding):
        pairs = sorted_pairs(1000)
        array = CompactSortedArray(pairs, encoding)
        for key, value in pairs[::37]:
            assert array.lookup(key) == value
        assert array.lookup(-1) is None
        assert array.lookup(pairs[-1][0] + 1) is None

    def test_empty(self, encoding):
        array = CompactSortedArray([], encoding)
        assert array.lookup(5) is None
        assert len(array) == 0

    def test_items_sorted(self, encoding):
        pairs = sorted_pairs(600)
        array = CompactSortedArray(pairs, encoding)
        assert list(array.items()) == pairs

    def test_items_from(self, encoding):
        pairs = sorted_pairs(600)
        array = CompactSortedArray(pairs, encoding)
        assert list(array.items_from(pairs[300][0]))[:5] == pairs[300:305]

    def test_unsorted_rejected(self, encoding):
        with pytest.raises(ValueError):
            CompactSortedArray([(2, 0), (1, 0)], encoding)

    def test_succinct_smaller_than_packed(self):
        pairs = [(10**6 + index, index) for index in range(2000)]
        succinct = CompactSortedArray(pairs, StaticEncoding.SUCCINCT)
        packed = CompactSortedArray(pairs, StaticEncoding.PACKED)
        assert succinct.size_bytes() < packed.size_bytes() / 2


class TestDualStageOperations:
    def test_bulk_load_and_lookup(self, encoding):
        pairs = sorted_pairs(1000)
        index = DualStageIndex.bulk_load(pairs, encoding)
        for key, value in pairs[::29]:
            assert index.lookup(key) == value
        assert index.lookup(-7) is None

    def test_insert_lands_in_dynamic_stage(self, encoding):
        index = DualStageIndex.bulk_load(sorted_pairs(1000), encoding, merge_ratio=0.5)
        index.insert(7, 70)
        assert index.lookup(7) == 70
        assert index.dynamic_size == 1

    def test_insert_shadows_static_version(self, encoding):
        pairs = sorted_pairs(100)
        index = DualStageIndex.bulk_load(pairs, encoding, merge_ratio=0.5)
        key = pairs[10][0]
        index.insert(key, 999)
        assert index.lookup(key) == 999

    def test_update(self, encoding):
        pairs = sorted_pairs(100)
        index = DualStageIndex.bulk_load(pairs, encoding, merge_ratio=0.5)
        assert index.update(pairs[5][0], 123)
        assert index.lookup(pairs[5][0]) == 123
        assert not index.update(-1, 0)

    def test_delete_via_tombstone(self, encoding):
        pairs = sorted_pairs(100)
        index = DualStageIndex.bulk_load(pairs, encoding, merge_ratio=0.5)
        key = pairs[20][0]
        assert index.delete(key)
        assert index.lookup(key) is None
        assert not index.delete(key)

    def test_scan_merges_stages(self, encoding):
        pairs = [(key * 10, key) for key in range(100)]
        index = DualStageIndex.bulk_load(pairs, encoding, merge_ratio=0.9)
        index.insert(55, 555)  # between static keys 50 and 60
        result = index.scan(40, 4)
        assert result == [(40, 4), (50, 5), (55, 555), (60, 6)]

    def test_scan_respects_tombstones(self, encoding):
        pairs = [(key, key) for key in range(20)]
        index = DualStageIndex.bulk_load(pairs, encoding, merge_ratio=0.9)
        index.delete(5)
        result = index.scan(4, 3)
        assert result == [(4, 4), (6, 6), (7, 7)]

    def test_scan_shadowed_key_not_duplicated(self, encoding):
        pairs = [(key, key) for key in range(20)]
        index = DualStageIndex.bulk_load(pairs, encoding, merge_ratio=0.9)
        index.insert(10, 100)
        result = index.scan(9, 3)
        assert result == [(9, 9), (10, 100), (11, 11)]


class TestMerge:
    def test_merge_triggered_by_ratio(self, encoding):
        index = DualStageIndex.bulk_load(sorted_pairs(100), encoding, merge_ratio=0.05)
        for step in range(10):
            index.insert(10**9 + step, step)
        assert index.merges >= 1
        assert index.dynamic_size < 10
        for step in range(10):
            assert index.lookup(10**9 + step) == step

    def test_merge_applies_tombstones(self, encoding):
        pairs = sorted_pairs(100)
        index = DualStageIndex.bulk_load(pairs, encoding, merge_ratio=0.5)
        index.delete(pairs[0][0])
        index.merge()
        assert index.lookup(pairs[0][0]) is None
        assert index.static_size == 99

    def test_merge_keeps_newest_version(self, encoding):
        pairs = sorted_pairs(50)
        index = DualStageIndex.bulk_load(pairs, encoding, merge_ratio=0.9)
        index.insert(pairs[7][0], 777)
        index.merge()
        assert index.lookup(pairs[7][0]) == 777
        assert index.static_size == 50

    def test_merge_counts_entries(self, encoding):
        index = DualStageIndex.bulk_load(sorted_pairs(100), encoding, merge_ratio=0.9)
        index.insert(1, 1)
        before = index.counters.get("merge_entry")
        index.merge()
        assert index.counters.get("merge_entry") - before == 101

    def test_invalid_merge_ratio(self):
        with pytest.raises(ValueError):
            DualStageIndex(merge_ratio=0.0)


class TestAccounting:
    def test_probe_counters(self, encoding):
        pairs = sorted_pairs(100)
        index = DualStageIndex.bulk_load(pairs, encoding)
        index.lookup(pairs[0][0])
        assert index.counters.get("bloom_probe") == 1
        assert index.counters.get("static_stage_probe") == 1

    def test_bloom_skips_dynamic_stage_for_merged_keys(self, encoding):
        pairs = sorted_pairs(500)
        index = DualStageIndex.bulk_load(pairs, encoding)
        for key, _ in pairs[::10]:
            index.lookup(key)
        # Nothing was inserted -> the bloom filter is empty -> no dynamic
        # stage probes at all.
        assert index.counters.get("dynamic_stage_probe") == 0

    def test_size_bytes_components(self, encoding):
        pairs = sorted_pairs(500)
        index = DualStageIndex.bulk_load(pairs, encoding)
        assert index.size_bytes() > 0
        before = index.size_bytes()
        # Enough inserts to cross the merge ratio: the static stage then
        # absorbs them and grows.  (Below the ratio the pre-allocated
        # Gapped dynamic leaf absorbs inserts without growing at all.)
        for step in range(60):
            index.insert(2 * 10**9 + step, step)
        assert index.merges >= 1
        assert index.size_bytes() > before

    def test_len_deduplicates_stages(self, encoding):
        pairs = sorted_pairs(100)
        index = DualStageIndex.bulk_load(pairs, encoding, merge_ratio=0.9)
        index.insert(pairs[0][0], 1)   # shadow
        index.insert(3 * 10**9, 2)     # new
        assert len(index) == 101


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "lookup"]),
            st.integers(min_value=0, max_value=80),
        ),
        max_size=60,
    ),
    st.sampled_from(list(StaticEncoding)),
)
def test_dualstage_matches_dict(operations, encoding):
    base = [(key, key) for key in range(0, 40, 2)]
    index = DualStageIndex.bulk_load(base, encoding, merge_ratio=0.3)
    reference = dict(base)
    for action, key in operations:
        if action == "insert":
            index.insert(key, key + 1)
            reference[key] = key + 1
        elif action == "delete":
            assert index.delete(key) == (key in reference)
            reference.pop(key, None)
        else:
            assert index.lookup(key) == reference.get(key)
    for key in range(81):
        assert index.lookup(key) == reference.get(key)
