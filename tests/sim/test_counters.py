"""Tests for the operation counters."""

from repro.sim.counters import OpCounters


class TestOpCounters:
    def test_add_and_get(self):
        counters = OpCounters()
        counters.add("inner_visit")
        counters.add("inner_visit", 4)
        assert counters.get("inner_visit") == 5
        assert counters.get("unknown") == 0

    def test_snapshot_is_copy(self):
        counters = OpCounters()
        counters.add("x")
        snap = counters.snapshot()
        counters.add("x")
        assert snap["x"] == 1
        assert counters.get("x") == 2

    def test_diff(self):
        counters = OpCounters()
        counters.add("a", 3)
        earlier = counters.snapshot()
        counters.add("a", 2)
        counters.add("b")
        assert counters.diff(earlier) == {"a": 2, "b": 1}

    def test_diff_skips_zero_deltas(self):
        counters = OpCounters()
        counters.add("a")
        assert counters.diff(counters.snapshot()) == {}

    def test_diff_ignores_events_absent_now(self):
        # diff iterates the *current* counts: an event that appears only
        # in the earlier snapshot (e.g. after a reset) is silently
        # dropped, never reported as a negative delta.
        counters = OpCounters()
        counters.add("a", 3)
        earlier = counters.snapshot()
        counters.reset()
        counters.add("b", 2)
        assert counters.diff(earlier) == {"b": 2}

    def test_diff_against_empty_snapshot(self):
        counters = OpCounters()
        counters.add("a", 5)
        assert counters.diff({}) == {"a": 5}

    def test_diff_reports_decreases_when_event_survives(self):
        counters = OpCounters()
        counters.add("a", 5)
        earlier = counters.snapshot()
        counters.reset()
        counters.add("a", 2)
        assert counters.diff(earlier) == {"a": -3}

    def test_snapshot_of_empty_counters(self):
        assert OpCounters().snapshot() == {}

    def test_add_many_matches_repeated_add(self):
        batched, looped = OpCounters(), OpCounters()
        batched.add_many({"x": 3, "y": 1})
        batched.add_many({"x": 2})
        for _ in range(5):
            looped.add("x")
        looped.add("y")
        assert batched.snapshot() == looped.snapshot()

    def test_merge(self):
        a = OpCounters()
        b = OpCounters()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.get("x") == 3
        assert a.get("y") == 3

    def test_reset(self):
        counters = OpCounters()
        counters.add("x")
        counters.reset()
        assert len(counters) == 0

    def test_iter(self):
        counters = OpCounters()
        counters.add("a", 2)
        assert dict(counters) == {"a": 2}
