"""Tests for the calibrated cost model."""

import pytest

from repro.sim.costmodel import (
    DEFAULT_COSTS_NS,
    CostModel,
    StorageDevice,
    storage_access_latency_us,
)


class TestPricing:
    def test_price_sums_events(self):
        model = CostModel()
        total = model.price({"inner_visit": 2, "leaf_visit:gapped": 1})
        assert total == 2 * 8.0 + 40.0

    def test_unknown_event_free(self):
        assert CostModel().price({"unpriced": 100}) == 0.0

    def test_price_per_op(self):
        model = CostModel()
        assert model.price_per_op({"inner_visit": 10}, 5) == 16.0
        assert model.price_per_op({"inner_visit": 10}, 0) == 0.0

    def test_with_overrides(self):
        model = CostModel().with_overrides(inner_visit=99.0)
        assert model.price({"inner_visit": 1}) == 99.0
        # Original unchanged.
        assert CostModel().price({"inner_visit": 1}) == 8.0

    def test_override_colon_names(self):
        model = CostModel().with_overrides(leaf_visit__gapped=1.0)
        assert model.price({"leaf_visit:gapped": 1}) == 1.0


class TestCalibration:
    """The constants must reproduce the paper's headline numbers."""

    def test_table1_lookup_latencies(self):
        model = CostModel()
        # Two inner levels + one leaf visit, as in the defaults note.
        gapped = model.price({"inner_visit": 2, "leaf_visit:gapped": 1})
        packed = model.price({"inner_visit": 2, "leaf_visit:packed": 1})
        succinct = model.price({"inner_visit": 2, "leaf_visit:succinct": 1})
        assert gapped == pytest.approx(56, abs=2)
        assert packed == pytest.approx(57, abs=2)
        assert succinct == pytest.approx(125, abs=2)

    def test_figure9_migration_ordering(self):
        model = CostModel()
        entries = 178
        cheap = model.price(
            {"migration:gapped->packed": 1, "migration_entry:cheap": entries}
        )
        recode = model.price(
            {"migration:succinct->gapped": 1, "migration_entry:recode": entries}
        )
        assert recode > 3 * cheap
        assert 1000 < recode < 2000  # paper: >1 us for a 70% leaf

    def test_trie_migration_asymmetry(self):
        model = CostModel()
        expand = model.price(
            {"migration:fst->art": 1, "migration_label:fst->art": 64}
        )
        compact = model.price({"migration:art->fst": 1})
        assert expand == pytest.approx(5060, abs=100)  # ~5 us at 50% occupancy
        assert compact == pytest.approx(100, abs=1)

    def test_sampling_costs(self):
        assert DEFAULT_COSTS_NS["sample_track"] == 60.0
        assert DEFAULT_COSTS_NS["sample_check"] <= 2.0


class TestStorageLatency:
    def test_figure3_device_ordering(self):
        page = 4096
        latencies = [
            storage_access_latency_us(device, write=False, compressed=False,
                                      uncompressed_bytes=page)
            for device in (
                StorageDevice.SATA_SSD,
                StorageDevice.NVME_SSD,
                StorageDevice.PMEM,
                StorageDevice.DRAM,
            )
        ]
        assert latencies == sorted(latencies, reverse=True)
        assert latencies[0] > 1000 * latencies[-1]  # SSD orders slower than DRAM

    def test_compression_adds_codec_cost_on_dram(self):
        plain = storage_access_latency_us(
            StorageDevice.DRAM, write=False, compressed=False, uncompressed_bytes=4096
        )
        compressed = storage_access_latency_us(
            StorageDevice.DRAM, write=False, compressed=True,
            uncompressed_bytes=4096, compressed_bytes=2048,
        )
        assert compressed > plain
        # But still far cheaper than any disk read.
        ssd = storage_access_latency_us(
            StorageDevice.SATA_SSD, write=False, compressed=False, uncompressed_bytes=4096
        )
        assert compressed < ssd / 10

    def test_writes_cost_more_than_reads(self):
        read = storage_access_latency_us(
            StorageDevice.NVME_SSD, write=False, compressed=False, uncompressed_bytes=4096
        )
        write = storage_access_latency_us(
            StorageDevice.NVME_SSD, write=True, compressed=False, uncompressed_bytes=4096
        )
        assert write > read

    def test_default_compressed_size(self):
        latency = storage_access_latency_us(
            StorageDevice.PMEM, write=False, compressed=True, uncompressed_bytes=4096
        )
        assert latency > 0
