"""ShardRouter: batched routing, cross-shard scans, metrics, budgets."""

import random

import pytest

from repro.core.budget import MemoryBudget
from repro.obs import MetricsRegistry, Telemetry
from repro.service.partition import PartitionError
from repro.service.router import FAMILY_FACTORIES, ReadOnlyShardError, ShardRouter

FAMILIES = ("olc", "adaptive", "dualstage")
PARTITIONINGS = ("hash", "range")


def int_pairs(count=2000, step=3):
    return [(key * step, key * step + 1) for key in range(count)]


def byte_pairs(count=400, seed=7):
    rng = random.Random(seed)
    words = set()
    while len(words) < count:
        words.add(bytes(rng.randrange(97, 123) for _ in range(rng.randrange(3, 9))))
    return [(word + b"\x00", rank) for rank, word in enumerate(sorted(words))]


@pytest.fixture(params=PARTITIONINGS)
def partitioning(request):
    return request.param


class TestBuild:
    def test_unknown_family_and_partitioning_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter.build(int_pairs(10), family="btree9000")
        with pytest.raises(ValueError):
            ShardRouter.build(int_pairs(10), partitioning="modulo")

    def test_shard_count_must_match_partitioner(self):
        from repro.service.partition import HashPartitioner
        from repro.service.shard import Shard

        factory = FAMILY_FACTORIES["olc"]
        with pytest.raises(PartitionError):
            ShardRouter([Shard(0, factory([]))], HashPartitioner(2), factory)

    @pytest.mark.parametrize("family", FAMILIES)
    def test_all_keys_loaded_and_routable(self, family, partitioning):
        pairs = int_pairs(1200)
        with ShardRouter.build(
            pairs, family=family, num_shards=4, partitioning=partitioning
        ) as router:
            assert len(router) == len(pairs)
            assert router.num_shards == 4
            router.verify()


class TestPointAndBatchedOps:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_get_many_alignment_hits_and_misses(self, family, partitioning):
        pairs = int_pairs(1500)
        with ShardRouter.build(
            pairs, family=family, num_shards=4, partitioning=partitioning
        ) as router:
            rng = random.Random(42)
            expected = dict(pairs)
            probes = [rng.randrange(0, 1500 * 3 + 10) for _ in range(600)]
            values = router.get_many(probes)
            assert values == [expected.get(key) for key in probes]

    def test_get_many_empty_batch(self, partitioning):
        with ShardRouter.build(
            int_pairs(100), num_shards=2, partitioning=partitioning
        ) as router:
            assert router.get_many([]) == []
            assert router.scan(0, 0) == []

    @pytest.mark.parametrize("family", FAMILIES)
    def test_put_many_then_read_back(self, family, partitioning):
        pairs = int_pairs(800)
        with ShardRouter.build(
            pairs, family=family, num_shards=3, partitioning=partitioning
        ) as router:
            fresh = [(10**7 + key, key) for key in range(250)]
            overwrite = [(key, 999) for key, _ in pairs[:50]]
            router.put_many(fresh + overwrite)
            assert router.get_many([key for key, _ in fresh]) == [
                value for _, value in fresh
            ]
            assert router.get_many([key for key, _ in overwrite]) == [999] * 50

    @pytest.mark.parametrize("family", FAMILIES)
    def test_put_get_delete_single_key(self, family, partitioning):
        with ShardRouter.build(
            int_pairs(300), family=family, num_shards=2, partitioning=partitioning
        ) as router:
            router.put(-77, 123)
            assert router.get(-77) == 123
            assert router.delete(-77) is True
            assert router.get(-77) is None
            assert router.delete(-77) is False

    def test_inline_mode_without_executor(self):
        with ShardRouter.build(
            int_pairs(200), num_shards=4, partitioning="hash", max_workers=0
        ) as router:
            keys = [key for key, _ in int_pairs(200)]
            assert router.get_many(keys) == [value for _, value in int_pairs(200)]
            assert router.queue_depth == 0


class TestCrossShardScan:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_scan_merges_in_key_order(self, family, partitioning):
        pairs = int_pairs(1000)
        with ShardRouter.build(
            pairs, family=family, num_shards=4, partitioning=partitioning
        ) as router:
            # Spans every shard boundary regardless of the partitioning.
            result = router.scan(pairs[100][0], 700)
            assert result == pairs[100:800]

    def test_scan_from_before_and_past_the_keyspace(self, partitioning):
        pairs = int_pairs(300)
        with ShardRouter.build(
            pairs, num_shards=3, partitioning=partitioning
        ) as router:
            assert router.scan(-(10**9), 50) == pairs[:50]
            assert router.scan(pairs[-1][0] + 1, 50) == []
            assert router.scan(0, 10**6) == pairs

    def test_scan_count_is_exact_at_shard_boundaries(self):
        pairs = int_pairs(400)
        with ShardRouter.build(pairs, num_shards=4, partitioning="range") as router:
            boundaries = router.table.partitioner.boundaries
            for boundary in boundaries:
                result = router.scan(boundary - 1, 5)
                expected_start = next(
                    position for position, (key, _) in enumerate(pairs)
                    if key >= boundary - 1
                )
                assert result == pairs[expected_start : expected_start + 5]

    def test_byte_key_scan_on_trie_shards(self, partitioning):
        pairs = byte_pairs(300)
        with ShardRouter.build(
            pairs, family="hybridtrie", num_shards=3, partitioning=partitioning
        ) as router:
            assert router.scan(pairs[0][0], 120) == pairs[:120]
            assert router.get_many([key for key, _ in pairs[::5]]) == [
                value for _, value in pairs[::5]
            ]


class TestReadOnlyFamilies:
    def test_trie_shards_reject_writes(self):
        pairs = byte_pairs(120)
        with ShardRouter.build(
            pairs, family="hybridtrie", num_shards=2, partitioning="range"
        ) as router:
            with pytest.raises(ReadOnlyShardError):
                router.put(b"zzz\x00", 1)
            with pytest.raises(ReadOnlyShardError):
                router.put_many([(b"zzz\x00", 1)])
            with pytest.raises(ReadOnlyShardError):
                router.delete(pairs[0][0])


class TestBudgetIntegration:
    def test_global_budget_reaches_shard_managers(self):
        pairs = int_pairs(2000)
        with ShardRouter.build(
            pairs,
            family="adaptive",
            num_shards=4,
            partitioning="range",
            budget=MemoryBudget.absolute(8_000_000),
        ) as router:
            budgets = [
                shard.index.manager.config.budget for shard in router.table.shards
            ]
            assert all(budget.bounded for budget in budgets)
            total = sum(budget.absolute_bytes for budget in budgets)
            assert total <= 8_000_000
            assert router.arbiter.num_members == 4

    def test_rebalance_follows_split(self):
        pairs = int_pairs(1000)
        with ShardRouter.build(
            pairs,
            family="adaptive",
            num_shards=2,
            partitioning="range",
            budget=MemoryBudget.absolute(4_000_000),
        ) as router:
            router.split_shard(0)
            assert router.arbiter.num_members == 3
            budgets = [
                shard.index.manager.config.budget for shard in router.table.shards
            ]
            assert all(budget.bounded for budget in budgets)


class TestStatsAndMetrics:
    def test_stats_shape_is_json_safe(self):
        import json

        pairs = int_pairs(500)
        with ShardRouter.build(pairs, num_shards=4, partitioning="range") as router:
            router.get_many([key for key, _ in pairs[:100]])
            stats = router.stats()
            json.dumps(stats)
            assert stats["num_shards"] == 4
            assert stats["num_keys"] == 500
            assert len(stats["shards"]) == 4
            assert stats["imbalance"] >= 1.0
            assert stats["budget"]["members"] == 4

    def test_service_metrics_published_under_telemetry(self):
        pairs = int_pairs(600)
        with ShardRouter.build(pairs, num_shards=3, partitioning="range") as router:
            with Telemetry(registry=MetricsRegistry()) as telemetry:
                router.get_many([key for key, _ in pairs[:200]])
                router.put_many([(10**8 + key, key) for key in range(50)])
                router.scan(0, 30)
                router.split_shard(0)
                router.merge_shards(0)
            snapshot = telemetry.registry.snapshot()
            assert snapshot["counters"]["service.ops.read"] == 200
            assert snapshot["counters"]["service.ops.write"] == 50
            assert snapshot["counters"]["service.ops.scan"] == 1
            assert snapshot["counters"]["service.splits"] == 1
            assert snapshot["counters"]["service.merges"] == 1
            assert snapshot["gauges"]["service.shards"] == 3

    def test_imbalance_reflects_skewed_shards(self):
        pairs = int_pairs(900)
        with ShardRouter.build(pairs, num_shards=3, partitioning="range") as router:
            balanced = router.imbalance()
            assert balanced == pytest.approx(1.0, abs=0.1)
            router.put_many([(10**9 + key, key) for key in range(900)])
            assert router.imbalance() > balanced
