"""The global-budget arbiter dividing one budget across shards."""

import pytest

from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.core.budget import BudgetArbiter, MemoryBudget


def adaptive(num_keys):
    return AdaptiveBPlusTree.bulk_load_adaptive(
        [(key, key) for key in range(num_keys)]
    )


class TestAllocation:
    def test_unbounded_budget_passes_through(self):
        arbiter = BudgetArbiter(MemoryBudget.unbounded())
        arbiter.register("a", adaptive(100))
        arbiter.register("b", adaptive(100))
        allocations = arbiter.rebalance()
        assert set(allocations) == {"a", "b"}
        assert all(not budget.bounded for budget in allocations.values())

    def test_relative_budget_composes_per_shard(self):
        arbiter = BudgetArbiter(MemoryBudget.relative(16.0))
        arbiter.register("a", adaptive(100))
        arbiter.register("b", adaptive(300))
        allocations = arbiter.rebalance()
        assert all(budget.bits_per_key == 16.0 for budget in allocations.values())

    def test_absolute_budget_splits_proportionally(self):
        arbiter = BudgetArbiter(MemoryBudget.absolute(1_000_000), floor_bytes=1000)
        small, large = adaptive(100), adaptive(900)
        arbiter.register("small", small)
        arbiter.register("large", large)
        allocations = arbiter.rebalance()
        total = sum(budget.absolute_bytes for budget in allocations.values())
        assert total <= 1_000_000
        assert allocations["large"].absolute_bytes > allocations["small"].absolute_bytes
        # ~9x the keys -> roughly 9x the headroom above the floor.
        ratio = (allocations["large"].absolute_bytes - 1000) / (
            allocations["small"].absolute_bytes - 1000
        )
        assert ratio == pytest.approx(9.0, rel=0.05)

    def test_allocations_install_into_managers(self):
        arbiter = BudgetArbiter(MemoryBudget.absolute(500_000))
        index = adaptive(200)
        arbiter.register("only", index)
        allocations = arbiter.rebalance()
        assert index.manager.config.budget is allocations["only"]
        assert index.manager.config.budget.bounded

    def test_floor_protects_empty_members(self):
        arbiter = BudgetArbiter(MemoryBudget.absolute(1_000_000), floor_bytes=4096)
        arbiter.register("empty", adaptive(0))
        arbiter.register("full", adaptive(1000))
        allocations = arbiter.rebalance()
        assert allocations["empty"].absolute_bytes >= 4096

    def test_tiny_budget_never_allocates_zero(self):
        arbiter = BudgetArbiter(MemoryBudget.absolute(3), floor_bytes=4096)
        arbiter.register("a", adaptive(10))
        arbiter.register("b", adaptive(10))
        allocations = arbiter.rebalance()
        assert all(budget.absolute_bytes >= 1 for budget in allocations.values())

    def test_no_members_is_a_noop(self):
        arbiter = BudgetArbiter(MemoryBudget.absolute(1000))
        assert arbiter.rebalance() == {}


class TestAccounting:
    def test_membership_and_totals(self):
        arbiter = BudgetArbiter(MemoryBudget.absolute(10_000_000))
        arbiter.register("a", adaptive(100))
        arbiter.register("b", adaptive(200))
        assert arbiter.num_members == 2
        assert arbiter.num_keys() == 300
        assert arbiter.used_bytes() > 0
        assert 0.0 < arbiter.utilization() < 1.0
        assert not arbiter.exceeded()
        arbiter.unregister("a")
        assert arbiter.num_members == 1
        arbiter.clear()
        assert arbiter.num_members == 0

    def test_exceeded_on_starved_budget(self):
        arbiter = BudgetArbiter(MemoryBudget.absolute(16))
        arbiter.register("a", adaptive(500))
        assert arbiter.exceeded()
        assert arbiter.utilization() > 1.0

    def test_describe_is_json_safe(self):
        import json

        arbiter = BudgetArbiter(MemoryBudget.relative(12.0))
        arbiter.register("a", adaptive(50))
        summary = arbiter.describe()
        json.dumps(summary)
        assert summary["members"] == 1
        assert summary["bits_per_key"] == 12.0

    def test_rejects_negative_floor(self):
        with pytest.raises(ValueError):
            BudgetArbiter(MemoryBudget.unbounded(), floor_bytes=-1)
