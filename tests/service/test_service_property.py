"""Property test: the router always agrees with a plain model dict."""

import contextlib

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.service.partition import PartitionError
from repro.service.router import ShardRouter

KEYS = st.integers(min_value=-1000, max_value=1000)
VALUES = st.integers(min_value=-(2**31), max_value=2**31)


class RouterAgreesWithModel(RuleBasedStateMachine):
    """Random put/delete/get/scan/split/merge vs. a model dict."""

    @initialize(
        pairs=st.dictionaries(KEYS, VALUES, min_size=4, max_size=64),
        num_shards=st.integers(min_value=1, max_value=4),
    )
    def build(self, pairs, num_shards):
        self.model = dict(pairs)
        self.router = ShardRouter.build(
            sorted(self.model.items()),
            family="olc",
            num_shards=num_shards,
            partitioning="range",
            max_workers=0,
        )

    def teardown(self):
        if hasattr(self, "router"):
            self.router.close()

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.router.put(key, value)
        self.model[key] = value

    @rule(pairs=st.lists(st.tuples(KEYS, VALUES), max_size=16))
    def put_many(self, pairs):
        self.router.put_many(pairs)
        self.model.update(pairs)

    @rule(key=KEYS)
    def delete(self, key):
        assert self.router.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def get(self, key):
        assert self.router.get(key) == self.model.get(key)

    @rule(keys=st.lists(KEYS, max_size=16))
    def get_many(self, keys):
        assert self.router.get_many(keys) == [self.model.get(key) for key in keys]

    @rule(start=KEYS, count=st.integers(min_value=0, max_value=32))
    def scan(self, start, count):
        expected = sorted(
            (key, value) for key, value in self.model.items() if key >= start
        )[:count]
        assert self.router.scan(start, count) == expected

    @rule(data=st.data())
    def split(self, data):
        shard_id = data.draw(
            st.integers(min_value=0, max_value=self.router.num_shards - 1)
        )
        # Shard may be too small to split.
        with contextlib.suppress(PartitionError):
            self.router.split_shard(shard_id)

    @rule(data=st.data())
    def merge(self, data):
        if self.router.num_shards < 2:
            return
        shard_id = data.draw(
            st.integers(min_value=0, max_value=self.router.num_shards - 2)
        )
        self.router.merge_shards(shard_id)

    @invariant()
    def contents_match_model(self):
        if not hasattr(self, "router"):
            return
        assert len(self.router) == len(self.model)
        assert self.router.scan(-(10**6), 10**6) == sorted(self.model.items())

    @invariant()
    def structure_verifies(self):
        if hasattr(self, "router"):
            self.router.verify()


RouterAgreesWithModel.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestRouterAgreesWithModel = RouterAgreesWithModel.TestCase
