"""Online shard split/merge: build-aside+swap, faults, concurrency."""

import contextlib
import random
import threading

import pytest

from repro.faults.injector import FaultInjector, InjectedFault
from repro.service.partition import PartitionError
from repro.service.router import ShardRouter

SPLIT_SITES = ("service.split.collect", "service.split.build", "service.split.swap")
MERGE_SITES = ("service.merge.collect", "service.merge.build", "service.merge.swap")


def int_pairs(count=1500):
    return [(key * 2, key) for key in range(count)]


def contents(router):
    return router.scan(-(10**12), 10**6)


class _RecordingLock:
    """RLock stand-in that logs every acquisition under a label."""

    def __init__(self, label, log):
        self._lock = threading.RLock()
        self._label = label
        self._log = log

    def acquire(self, *args, **kwargs):
        acquired = self._lock.acquire(*args, **kwargs)
        if acquired:
            self._log.append(self._label)
        return acquired

    def release(self):
        self._lock.release()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False


class TestSplit:
    @pytest.mark.parametrize("family", ("olc", "adaptive", "dualstage"))
    def test_split_preserves_contents(self, family):
        pairs = int_pairs()
        with ShardRouter.build(
            pairs, family=family, num_shards=2, partitioning="range"
        ) as router:
            split_key = router.split_shard(1)
            assert router.num_shards == 3
            assert router.splits == 1
            assert contents(router) == pairs
            router.verify()
            # The new boundary routes the split key to the right-hand shard.
            assert router.table.partitioner.shard_of(split_key) == 2

    def test_split_at_explicit_key(self):
        pairs = int_pairs(400)
        with ShardRouter.build(pairs, num_shards=1, partitioning="range") as router:
            router.split_shard(0, at_key=100)
            low, high = router.table.partitioner.shard_range(0)
            assert (low, high) == (None, 100)
            left, right = router.table.shards
            assert left.num_keys == 50  # keys 0, 2, ..., 98
            assert right.num_keys == len(pairs) - 50
            assert contents(router) == pairs

    def test_split_rejects_hash_partitioning(self):
        with ShardRouter.build(
            int_pairs(200), num_shards=2, partitioning="hash"
        ) as router, pytest.raises(PartitionError):
            router.split_shard(0)

    def test_split_rejects_bad_ids_and_tiny_shards(self):
        with ShardRouter.build(
            int_pairs(100), num_shards=1, partitioning="range"
        ) as router:
            with pytest.raises(PartitionError):
                router.split_shard(5)
            router.put(10**9, 1)  # shard 0 now splittable; make a 1-key shard
            router.split_shard(0, at_key=10**9)
            with pytest.raises(PartitionError):
                router.split_shard(1)  # single-key shard has no interior


class TestMerge:
    @pytest.mark.parametrize("family", ("olc", "adaptive", "dualstage"))
    def test_merge_preserves_contents(self, family):
        pairs = int_pairs()
        with ShardRouter.build(
            pairs, family=family, num_shards=4, partitioning="range"
        ) as router:
            router.merge_shards(1)
            assert router.num_shards == 3
            assert router.merges == 1
            assert contents(router) == pairs
            router.verify()

    def test_split_then_merge_round_trips(self):
        pairs = int_pairs(800)
        with ShardRouter.build(pairs, num_shards=2, partitioning="range") as router:
            before = router.table.partitioner.boundaries
            key = router.split_shard(0)
            assert router.table.partitioner.boundaries.count(key) == 1
            router.merge_shards(0)
            assert router.table.partitioner.boundaries == before
            assert contents(router) == pairs

    def test_merge_acquires_both_gates_before_any_op_lock(self):
        """Lock hierarchy regression (RA001): gates rank above op locks.

        ``merge_shards`` used to interleave ``gate, op, gate, op`` across
        the two shards, inverting the gate->op order writers rely on and
        opening a deadlock window against a writer holding the right
        shard's gate.  Both write gates must be acquired before either
        operation lock.
        """
        pairs = int_pairs(400)
        with ShardRouter.build(
            pairs, family="adaptive", num_shards=2, partitioning="range"
        ) as router:
            log = []
            left, right = router.table.shards
            for label, shard in (("left", left), ("right", right)):
                shard.write_gate = _RecordingLock(f"{label}.gate", log)
                shard.op_lock = _RecordingLock(f"{label}.op", log)
            router.merge_shards(0)
            gate_positions = [i for i, name in enumerate(log) if name.endswith(".gate")]
            op_positions = [i for i, name in enumerate(log) if name.endswith(".op")]
            assert gate_positions, "merge never took the write gates"
            assert op_positions, "merge never took the op locks"
            assert max(gate_positions) < min(op_positions)
            assert contents(router) == pairs

    def test_merge_rejects_last_shard(self):
        with ShardRouter.build(
            int_pairs(100), num_shards=2, partitioning="range"
        ) as router, pytest.raises(PartitionError):
            router.merge_shards(1)


class TestFaultInjectedSplitMerge:
    @pytest.mark.parametrize("site", SPLIT_SITES)
    def test_fault_during_split_loses_nothing(self, site):
        pairs = int_pairs(600)
        with ShardRouter.build(pairs, num_shards=2, partitioning="range") as router:
            with FaultInjector(site=site, fail_at=1) as injector:
                with pytest.raises(InjectedFault):
                    router.split_shard(0)
                assert injector.failures_injected == 1
            assert router.num_shards == 2
            assert router.splits == 0
            assert contents(router) == pairs
            router.verify()
            # The service still accepts traffic and can split afterwards.
            router.split_shard(0)
            assert contents(router) == pairs

    @pytest.mark.parametrize("site", MERGE_SITES)
    def test_fault_during_merge_loses_nothing(self, site):
        pairs = int_pairs(600)
        with ShardRouter.build(pairs, num_shards=3, partitioning="range") as router:
            with FaultInjector(site=site, fail_at=1), pytest.raises(InjectedFault):
                router.merge_shards(0)
            assert router.num_shards == 3
            assert router.merges == 0
            assert contents(router) == pairs
            router.verify()

    def test_randomized_campaign_zero_lost_keys(self):
        rng = random.Random(0xC0FFEE)
        pairs = int_pairs(500)
        expected = dict(pairs)
        with ShardRouter.build(pairs, num_shards=2, partitioning="range") as router:
            with FaultInjector(site="service.*", rate=0.4, seed=99) as injector:
                for round_number in range(30):
                    with contextlib.suppress(InjectedFault, PartitionError):
                        if rng.random() < 0.5 and router.num_shards > 1:
                            router.merge_shards(rng.randrange(router.num_shards - 1))
                        else:
                            router.split_shard(rng.randrange(router.num_shards))
                    key = rng.randrange(0, 1000) * 2
                    assert router.get(key) == expected.get(key)
            assert injector.failures_injected > 0
        assert sorted(expected.items()) == contents(router)


class TestConcurrentReadersDuringSplit:
    @pytest.mark.parametrize("family", ("olc", "adaptive"))
    def test_readers_never_miss_during_split_merge(self, family):
        pairs = int_pairs(1200)
        expected = dict(pairs)
        router = ShardRouter.build(
            pairs, family=family, num_shards=2, partitioning="range"
        )
        stop = threading.Event()
        failures = []

        def reader(seed):
            rng = random.Random(seed)
            while not stop.is_set():
                keys = [rng.randrange(0, 1200) * 2 for _ in range(64)]
                values = router.get_many(keys)
                for key, value in zip(keys, values):
                    if value != expected[key]:
                        failures.append((key, value))
                        return

        threads = [threading.Thread(target=reader, args=(seed,)) for seed in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(5):
                router.split_shard(router.num_shards // 2)
            for _ in range(5):
                router.merge_shards(0)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            router.close()
        assert not failures
        assert contents(router) == pairs

    def test_stale_writer_is_rerouted_after_split_swap(self):
        """Deterministic lost-write regression: a writer that captured a
        shard from the pre-split table must not write into it once the
        table has been swapped — the revalidation under the write gate
        has to land the pairs in the current table instead."""
        pairs = int_pairs(600)
        with ShardRouter.build(pairs, num_shards=2, partitioning="range") as router:
            stale_table = router.table
            stale_shard = stale_table.shards[1]
            key = pairs[-1][0] + 2
            assert stale_table.partitioner.shard_of(key) == 1
            router.split_shard(1)  # stale_shard is now orphaned
            assert stale_shard not in router.table.shards
            # Emulate the racing writer: it routed `key` to stale_shard
            # before the swap and only now acquires the write gate.
            router._write_group(stale_shard, [(key, 42)])
            assert router.get(key) == 42
            assert stale_shard.get(key) is None
            router.verify()

    def test_stale_batch_scattered_across_new_shards(self):
        """A stale batch whose keys the swap scattered over several new
        shards is re-fanned-out, losing nothing."""
        pairs = int_pairs(600)
        with ShardRouter.build(pairs, num_shards=1, partitioning="range") as router:
            stale_shard = router.table.shards[0]
            router.split_shard(0)
            router.split_shard(0)
            assert router.num_shards == 3
            batch = [(key + 1, key) for key, _ in pairs[::100]]
            router._write_group(stale_shard, batch)
            assert router.get_many([key for key, _ in batch]) == [
                value for _, value in batch
            ]
            assert all(stale_shard.get(key) is None for key, _ in batch)
            router.verify()

    def test_writers_blocked_during_split_land_afterwards(self):
        pairs = int_pairs(600)
        router = ShardRouter.build(pairs, num_shards=2, partitioning="range")
        done = threading.Event()
        written = []

        def writer():
            for position in range(200):
                key = 10**9 + position
                router.put(key, position)
                written.append(key)
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            while not done.is_set():
                router.split_shard(router.num_shards - 1)
                if router.num_shards > 6:
                    router.merge_shards(router.num_shards - 2)
        finally:
            thread.join()
            router.close()
        values = router.get_many(written)
        assert values == list(range(200))
        router.verify()
