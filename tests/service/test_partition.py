"""Key-space partitioners: routing, ordering, split/merge algebra."""

import pytest

from repro.service.partition import (
    HashPartitioner,
    PartitionError,
    RangePartitioner,
    stable_hash,
)


class TestStableHash:
    def test_deterministic_for_ints_and_bytes(self):
        assert stable_hash(12345) == stable_hash(12345)
        assert stable_hash(b"hello") == stable_hash(b"hello")
        assert stable_hash(b"hello") == stable_hash(bytearray(b"hello"))

    def test_spreads_sequential_ints(self):
        shards = {stable_hash(key) % 8 for key in range(64)}
        assert len(shards) == 8

    def test_known_value_is_process_independent(self):
        # A pinned value: catches any accidental switch to salted hash().
        assert stable_hash(1) == (0x9E3779B97F4A7C15 ^ (0x9E3779B97F4A7C15 >> 32))


class TestHashPartitioner:
    def test_routes_within_bounds(self):
        partitioner = HashPartitioner(5)
        assert partitioner.num_shards == 5
        for key in range(1000):
            assert 0 <= partitioner.shard_of(key) < 5

    def test_is_unordered_and_rejects_split_merge(self):
        partitioner = HashPartitioner(2)
        assert not partitioner.ordered
        with pytest.raises(PartitionError):
            partitioner.split(0, 10)
        with pytest.raises(PartitionError):
            partitioner.merge(0)

    def test_rejects_zero_shards(self):
        with pytest.raises(PartitionError):
            HashPartitioner(0)


class TestRangePartitioner:
    def test_routing_follows_boundaries(self):
        partitioner = RangePartitioner([10, 20])
        assert partitioner.num_shards == 3
        assert partitioner.shard_of(-5) == 0
        assert partitioner.shard_of(9) == 0
        assert partitioner.shard_of(10) == 1
        assert partitioner.shard_of(19) == 1
        assert partitioner.shard_of(20) == 2
        assert partitioner.shard_of(10**9) == 2

    def test_is_ordered(self):
        assert RangePartitioner([5]).ordered

    def test_shard_range_bounds(self):
        partitioner = RangePartitioner([10, 20])
        assert partitioner.shard_range(0) == (None, 10)
        assert partitioner.shard_range(1) == (10, 20)
        assert partitioner.shard_range(2) == (20, None)
        with pytest.raises(PartitionError):
            partitioner.shard_range(3)

    def test_rejects_unsorted_boundaries(self):
        with pytest.raises(PartitionError):
            RangePartitioner([20, 10])
        with pytest.raises(PartitionError):
            RangePartitioner([10, 10])

    def test_from_keys_equi_depth(self):
        keys = list(range(0, 1000, 2))
        partitioner = RangePartitioner.from_keys(keys, 4)
        assert partitioner.num_shards == 4
        counts = [0, 0, 0, 0]
        for key in keys:
            counts[partitioner.shard_of(key)] += 1
        assert max(counts) - min(counts) <= 2

    def test_from_keys_single_shard(self):
        partitioner = RangePartitioner.from_keys([1, 2, 3], 1)
        assert partitioner.num_shards == 1
        assert partitioner.shard_of(10**9) == 0

    def test_from_keys_needs_enough_distinct_keys(self):
        with pytest.raises(PartitionError):
            RangePartitioner.from_keys([1, 1, 1], 2)

    def test_split_inserts_boundary(self):
        partitioner = RangePartitioner([10])
        wider = partitioner.split(0, 5)
        assert wider.boundaries == (5, 10)
        assert wider.shard_of(4) == 0
        assert wider.shard_of(5) == 1
        assert wider.shard_of(10) == 2
        # The original is untouched (partitioners are value objects).
        assert partitioner.boundaries == (10,)

    def test_split_rejects_out_of_range_key(self):
        partitioner = RangePartitioner([10, 20])
        with pytest.raises(PartitionError):
            partitioner.split(1, 10)  # at lower bound
        with pytest.raises(PartitionError):
            partitioner.split(1, 20)  # at upper bound
        with pytest.raises(PartitionError):
            partitioner.split(0, 99)  # outside entirely

    def test_merge_removes_boundary(self):
        partitioner = RangePartitioner([10, 20])
        merged = partitioner.merge(0)
        assert merged.boundaries == (20,)
        assert merged.shard_of(15) == 0
        with pytest.raises(PartitionError):
            RangePartitioner([10]).merge(1)  # no right neighbour

    def test_split_merge_round_trip(self):
        partitioner = RangePartitioner([100])
        assert partitioner.split(1, 500).merge(1).boundaries == (100,)

    def test_bytes_keys(self):
        partitioner = RangePartitioner([b"m"])
        assert partitioner.shard_of(b"apple") == 0
        assert partitioner.shard_of(b"zebra") == 1
