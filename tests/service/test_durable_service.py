"""End-to-end durability tests for the sharded service.

Build/recover equality, checkpointing, split/merge epoch re-keying, the
aborted-swap manifest rollback, and recovery under concurrent writers.
"""

import threading

import pytest

from repro.durability import DurabilityManager
from repro.faults import FaultInjector, InjectedFault
from repro.service import ShardRouter


def make_durability(tmp_path, sync="none"):
    return DurabilityManager(tmp_path / "store", sync=sync)


def make_router(tmp_path, num_keys=200, num_shards=2, **kwargs):
    pairs = [(key, key * 10) for key in range(num_keys)]
    return ShardRouter.build(
        pairs,
        family="olc",
        num_shards=num_shards,
        partitioning="range",
        max_workers=0,
        durability=make_durability(tmp_path),
        **kwargs,
    )


def state_of(router):
    state = {}
    for shard in router.table.shards:
        state.update(shard.items())
    return state


class TestBuildAndRecover:
    def test_recover_equals_pre_crash_state(self, tmp_path):
        router = make_router(tmp_path)
        router.put_many([(key, key + 1) for key in range(300, 340)])
        router.delete(5)
        before = state_of(router)
        router.close()  # crash = close without checkpoint; WAL has the tail
        recovered = ShardRouter.recover(make_durability(tmp_path))
        recovered.verify()
        assert state_of(recovered) == before
        assert recovered.last_recovery["frames_replayed"] > 0
        assert recovered.last_recovery["epoch"] == 0
        recovered.close()

    def test_build_publishes_manifest_before_serving(self, tmp_path):
        durability = make_durability(tmp_path)
        router = ShardRouter.build(
            [(1, 1), (2, 2)],
            num_shards=1,
            max_workers=0,
            durability=durability,
        )
        manifest = durability.read_manifest()
        assert manifest.epoch == 0
        assert manifest.shards == [DurabilityManager.log_id(0, 0)]
        router.close()

    def test_durable_router_requires_logs_on_every_shard(self, tmp_path):
        plain = ShardRouter.build([(1, 1)], num_shards=1, max_workers=0)
        with pytest.raises(ValueError):
            ShardRouter(
                plain.table.shards,
                plain.table.partitioner,
                plain._index_factory,
                durability=make_durability(tmp_path),
            )
        plain.close()

    def test_checkpoint_requires_durability(self):
        router = ShardRouter.build([(1, 1)], num_shards=1, max_workers=0)
        with pytest.raises(RuntimeError):
            router.checkpoint()
        router.close()


class TestCheckpoint:
    def test_checkpoint_truncates_and_recovery_skips_replay(self, tmp_path):
        router = make_router(tmp_path)
        router.put_many([(key, 7) for key in range(500, 560)])
        router.checkpoint()
        summary = router.checkpoint()  # second one makes truncation kick in
        assert router.checkpoints == 2
        # Shards that saw writes checkpoint at a positive LSN; an
        # untouched shard legitimately checkpoints at its base LSN 0.
        assert any(entry["lsn"] > 0 for entry in summary["shards"])
        assert all(entry["lsn"] >= 0 for entry in summary["shards"])
        before = state_of(router)
        router.close()
        recovered = ShardRouter.recover(make_durability(tmp_path))
        assert state_of(recovered) == before
        assert recovered.last_recovery["frames_replayed"] == 0
        recovered.close()

    def test_writes_after_checkpoint_survive(self, tmp_path):
        router = make_router(tmp_path)
        router.checkpoint()
        router.put(999, 12345)
        router.close()
        recovered = ShardRouter.recover(make_durability(tmp_path))
        assert recovered.get(999) == 12345
        recovered.close()


class TestEpochReKeying:
    def test_split_bumps_epoch_and_recovers(self, tmp_path):
        router = make_router(tmp_path)
        router.split_shard(0)
        assert router.stats()["epoch"] == 1
        router.put_many([(key, 3) for key in range(600, 630)])
        before = state_of(router)
        num_shards = router.num_shards
        router.close()
        recovered = ShardRouter.recover(make_durability(tmp_path))
        recovered.verify()
        assert recovered.num_shards == num_shards
        assert recovered.stats()["epoch"] == 1
        assert state_of(recovered) == before
        recovered.close()

    def test_merge_bumps_epoch_and_recovers(self, tmp_path):
        router = make_router(tmp_path)
        router.merge_shards(0)
        router.put(777, 1)
        before = state_of(router)
        router.close()
        recovered = ShardRouter.recover(make_durability(tmp_path))
        recovered.verify()
        assert recovered.num_shards == 1
        assert state_of(recovered) == before
        recovered.close()

    def test_old_epoch_logs_are_destroyed_after_split(self, tmp_path):
        durability = make_durability(tmp_path)
        router = ShardRouter.build(
            [(key, key) for key in range(100)],
            num_shards=1,
            partitioning="range",
            max_workers=0,
            durability=durability,
        )
        router.split_shard(0)
        router.close()
        old_id = DurabilityManager.log_id(0, 0)
        assert not (durability.wal_dir / f"{old_id}.wal").exists()
        assert not list(durability.snap_dir.glob(f"{old_id}.*"))

    def test_aborted_split_rolls_back_manifest(self, tmp_path):
        durability = make_durability(tmp_path)
        router = ShardRouter.build(
            [(key, key) for key in range(100)],
            num_shards=1,
            partitioning="range",
            max_workers=0,
            durability=durability,
        )
        with FaultInjector(site="service.split.swap", fail_at=1):
            with pytest.raises(InjectedFault):
                router.split_shard(0)
        # Manifest, in-memory epoch, and routing all still name epoch 0.
        assert durability.read_manifest().epoch == 0
        assert router.stats()["epoch"] == 0
        assert router.num_shards == 1
        epoch1_id = DurabilityManager.log_id(1, 0)
        assert not (durability.wal_dir / f"{epoch1_id}.wal").exists()
        # The router still serves and remains durable.
        router.put(555, 5)
        before = state_of(router)
        router.close()
        recovered = ShardRouter.recover(make_durability(tmp_path))
        assert state_of(recovered) == before
        recovered.close()

    def test_aborted_manifest_publish_keeps_old_epoch_serving(self, tmp_path):
        durability = make_durability(tmp_path)
        pairs = [(key, key * 10) for key in range(100)]
        router = ShardRouter.build(
            pairs,
            family="olc",
            num_shards=2,
            partitioning="range",
            max_workers=0,
            durability=durability,
        )
        with FaultInjector(site="durability.manifest.swap", fail_at=1):
            with pytest.raises(InjectedFault):
                router.split_shard(0)
        assert router.num_shards == 2
        # The next-epoch logs built aside for the failed publish must not
        # linger on disk: no manifest reaches them, so they would leak
        # until a recovery orphan sweep (or collide with a reused id).
        for position in range(3):
            epoch1_id = DurabilityManager.log_id(1, position)
            assert not (durability.wal_dir / f"{epoch1_id}.wal").exists()
            assert not list(durability.snap_dir.glob(f"{epoch1_id}.*"))
        router.put(901, 9)
        before = state_of(router)
        router.close()
        recovered = ShardRouter.recover(make_durability(tmp_path))
        assert state_of(recovered) == before
        recovered.close()


class TestConcurrentDurability:
    def test_writers_during_split_lose_nothing_across_recovery(self, tmp_path):
        pairs = [(key, 0) for key in range(0, 2000, 2)]
        router = ShardRouter.build(
            pairs,
            family="olc",
            num_shards=2,
            partitioning="range",
            max_workers=4,
            durability=make_durability(tmp_path),
        )
        errors = []

        def writer(lo, hi):
            try:
                for key in range(lo, hi):
                    router.put(key, key + 1)
            except Exception as exc:  # pragma: no cover - failure surface
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(1, 500, )),
            threading.Thread(target=writer, args=(1001, 1500)),
        ]
        for thread in threads:
            thread.start()
        router.split_shard(router.num_shards - 1)
        router.checkpoint()
        for thread in threads:
            thread.join()
        assert not errors
        before = state_of(router)
        router.verify()
        router.close()
        recovered = ShardRouter.recover(make_durability(tmp_path))
        recovered.verify()
        after = state_of(recovered)
        recovered.close()
        assert after == before
        for key in range(1, 500):
            assert after[key] == key + 1
