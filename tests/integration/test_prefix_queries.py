"""Tests for prefix queries on ART and FST (and their agreement)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.tree import ART, terminated
from repro.fst import FST


@pytest.fixture(scope="module")
def word_pairs():
    words = [
        b"car", b"carbon", b"card", b"carpet", b"cart", b"cartoon",
        b"cat", b"catalog", b"dog", b"dogma", b"dot",
    ]
    keys = sorted(terminated(word) for word in words)
    return [(key, index) for index, key in enumerate(keys)]


@pytest.fixture(scope="module")
def structures(word_pairs):
    return {
        "art": ART.from_sorted(word_pairs),
        "fst-auto": FST(word_pairs),
        "fst-sparse": FST(word_pairs, dense_levels=0),
        "fst-dense": FST(word_pairs, dense_levels=64),
    }


def reference_prefix(word_pairs, prefix):
    return [(key, value) for key, value in word_pairs if key.startswith(prefix)]


class TestPrefixItems:
    @pytest.mark.parametrize(
        "prefix",
        [b"car", b"cart", b"cat", b"d", b"", b"zebra", b"carpets"],
        ids=lambda p: p.decode() or "(empty)",
    )
    def test_all_structures_agree_with_reference(self, word_pairs, structures, prefix):
        expected = reference_prefix(word_pairs, prefix)
        for name, structure in structures.items():
            assert list(structure.prefix_items(prefix)) == expected, name

    def test_exact_key_as_prefix(self, word_pairs, structures):
        exact = terminated(b"cat")
        for name, structure in structures.items():
            result = list(structure.prefix_items(exact))
            assert len(result) == 1, name
            assert result[0][0] == exact

    def test_results_in_key_order(self, word_pairs, structures):
        for structure in structures.values():
            keys = [key for key, _ in structure.prefix_items(b"c")]
            assert keys == sorted(keys)

    def test_empty_structure(self):
        assert list(FST([]).prefix_items(b"x")) == []
        assert list(ART().prefix_items(b"x")) == []


class TestEmailStyleUsage:
    def test_all_addresses_under_one_host(self):
        from repro.workloads.datasets import email_keys

        emails = [terminated(email) for email in email_keys(400, rng=0)]
        pairs = [(email, index) for index, email in enumerate(emails)]
        fst = FST(pairs)
        host = emails[0].split(b"@")[0] + b"@"
        expected = [(key, value) for key, value in pairs if key.startswith(host)]
        assert list(fst.prefix_items(host)) == expected
        assert expected  # the host really has addresses


@settings(max_examples=20, deadline=None)
@given(
    # The 0x00 terminator convention requires null-free raw keys.
    st.lists(
        st.lists(st.integers(min_value=1, max_value=255), min_size=1, max_size=6).map(bytes),
        unique=True,
        min_size=1,
        max_size=50,
    ),
    st.binary(max_size=4),
)
def test_prefix_property(raw_keys, prefix):
    keys = sorted({terminated(key) for key in raw_keys})
    pairs = [(key, index) for index, key in enumerate(keys)]
    art = ART.from_sorted(pairs)
    fst = FST(pairs)
    expected = [(key, value) for key, value in pairs if key.startswith(prefix)]
    assert list(art.prefix_items(prefix)) == expected
    assert list(fst.prefix_items(prefix)) == expected


class TestSuccessorAndRangeMembership:
    @pytest.fixture(scope="class")
    def indexed(self):
        import random

        rng = random.Random(9)
        keys = sorted(
            key.to_bytes(8, "big") for key in rng.sample(range(2**40), 800)
        )
        pairs = [(key, index) for index, key in enumerate(keys)]
        return pairs, ART.from_sorted(pairs), FST(pairs)

    def test_successor_exact_hit(self, indexed):
        pairs, art, fst = indexed
        for key, value in pairs[::97]:
            assert art.successor(key) == (key, value)
            assert fst.successor(key) == (key, value)

    def test_successor_between_keys(self, indexed):
        pairs, art, fst = indexed
        import bisect

        keys = [key for key, _ in pairs]
        probe = (int.from_bytes(pairs[100][0], "big") + 1).to_bytes(8, "big")
        position = bisect.bisect_left(keys, probe)
        expected = pairs[position]
        assert art.successor(probe) == expected
        assert fst.successor(probe) == expected

    def test_successor_past_end(self, indexed):
        _, art, fst = indexed
        assert art.successor(b"\xff" * 8) is None
        assert fst.successor(b"\xff" * 8) is None

    def test_range_contains(self, indexed):
        pairs, art, fst = indexed
        low, high = pairs[10][0], pairs[12][0]
        for index in (art, fst):
            assert index.range_contains(low, high)
            assert index.range_contains(low, low)  # inclusive bounds
            assert not index.range_contains(high, low)  # inverted

    def test_empty_gap_reports_false(self, indexed):
        pairs, art, fst = indexed
        # A gap strictly between two adjacent keys holds nothing.
        a = int.from_bytes(pairs[20][0], "big")
        b = int.from_bytes(pairs[21][0], "big")
        if b - a > 2:
            low = (a + 1).to_bytes(8, "big")
            high = (b - 1).to_bytes(8, "big")
            assert not art.range_contains(low, high)
            assert not fst.range_contains(low, high)
