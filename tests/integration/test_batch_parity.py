"""Batched operations must equal per-key loops on every index family.

Every ``*_many`` entry point promises the same return values as the
equivalent per-key loop and the same final index contents.  Each test
builds twin indexes from the same seed data, drives one through the
batched API and the other through per-key calls, and compares both the
returned values and the resulting contents; the families with a
self-verifier additionally prove their invariants afterwards.
"""

import random

import pytest

from repro.art.tree import ART, terminated
from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.dualstage.index import DualStageIndex, StaticEncoding
from repro.fst.trie import FST
from repro.hybridtrie.tree import HybridTrie


def int_workload(seed, universe=50_000, loaded=4000, probes=3000):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(universe), loaded))
    pairs = [(key, key * 3 + 1) for key in keys]
    probe_keys = [rng.randrange(universe) for _ in range(probes)]
    return pairs, probe_keys


def byte_workload(seed, loaded=1500, probes=1500):
    rng = random.Random(seed)
    words = {
        bytes(rng.randrange(97, 123) for _ in range(rng.randrange(3, 12)))
        for _ in range(loaded)
    }
    keys = sorted(terminated(word) for word in words)
    pairs = [(key, index * 7 + 1) for index, key in enumerate(keys)]
    probe_keys = [
        rng.choice(keys)
        if rng.random() < 0.6
        else terminated(bytes(rng.randrange(97, 123) for _ in range(5)))
        for _ in range(probes)
    ]
    return pairs, probe_keys


class TestBPlusTreeParity:
    @pytest.mark.parametrize(
        "encoding", [LeafEncoding.GAPPED, LeafEncoding.PACKED, LeafEncoding.SUCCINCT]
    )
    def test_lookup_many_sorted_and_unsorted(self, encoding):
        pairs, probe_keys = int_workload(1)
        tree = BPlusTree.bulk_load(pairs, encoding)
        for keys in (sorted(probe_keys), probe_keys):
            assert tree.lookup_many(keys) == [tree.lookup(key) for key in keys]

    def test_insert_many_matches_loop(self):
        pairs, _ = int_workload(2)
        rng = random.Random(22)
        inserts = [(rng.randrange(60_000), rng.randrange(1000)) for _ in range(2000)]
        batched = BPlusTree.bulk_load(pairs, LeafEncoding.GAPPED)
        looped = BPlusTree.bulk_load(pairs, LeafEncoding.GAPPED)
        for chunk_keys in (sorted(inserts), inserts):  # sorted + fallback paths
            assert batched.insert_many(chunk_keys) == [
                looped.insert(key, value) for key, value in chunk_keys
            ]
        assert list(batched.items()) == list(looped.items())
        batched.verify()

    def test_scan_many_matches_loop(self):
        pairs, probe_keys = int_workload(3)
        tree = BPlusTree.bulk_load(pairs, LeafEncoding.PACKED)
        requests = [(start, 1 + start % 40) for start in sorted(probe_keys[:300])]
        assert tree.scan_many(requests) == [
            tree.scan(start, count) for start, count in requests
        ]

    def test_duplicate_keys_in_one_batch(self):
        tree = BPlusTree(LeafEncoding.GAPPED)
        results = tree.insert_many([(5, 1), (5, 2), (7, 3), (7, 4)])
        assert results == [True, False, True, False]
        assert tree.lookup_many([5, 7]) == [2, 4]


class TestAdaptiveBPlusTreeParity:
    def test_mixed_batches_match_loop_and_verify(self):
        pairs, probe_keys = int_workload(4)
        batched = AdaptiveBPlusTree.bulk_load_adaptive(pairs)
        looped = AdaptiveBPlusTree.bulk_load_adaptive(pairs)
        rng = random.Random(44)
        inserts = sorted(
            (rng.randrange(60_000), rng.randrange(1000)) for _ in range(1500)
        )
        sorted_probes = sorted(probe_keys)
        assert batched.lookup_many(sorted_probes) == [
            looped.lookup(key) for key in sorted_probes
        ]
        assert batched.insert_many(inserts) == [
            looped.insert(key, value) for key, value in inserts
        ]
        requests = [(start, 1 + start % 25) for start in sorted_probes[:200]]
        assert batched.scan_many(requests) == [
            looped.scan(start, count) for start, count in requests
        ]
        assert list(batched.items()) == list(looped.items())
        batched.verify()
        looped.verify()

    def test_sampling_state_identical_to_per_key(self):
        pairs, probe_keys = int_workload(5)
        batched = AdaptiveBPlusTree.bulk_load_adaptive(pairs)
        looped = AdaptiveBPlusTree.bulk_load_adaptive(pairs)
        sorted_probes = sorted(probe_keys)
        batched.lookup_many(sorted_probes)
        for key in sorted_probes:
            looped.lookup(key)
        assert batched.manager.counters.accesses == looped.manager.counters.accesses
        assert batched.manager.counters.sampled == looped.manager.counters.sampled


class TestARTParity:
    def test_lookup_many_sorted_and_unsorted(self):
        pairs, probe_keys = byte_workload(6)
        tree = ART.from_sorted(pairs)
        for keys in (sorted(probe_keys), probe_keys):
            assert tree.lookup_many(keys) == [tree.lookup(key) for key in keys]

    def test_insert_many_then_items_match(self):
        pairs, _ = byte_workload(7)
        batched = ART()
        looped = ART()
        assert batched.insert_many(pairs) == [
            looped.insert(key, value) for key, value in pairs
        ]
        assert list(batched.items()) == list(looped.items())

    def test_scan_many_matches_loop(self):
        pairs, probe_keys = byte_workload(8)
        tree = ART.from_sorted(pairs)
        requests = [(start, 5) for start in sorted(probe_keys[:100])]
        assert tree.scan_many(requests) == [
            tree.scan(start, count) for start, count in requests
        ]

    def test_lookup_many_empty_tree_and_batch(self):
        tree = ART()
        assert tree.lookup_many([]) == []
        assert tree.lookup_many([b"a\x00", b"b\x00"]) == [None, None]


class TestFSTParity:
    def test_lookup_many_sorted_and_unsorted(self):
        pairs, probe_keys = byte_workload(9)
        fst = FST(pairs)
        for keys in (sorted(probe_keys), probe_keys):
            assert fst.lookup_many(keys) == [fst.lookup(key) for key in keys]

    def test_scan_many_matches_loop(self):
        pairs, probe_keys = byte_workload(10)
        fst = FST(pairs)
        requests = [(start, 4) for start in sorted(probe_keys[:80])]
        assert fst.scan_many(requests) == [
            fst.scan(start, count) for start, count in requests
        ]


class TestHybridTrieParity:
    def test_lookup_many_matches_loop_and_verify(self):
        pairs, probe_keys = byte_workload(11)
        batched = HybridTrie(pairs)
        looped = HybridTrie(pairs)
        sorted_probes = sorted(probe_keys)
        assert batched.lookup_many(sorted_probes) == [
            looped.lookup(key) for key in sorted_probes
        ]
        # Unsorted falls back to the per-key path on the same instance.
        assert batched.lookup_many(probe_keys) == [
            batched.lookup(key) for key in probe_keys
        ]
        assert batched.items() == looped.items()
        batched.verify()
        looped.verify()

    def test_scan_many_matches_loop(self):
        pairs, probe_keys = byte_workload(12)
        trie = HybridTrie(pairs, adaptive=False)
        requests = [(start, 6) for start in sorted(probe_keys[:80])] + [(b"", 0)]
        assert trie.scan_many(requests) == [
            trie.scan(start, count) for start, count in requests
        ]

    def test_non_adaptive_lookup_many(self):
        pairs, probe_keys = byte_workload(13)
        trie = HybridTrie(pairs, adaptive=False)
        sorted_probes = sorted(probe_keys)
        assert trie.lookup_many(sorted_probes) == [
            trie.lookup(key) for key in sorted_probes
        ]
        trie.verify()


class TestDualStageParity:
    @pytest.mark.parametrize(
        "encoding", [StaticEncoding.PACKED, StaticEncoding.SUCCINCT]
    )
    def test_mixed_batches_match_loop_and_verify(self, encoding):
        pairs, probe_keys = int_workload(14, loaded=3000, probes=2000)
        batched = DualStageIndex.bulk_load(pairs, encoding)
        looped = DualStageIndex.bulk_load(pairs, encoding)
        rng = random.Random(140)
        inserts = sorted(
            (rng.randrange(60_000), rng.randrange(1000)) for _ in range(400)
        )
        deletions = [key for key, _ in pairs[::37]]
        batched.insert_many(inserts)
        for key, value in inserts:
            looped.insert(key, value)
        for key in deletions:
            assert batched.delete(key) == looped.delete(key)
        sorted_probes = sorted(probe_keys)
        assert batched.lookup_many(sorted_probes) == [
            looped.lookup(key) for key in sorted_probes
        ]
        requests = [(start, 1 + start % 20) for start in sorted_probes[:150]]
        assert batched.scan_many(requests) == [
            looped.scan(start, count) for start, count in requests
        ]
        batched.verify()
        looped.verify()

    def test_lookup_many_hits_tombstones_and_static(self):
        pairs, _ = int_workload(15, loaded=1000, probes=0)
        index = DualStageIndex.bulk_load(pairs, StaticEncoding.SUCCINCT)
        present = [key for key, _ in pairs[:50]]
        index.insert_many([(key, 999) for key in present[:10]])
        for key in present[10:20]:
            index.delete(key)
        probe = present[:25] + [10**9 + offset for offset in range(5)]
        assert index.lookup_many(probe) == [index.lookup(key) for key in probe]
