"""Cross-module integration tests: full adaptation loops at small scale."""

import numpy as np

from repro.bptree.hybrid import BTREE_ENCODING_ORDER, AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.core.budget import MemoryBudget
from repro.core.manager import ManagerConfig
from repro.harness.runner import IntKeyIndexAdapter, run_operations
from repro.hybridtrie.tree import TRIE_ENCODING_ORDER, HybridTrie
from repro.workloads.datasets import osm_like_keys
from repro.workloads.spec import w5_sequence, w11
from repro.workloads.stream import generate_phase


def btree_config(budget=None):
    return ManagerConfig(
        encoding_order=BTREE_ENCODING_ORDER,
        budget=budget or MemoryBudget.unbounded(),
        initial_skip_length=2,
        skip_min=2,
        skip_max=20,
        max_sample_size=400,
        epsilon=0.2,
        delta=0.2,
    )


class TestAdaptiveBTreeUnderRealWorkload:
    def test_w11_drives_adaptation_and_stays_correct(self):
        keys = osm_like_keys(8000, rng=0)
        pairs = [(int(key), index) for index, key in enumerate(keys)]
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs, leaf_capacity=32, manager_config=btree_config()
        )
        operations = generate_phase(keys, w11(num_ops=20_000).phases[0], rng=1)
        adapter = IntKeyIndexAdapter(tree)
        result = run_operations(adapter, operations, interval_ops=5000)
        assert tree.manager.counters.adaptation_phases >= 1
        assert tree.manager.counters.expansions >= 1
        tree.check_invariants()
        # Latency improves as hot leaves expand.
        series = result.series("modeled_ns_per_op")
        assert series[-1] < series[0]
        # Size stays well below the all-gapped tree.
        gapped = BPlusTree.bulk_load(pairs, LeafEncoding.GAPPED, leaf_capacity=32)
        assert tree.size_bytes() < 0.9 * gapped.size_bytes()

    def test_write_then_scan_phases_trigger_both_directions(self):
        keys = osm_like_keys(6000, rng=1)
        pairs = [(int(key), index) for index, key in enumerate(keys)]
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs, leaf_capacity=32, manager_config=btree_config()
        )
        adapter = IntKeyIndexAdapter(tree)
        for phase_index, phase in enumerate(w5_sequence(num_ops=15_000).phases):
            operations = generate_phase(keys, phase, rng=2 + phase_index)
            run_operations(adapter, operations, interval_ops=5000)
        assert tree.counters.get("eager_expansion:succinct") > 0
        assert tree.manager.counters.compactions >= 1
        tree.check_invariants()

    def test_tight_budget_compacts_everything_compactable(self):
        # Inserts grow the dataset, so a tight absolute budget can end up
        # below even the all-Succinct floor; the correct behaviour is that
        # the tree converges to fully compact (no leaf left expanded).
        keys = osm_like_keys(6000, rng=2)
        pairs = [(int(key), index) for index, key in enumerate(keys)]
        base_size = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs, leaf_capacity=32
        ).size_bytes()
        budget = MemoryBudget.absolute(int(base_size * 1.3))
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs, leaf_capacity=32, manager_config=btree_config(budget)
        )
        operations = generate_phase(keys, w11(num_ops=20_000).phases[0], rng=3)
        adapter = IntKeyIndexAdapter(tree)
        run_operations(adapter, operations, interval_ops=5000)
        counts = tree.encoding_counts()
        assert counts.get(LeafEncoding.GAPPED, 0) == 0
        assert counts.get(LeafEncoding.PACKED, 0) == 0
        assert tree.manager.counters.compactions >= 1
        tree.check_invariants()

    def test_generous_budget_stays_within_limit(self):
        keys = osm_like_keys(6000, rng=2)
        pairs = [(int(key), index) for index, key in enumerate(keys)]
        gapped_size = BPlusTree.bulk_load(
            pairs, LeafEncoding.GAPPED, leaf_capacity=32
        ).size_bytes()
        budget = MemoryBudget.absolute(int(gapped_size * 0.8))
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs, leaf_capacity=32, manager_config=btree_config(budget)
        )
        operations = generate_phase(keys, w11(num_ops=20_000).phases[0], rng=3)
        adapter = IntKeyIndexAdapter(tree)
        run_operations(adapter, operations, interval_ops=5000)
        assert tree.size_bytes() <= budget.absolute_bytes * 1.1
        tree.check_invariants()


class TestTrieAdaptationLoop:
    def test_two_phase_shift_expands_then_compacts(self):
        rng = np.random.default_rng(0)
        import random

        random.seed(0)
        ints = sorted(random.sample(range(2**40), 4000))
        pairs = [(key.to_bytes(8, "big"), index) for index, key in enumerate(ints)]
        config = ManagerConfig(
            encoding_order=TRIE_ENCODING_ORDER,
            initial_skip_length=1,
            skip_min=1,
            skip_max=10,
            max_sample_size=300,
            epsilon=0.2,
            delta=0.2,
        )
        trie = HybridTrie(pairs, art_levels=2, manager_config=config)
        first_hot = [pairs[index][0] for index in range(60)]
        second_hot = [pairs[-index - 1][0] for index in range(60)]
        for _ in range(4000):
            trie.lookup(first_hot[rng.integers(0, 60)])
        expanded_mid = trie.expanded_branch_count()
        assert expanded_mid >= 1
        for _ in range(8000):
            trie.lookup(second_hot[rng.integers(0, 60)])
        assert trie.manager.events.total_compactions >= 1
        # Correctness after the full churn.
        for key, value in pairs[::97]:
            assert trie.lookup(key) == value


class TestManagerEventConsistency:
    def test_event_totals_match_counters(self):
        keys = osm_like_keys(5000, rng=3)
        pairs = [(int(key), index) for index, key in enumerate(keys)]
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs, leaf_capacity=32, manager_config=btree_config()
        )
        operations = generate_phase(keys, w11(num_ops=15_000).phases[0], rng=4)
        adapter = IntKeyIndexAdapter(tree)
        run_operations(adapter, operations, interval_ops=5000)
        events = tree.manager.events
        assert events.total_expansions == tree.manager.counters.expansions
        assert events.total_compactions == tree.manager.counters.compactions
        assert len(events) == tree.manager.counters.adaptation_phases
        # Epochs advance once per adaptation phase.
        assert tree.manager.epoch == len(events) + 1


class TestRelativeBudget:
    def test_bits_per_key_budget_tracks_data_growth(self):
        """Relative budgets (Section 3.1.6) scale with inserts: the byte
        limit grows as keys arrive, so insert-heavy workloads are not
        starved the way absolute budgets starve them."""
        keys = osm_like_keys(5000, rng=5)
        pairs = [(int(key), index) for index, key in enumerate(keys)]
        probe = AdaptiveBPlusTree.bulk_load_adaptive(pairs, leaf_capacity=32)
        bits_per_key = probe.size_bytes() * 8 / len(probe) * 1.5
        budget = MemoryBudget.relative(bits_per_key=bits_per_key)
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs, leaf_capacity=32, manager_config=btree_config(budget)
        )
        operations = generate_phase(
            keys, w5_sequence(num_ops=15_000).phases[0], rng=6
        )
        adapter = IntKeyIndexAdapter(tree)
        run_operations(adapter, operations, interval_ops=5000)
        limit = budget.limit_bytes(tree.num_keys)
        assert tree.size_bytes() <= limit * 1.15
        assert tree.num_keys > len(pairs)  # inserts really landed
        tree.check_invariants()
