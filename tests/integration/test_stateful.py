"""Hypothesis stateful machines: model-based testing of the indexes.

Each machine drives an index through arbitrary interleavings of
operations while comparing against a plain dict model and re-checking
structural invariants — the strongest correctness net in the suite.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.bptree.hybrid import BTREE_ENCODING_ORDER, AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.core.manager import ManagerConfig
from repro.hashmap.cuckoo import CuckooMap
from repro.hashmap.hopscotch import HopscotchMap

KEYS = st.integers(min_value=0, max_value=400)
VALUES = st.integers(min_value=-(2**40), max_value=2**40)


class AdaptiveBTreeMachine(RuleBasedStateMachine):
    """The adaptive tree must match a dict under any op interleaving,
    including forced adaptation phases and encoding migrations."""

    def __init__(self):
        super().__init__()
        config = ManagerConfig(
            encoding_order=BTREE_ENCODING_ORDER,
            initial_skip_length=0,
            skip_min=0,
            skip_max=4,
            initial_sample_size=40,
            max_sample_size=40,
            use_bloom_filter=False,
        )
        self.tree = AdaptiveBPlusTree(leaf_capacity=8, manager_config=config)
        self.model = {}

    @rule(key=KEYS, value=VALUES)
    def insert(self, key, value):
        self.tree.insert(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        assert self.tree.delete(key) == (key in self.model)
        self.model.pop(key, None)

    @rule(key=KEYS)
    def lookup(self, key):
        assert self.tree.lookup(key) == self.model.get(key)

    @rule(key=KEYS, count=st.integers(min_value=1, max_value=20))
    def scan(self, key, count):
        expected = sorted(
            (k, v) for k, v in self.model.items() if k >= key
        )[:count]
        assert self.tree.scan(key, count) == expected

    @rule()
    def force_adaptation(self):
        self.tree.manager.run_adaptation()

    @rule(key=KEYS)
    def migrate_a_leaf(self, key):
        leaf, _ = self.tree.find_leaf(key)
        if leaf.num_entries() > 0:
            target = (
                LeafEncoding.GAPPED
                if leaf.encoding is not LeafEncoding.GAPPED
                else LeafEncoding.SUCCINCT
            )
            self.tree.migrate(leaf, target, None)

    @invariant()
    def sizes_consistent(self):
        assert len(self.tree) == len(self.model)

    def teardown(self):
        self.tree.check_invariants()
        assert list(self.tree.items()) == sorted(self.model.items())


class HopscotchMachine(RuleBasedStateMachine):
    """The hopscotch map must match a dict and keep its hop invariant."""

    def __init__(self):
        super().__init__()
        self.table = HopscotchMap(initial_capacity=64)
        self.model = {}

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.table[key] = value
        self.model[key] = value

    @rule(key=KEYS)
    def remove(self, key):
        if key in self.model:
            del self.table[key]
            del self.model[key]

    @rule(key=KEYS)
    def get(self, key):
        assert self.table.get(key) == self.model.get(key)

    @invariant()
    def size_matches(self):
        assert len(self.table) == len(self.model)

    def teardown(self):
        self.table.check_invariants()
        assert dict(self.table.items()) == self.model


class CuckooMachine(RuleBasedStateMachine):
    """The cuckoo map must match a dict and keep its two-choice invariant."""

    def __init__(self):
        super().__init__()
        self.table = CuckooMap(initial_buckets=8)
        self.model = {}

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.table[key] = value
        self.model[key] = value

    @rule(key=KEYS)
    def remove(self, key):
        if key in self.model:
            del self.table[key]
            del self.model[key]

    @rule(key=KEYS)
    def get(self, key):
        assert self.table.get(key) == self.model.get(key)

    @rule()
    def clear(self):
        self.table.clear()
        self.model.clear()

    def teardown(self):
        self.table.check_invariants()
        assert dict(self.table.items()) == self.model


TestAdaptiveBTreeMachine = AdaptiveBTreeMachine.TestCase
TestAdaptiveBTreeMachine.settings = settings(
    max_examples=20, stateful_step_count=60, deadline=None
)
TestHopscotchMachine = HopscotchMachine.TestCase
TestHopscotchMachine.settings = settings(
    max_examples=25, stateful_step_count=80, deadline=None
)
TestCuckooMachine = CuckooMachine.TestCase
TestCuckooMachine.settings = settings(
    max_examples=25, stateful_step_count=80, deadline=None
)


class HybridTrieMachine(RuleBasedStateMachine):
    """Lookups, scans, and branch migrations in any order must never
    change the trie's answers (it is a static key set)."""

    def __init__(self):
        super().__init__()
        from repro.hybridtrie.tree import HybridTrie

        keys = sorted({(key * 2654435761) % (2**40) for key in range(600)})
        self.pairs = [
            (key.to_bytes(8, "big"), index) for index, key in enumerate(keys)
        ]
        self.reference = dict(self.pairs)
        self.trie = HybridTrie(self.pairs, art_levels=1, adaptive=False)

    @rule(rank=st.integers(min_value=0, max_value=599))
    def lookup_existing(self, rank):
        key, value = self.pairs[rank % len(self.pairs)]
        assert self.trie.lookup(key) == value

    @rule(raw=st.integers(min_value=0, max_value=2**40))
    def lookup_random(self, raw):
        key = raw.to_bytes(8, "big")
        assert self.trie.lookup(key) == self.reference.get(key)

    @rule(rank=st.integers(min_value=0, max_value=599))
    def expand(self, rank):
        key = self.pairs[rank % len(self.pairs)][0]
        branch = self.trie._branch_on_path(key)
        if branch is not None:
            self.trie.expand_branch(branch)

    @rule(rank=st.integers(min_value=0, max_value=599))
    def compact(self, rank):
        key = self.pairs[rank % len(self.pairs)][0]
        # Walk to the shallowest expanded branch on the path and compact it.
        current = self.trie._root
        depth = 0
        from repro.hybridtrie.tagged import TrieBranch

        while current is not None:
            if isinstance(current, TrieBranch):
                if current.expanded:
                    self.trie.compact_branch(current)
                return
            if depth >= len(key):
                return
            current = current.find_child(key[depth])
            depth += 1

    @rule(rank=st.integers(min_value=0, max_value=599),
          count=st.integers(min_value=1, max_value=15))
    def scan(self, rank, count):
        start = self.pairs[rank % len(self.pairs)][0]
        expected = [
            (key, value) for key, value in self.pairs if key >= start
        ][:count]
        assert self.trie.scan(start, count) == expected

    def teardown(self):
        assert self.trie.items() == self.pairs


TestHybridTrieMachine = HybridTrieMachine.TestCase
TestHybridTrieMachine.settings = settings(
    max_examples=10, stateful_step_count=50, deadline=None
)
