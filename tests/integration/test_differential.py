"""Differential tests: every index agrees with every other index.

The same key/value set is loaded into all seven structures; lookups,
misses, ordered iteration, and range scans must agree everywhere —
including after the adaptive structures have migrated encodings.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.art.tree import ART, terminated
from repro.bptree.hybrid import AdaptiveBPlusTree
from repro.bptree.leaves import LeafEncoding
from repro.bptree.tree import BPlusTree
from repro.dualstage.index import DualStageIndex, StaticEncoding
from repro.fst.trie import FST
from repro.hybridtrie.tree import HybridTrie


def int_dataset(n=2000, seed=0):
    rng = random.Random(seed)
    keys = sorted(rng.sample(range(2**44), n))
    return [(key, key ^ 0xBEEF) for key in keys]


class TestIntKeyIndexesAgree:
    @pytest.fixture(scope="class")
    def dataset(self):
        return int_dataset()

    @pytest.fixture(scope="class")
    def indexes(self, dataset):
        return {
            "gapped": BPlusTree.bulk_load(dataset, LeafEncoding.GAPPED),
            "packed": BPlusTree.bulk_load(dataset, LeafEncoding.PACKED),
            "succinct": BPlusTree.bulk_load(dataset, LeafEncoding.SUCCINCT),
            "adaptive": AdaptiveBPlusTree.bulk_load_adaptive(dataset),
            "dualstage": DualStageIndex.bulk_load(dataset, StaticEncoding.SUCCINCT),
        }

    def test_lookups_agree(self, dataset, indexes):
        rng = random.Random(1)
        probes = [key for key, _ in rng.sample(dataset, 300)]
        probes += [rng.randrange(2**44) for _ in range(300)]
        reference = dict(dataset)
        for key in probes:
            expected = reference.get(key)
            for name, index in indexes.items():
                assert index.lookup(key) == expected, (name, key)

    def test_scans_agree(self, dataset, indexes):
        rng = random.Random(2)
        reference = sorted(dataset)
        for _ in range(50):
            start = rng.randrange(2**44)
            count = rng.randrange(1, 40)
            import bisect

            position = bisect.bisect_left([key for key, _ in reference], start)
            expected = reference[position : position + count]
            for name, index in indexes.items():
                assert index.scan(start, count) == expected, (name, start)


class TestByteKeyIndexesAgree:
    @pytest.fixture(scope="class")
    def byte_dataset(self):
        data = int_dataset(1500, seed=3)
        return [(key.to_bytes(8, "big"), value) for key, value in data]

    @pytest.fixture(scope="class")
    def tries(self, byte_dataset):
        hybrid = HybridTrie(byte_dataset, art_levels=2, adaptive=False)
        # Pre-expand a handful of branches so the hybrid is genuinely mixed.
        for key, _ in byte_dataset[::100]:
            branch = hybrid._branch_on_path(key)
            if branch is not None:
                hybrid.expand_branch(branch)
        return {
            "art": ART.from_sorted(byte_dataset),
            "fst": FST(byte_dataset),
            "fst-sparse": FST(byte_dataset, dense_levels=0),
            "fst-dense": FST(byte_dataset, dense_levels=64),
            "hybrid": hybrid,
        }

    def test_lookups_agree(self, byte_dataset, tries):
        rng = random.Random(4)
        reference = dict(byte_dataset)
        probes = [key for key, _ in rng.sample(byte_dataset, 300)]
        probes += [rng.randrange(2**44).to_bytes(8, "big") for _ in range(300)]
        for key in probes:
            expected = reference.get(key)
            for name, trie in tries.items():
                assert trie.lookup(key) == expected, (name, key)

    def test_iteration_agrees(self, byte_dataset, tries):
        expected = sorted(byte_dataset)
        assert list(tries["art"].items()) == expected
        assert list(tries["fst"].items()) == expected
        assert tries["hybrid"].items() == expected

    def test_scans_agree(self, byte_dataset, tries):
        rng = random.Random(5)
        reference = sorted(byte_dataset)
        keys_only = [key for key, _ in reference]
        import bisect

        for _ in range(30):
            start = rng.randrange(2**44).to_bytes(8, "big")
            count = rng.randrange(1, 25)
            position = bisect.bisect_left(keys_only, start)
            expected = reference[position : position + count]
            assert tries["art"].scan(start, count) == expected
            assert tries["fst"].scan(start, count) == expected
            assert tries["hybrid"].scan(start, count) == expected


@settings(max_examples=15, deadline=None)
@given(
    # The 0x00 terminator convention requires null-free raw keys.
    st.lists(
        st.lists(st.integers(min_value=1, max_value=255), min_size=1, max_size=6).map(bytes),
        unique=True,
        min_size=1,
        max_size=60,
    )
)
def test_art_fst_hybrid_property(raw_keys):
    keys = sorted({terminated(key) for key in raw_keys})
    pairs = [(key, index) for index, key in enumerate(keys)]
    art = ART.from_sorted(pairs)
    fst = FST(pairs)
    hybrid = HybridTrie(pairs, art_levels=1, adaptive=False)
    for key, value in pairs:
        assert art.lookup(key) == fst.lookup(key) == hybrid.lookup(key) == value
    assert list(art.items()) == list(fst.items()) == hybrid.items()
