"""Smoke tests: every example script imports cleanly and the fast ones run.

The heavier examples (OSM timeline, e-mail tries) are exercised by the
benchmarks; here we check that every script is importable with a ``main``
entry point and actually execute the quick ones end to end.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))
FAST_EXAMPLES = ["fst_persistence"]


def load_module(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExampleStructure:
    def test_expected_examples_present(self):
        assert "quickstart" in ALL_EXAMPLES
        assert len(ALL_EXAMPLES) >= 5

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_importable_with_main(self, name):
        module = load_module(name)
        assert callable(getattr(module, "main", None)), f"{name} lacks main()"

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_has_module_docstring(self, name):
        module = load_module(name)
        assert module.__doc__ and len(module.__doc__) > 50


class TestFastExamplesRun:
    @pytest.mark.parametrize("name", FAST_EXAMPLES)
    def test_runs_to_completion(self, name):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / f"{name}.py")],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "done" in completed.stdout.lower()
