#!/usr/bin/env python
"""Memory budgets: dialing the space/performance trade-off (Figure 15).

The same adaptive tree is run under a sweep of absolute memory budgets.
With a small budget only the very hottest leaves can expand; with more
headroom the adaptation manager expands deeper into the access
distribution.  Because the hottest leaves are optimized first, the first
megabytes buy the most latency (the paper's diminishing-returns curve).

Run:  python examples/memory_budget.py
"""

import numpy as np

from repro import AdaptiveBPlusTree, BPlusTree, LeafEncoding, MemoryBudget
from repro.harness.experiments import scaled_manager_config
from repro.harness.report import format_table, human_bytes
from repro.harness.runner import IntKeyIndexAdapter, run_operations
from repro.workloads.spec import w11
from repro.workloads.stream import generate_phase

NUM_KEYS = 30_000
NUM_OPS = 60_000
BUDGET_FRACTIONS = (0.30, 0.45, 0.60, 0.80, 1.00)


def main() -> None:
    keys = np.arange(NUM_KEYS, dtype=np.int64)  # consecutive keys, as in the paper
    pairs = [(int(key), int(key) * 2) for key in keys]
    gapped_size = BPlusTree.bulk_load(pairs, LeafEncoding.GAPPED, leaf_capacity=64).size_bytes()
    succinct_size = BPlusTree.bulk_load(pairs, LeafEncoding.SUCCINCT, leaf_capacity=64).size_bytes()
    print(f"bounds: all-succinct {human_bytes(succinct_size)} ... "
          f"all-gapped {human_bytes(gapped_size)}\n")

    operations = generate_phase(keys, w11(num_ops=NUM_OPS).phases[0], rng=1)
    rows = []
    for fraction in BUDGET_FRACTIONS:
        budget_bytes = int(gapped_size * fraction)
        tree = AdaptiveBPlusTree.bulk_load_adaptive(
            pairs,
            leaf_capacity=64,
            manager_config=scaled_manager_config(MemoryBudget.absolute(budget_bytes)),
        )
        result = run_operations(IntKeyIndexAdapter(tree), operations, interval_ops=20_000)
        counts = tree.encoding_counts()
        expanded = sum(
            count for encoding, count in counts.items()
            if encoding is not LeafEncoding.SUCCINCT
        )
        rows.append(
            (
                f"{fraction:.0%} of gapped",
                human_bytes(budget_bytes),
                round(result.modeled_ns_per_op, 1),
                human_bytes(result.final_index_bytes),
                f"{expanded}/{tree.num_leaves}",
            )
        )
    print(format_table(
        ["budget", "bytes", "modeled ns/op", "final size", "expanded leaves"],
        rows,
        title="Zipf reads+writes (W1.1) under increasing memory budgets",
    ))
    print("\nthe first budget increments buy the largest latency improvements —")
    print("the hottest leaves are expanded first (Figure 15).")


if __name__ == "__main__":
    main()
