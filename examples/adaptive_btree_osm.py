#!/usr/bin/env python
"""Workload-shift scenario: the paper's Figure 12 in miniature.

An OSM-like clustered dataset serves three consecutive workload phases
with *different* hot regions (Zipf head, Normal middle band, Lognormal
upper band).  The adaptive tree re-shapes itself at every shift; the
single-encoding baselines cannot.  Prints an interval timeline of modeled
latency and the final size comparison.

Run:  python examples/adaptive_btree_osm.py
"""

import numpy as np

from repro.harness.experiments import experiment_fig12
from repro.harness.report import format_series, human_bytes

NUM_KEYS = 40_000
OPS_PER_PHASE = 45_000


def main() -> None:
    print(
        f"running W1.1 (zipf) -> W1.2 (normal) -> W1.3 (lognormal), "
        f"{OPS_PER_PHASE:,} ops per phase over {NUM_KEYS:,} OSM-like keys ...\n"
    )
    result = experiment_fig12(
        num_keys=NUM_KEYS,
        ops_per_phase=OPS_PER_PHASE,
        interval_ops=5_000,
        training_ops=10_000,
    )

    boundary = result["intervals_per_phase"]
    print(f"modeled latency per interval (phase boundaries at {boundary} and {2 * boundary}):")
    for name in ("gapped", "packed", "succinct", "ahi", "pretrained"):
        print("  " + format_series(name.ljust(10), result["series"][name], unit="ns"))

    print("\nfinal index sizes:")
    gapped_bytes = result["sizes"]["gapped"][0]
    for name, (index_bytes, aux_bytes) in result["sizes"].items():
        saving = 1 - index_bytes / gapped_bytes
        extra = f" (+{human_bytes(aux_bytes)} sampling)" if aux_bytes else ""
        print(f"  {name:<11} {human_bytes(index_bytes):>10}{extra}   {saving:+.0%} vs gapped")

    ahi = result["series"]["ahi"]
    gapped = result["series"]["gapped"]
    per_phase = [
        np.mean(gapped[i * boundary : (i + 1) * boundary])
        / np.mean(ahi[i * boundary : (i + 1) * boundary])
        for i in range(3)
    ]
    print(
        "\nAHI throughput relative to Gapped per phase: "
        + ", ".join(f"{share:.0%}" for share in per_phase)
        + "  (paper: 85%, 99%, 84%)"
    )


if __name__ == "__main__":
    main()
