#!/usr/bin/env python
"""Persisting the static trie: build once, serialize, reload, query.

The FST is immutable — exactly the structure worth building offline and
shipping to query nodes.  This example builds an FST over e-mail keys,
serializes it to disk with the library's binary format, reloads it, and
answers prefix queries ("every address under this host") from the loaded
copy.

Run:  python examples/fst_persistence.py
"""

import tempfile
import time
from pathlib import Path

from repro import FST
from repro.art.tree import terminated
from repro.harness.report import human_bytes
from repro.workloads.datasets import email_keys

NUM_EMAILS = 5_000


def main() -> None:
    emails = [terminated(email) for email in email_keys(NUM_EMAILS, rng=0)]
    pairs = [(email, index) for index, email in enumerate(emails)]

    started = time.perf_counter()
    fst = FST(pairs)
    build_seconds = time.perf_counter() - started
    print(f"built FST over {len(pairs):,} e-mail addresses in {build_seconds:.2f}s")
    print(f"  {fst.num_nodes:,} nodes ({fst.num_dense_nodes:,} dense), "
          f"height {fst.height}, modeled size {human_bytes(fst.size_bytes())}")

    with tempfile.TemporaryDirectory() as directory:
        path = Path(directory) / "emails.fst"
        blob = fst.to_bytes()
        path.write_bytes(blob)
        print(f"\nserialized to {path.name}: {human_bytes(len(blob))} on disk")

        started = time.perf_counter()
        loaded = FST.from_bytes(path.read_bytes())
        load_seconds = time.perf_counter() - started
        print(f"reloaded in {load_seconds:.3f}s "
              f"({build_seconds / max(load_seconds, 1e-9):.0f}x faster than rebuilding)")

    # Point lookups and prefix queries on the loaded copy.
    probe = emails[NUM_EMAILS // 3]
    assert loaded.lookup(probe) == NUM_EMAILS // 3
    host = probe.split(b"@")[0] + b"@"
    matches = list(loaded.prefix_items(host))
    print(f"\nall addresses under {host.decode()!r}: {len(matches)}")
    terminator = bytes([0])
    for key, value in matches[:5]:
        print(f"   #{value}: {key.rstrip(terminator).decode()}")
    if len(matches) > 5:
        print(f"   ... and {len(matches) - 5} more")

    # The loaded structure is bit-identical under re-serialization.
    assert loaded.to_bytes() == blob
    print("\nre-serialization is bit-identical — done.")


if __name__ == "__main__":
    main()
