#!/usr/bin/env python
"""String-key scenario: adaptive Hybrid Trie over e-mail addresses.

Host-reversed e-mail keys (``com.bluemail@alice``) are indexed four ways:
plain ART (fast, large), plain FST (compact, slow), the adaptive Hybrid
Trie, and an offline-trained Hybrid Trie.  A Zipf point-lookup workload
lets the adaptive trie expand its hot branches; the example prints the
space/performance frontier of Figure 19.

Run:  python examples/hybrid_trie_emails.py
"""

import numpy as np

from repro import ART, FST, HybridTrie
from repro.art.tree import terminated
from repro.core.budget import MemoryBudget
from repro.harness.experiments import scaled_trie_manager_config
from repro.harness.report import format_table, human_bytes
from repro.sim.costmodel import CostModel
from repro.workloads.datasets import email_keys
from repro.workloads.distributions import zipf_indices

NUM_EMAILS = 8_000
NUM_LOOKUPS = 40_000
ART_LEVELS = 8  # the paper stores the upper 9 levels in ART


def measure(name, index, byte_keys, query_ranks, cost_model):
    before = index.counters.snapshot()
    for rank in query_ranks:
        index.lookup(byte_keys[rank])
    events = index.counters.diff(before)
    if hasattr(index, "manager"):
        events["heap_op"] = index.manager.counters.heap_operations
        events["sample_track"] = index.manager.counters.map_updates
    modeled_ns = cost_model.price(events) / len(query_ranks)
    return (name, round(modeled_ns, 1), human_bytes(index.size_bytes()))


def main() -> None:
    rng = np.random.default_rng(0)
    byte_keys = [terminated(key) for key in email_keys(NUM_EMAILS, rng)]
    pairs = [(key, rank) for rank, key in enumerate(byte_keys)]
    print(f"indexing {len(pairs):,} e-mail addresses "
          f"(avg {sum(map(len, byte_keys)) / len(byte_keys):.1f} bytes) ...")

    cost_model = CostModel()
    query_ranks = zipf_indices(NUM_EMAILS, NUM_LOOKUPS, alpha=1.0, rng=rng)

    art = ART.from_sorted(pairs)
    fst = FST(pairs)
    adaptive = HybridTrie(pairs, art_levels=ART_LEVELS,
                          manager_config=scaled_trie_manager_config())
    trained = HybridTrie(pairs, art_levels=ART_LEVELS, adaptive=False)
    trained.train(
        [byte_keys[rank] for rank in query_ranks[: NUM_LOOKUPS // 4]],
        budget=MemoryBudget.absolute(2 * trained.size_bytes()),
    )

    rows = [
        measure("ART", art, byte_keys, query_ranks, cost_model),
        measure("FST", fst, byte_keys, query_ranks, cost_model),
        measure("AHI-Trie (adaptive)", adaptive, byte_keys, query_ranks, cost_model),
        measure("Hybrid Trie (trained)", trained, byte_keys, query_ranks, cost_model),
    ]
    print()
    print(format_table(["index", "modeled ns/lookup", "size"], rows,
                       title="Zipf point lookups on e-mail keys (Figure 19 shape)"))
    print(f"\nadaptive trie expanded {adaptive.expanded_branch_count()} hot branches "
          f"across {adaptive.manager.counters.adaptation_phases} adaptation phases")

    # Range scans work across the hybrid ART/FST boundary too.
    start = byte_keys[NUM_EMAILS // 2]
    scan = adaptive.scan(start, 5)
    print("\nsample scan from", start.rstrip(b'\\x00').decode(), ":")
    for key, value in scan:
        print("   ", key.rstrip(b"\x00").decode())


if __name__ == "__main__":
    main()
