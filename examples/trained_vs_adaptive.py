#!/usr/bin/env python
"""Offline training vs online adaptation under a workload shift.

Section 3.2 of the paper: when the workload is known beforehand, a hybrid
index can be *trained* offline — no sampling overhead, perfect layout for
the predicted pattern.  But predictions go stale.  This example trains one
tree on phase-1 traffic, lets another adapt online, then *shifts* the hot
range; the trained tree is stuck with yesterday's layout while the
adaptive tree recovers.

Run:  python examples/trained_vs_adaptive.py
"""

import numpy as np

from repro import AdaptiveBPlusTree
from repro.core.access import AccessType
from repro.core.budget import MemoryBudget
from repro.core.trained import train_offline
from repro.bptree.leaves import LeafEncoding
from repro.harness.experiments import scaled_manager_config
from repro.harness.report import format_table
from repro.sim.costmodel import CostModel

NUM_KEYS = 30_000
OPS_PER_PHASE = 60_000
HOT = 400


def drive(tree, hot_keys, rng, cost_model):
    """Run one phase of skewed lookups; return modeled ns/op."""
    adapter_events_before = tree.counters.snapshot()
    manager_before = (
        tree.manager.counters.heap_operations,
        tree.manager.counters.map_updates,
        tree.manager.counters.classified_items,
    )
    for _ in range(OPS_PER_PHASE):
        tree.lookup(hot_keys[rng.integers(0, len(hot_keys))])
    events = tree.counters.diff(adapter_events_before)
    events["heap_op"] = tree.manager.counters.heap_operations - manager_before[0]
    events["sample_track"] = tree.manager.counters.map_updates - manager_before[1]
    events["classify_item"] = tree.manager.counters.classified_items - manager_before[2]
    return cost_model.price(events) / OPS_PER_PHASE


def main() -> None:
    pairs = [(key * 11, key) for key in range(NUM_KEYS)]
    rng = np.random.default_rng(0)
    cost_model = CostModel()
    phase1_hot = [pairs[index][0] for index in range(HOT)]
    phase2_hot = [pairs[-index - 1][0] for index in range(HOT)]

    adaptive = AdaptiveBPlusTree.bulk_load_adaptive(
        pairs, leaf_capacity=64, manager_config=scaled_manager_config()
    )

    trained = AdaptiveBPlusTree.bulk_load_adaptive(pairs, leaf_capacity=64)
    trained.manager.disable()
    trace = [(trained.find_leaf(key)[0], AccessType.READ) for key in phase1_hot * 20]
    migrations = train_offline(
        trained, trace, LeafEncoding.GAPPED,
        MemoryBudget.absolute(2 * trained.size_bytes()),
    )
    print(f"offline training expanded {migrations} leaves for the phase-1 hot set\n")

    rows = []
    for phase_name, hot_keys in (("phase 1 (trained-for)", phase1_hot),
                                 ("phase 2 (shifted)", phase2_hot)):
        adaptive_ns = drive(adaptive, hot_keys, rng, cost_model)
        trained_ns = drive(trained, hot_keys, rng, cost_model)
        rows.append((phase_name, round(trained_ns, 1), round(adaptive_ns, 1)))

    print(format_table(
        ["workload phase", "trained ns/op", "adaptive ns/op"],
        rows,
        title="Modeled lookup latency: offline-trained vs online-adaptive",
    ))
    print("\nphase 1: the trained tree wins slightly (zero sampling overhead);")
    print("phase 2: its layout is stale, while the adaptive tree re-expanded "
          f"({adaptive.manager.counters.expansions} expansions, "
          f"{adaptive.manager.counters.compactions} compactions in total).")


if __name__ == "__main__":
    main()
