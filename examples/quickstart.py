#!/usr/bin/env python
"""Quickstart: an adaptive Hybrid B+-tree in ~40 lines.

Builds an AHI-BTree over one million-ish keys (scaled down by default so
it runs in seconds), drives a skewed read workload at it, and shows the
index reshaping itself: hot leaves expand to the fast Gapped encoding,
the cold majority stays Succinct, and the total footprint lands far below
an all-Gapped tree.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AdaptiveBPlusTree, BPlusTree, LeafEncoding
from repro.harness.report import human_bytes

NUM_KEYS = 50_000
NUM_LOOKUPS = 200_000
HOT_KEYS = 500  # the contiguous hot range a skewed workload hammers


def main() -> None:
    pairs = [(key * 7, key) for key in range(NUM_KEYS)]

    # All leaves start in the compact (Succinct) encoding.
    tree = AdaptiveBPlusTree.bulk_load_adaptive(pairs)
    print(f"loaded {len(tree):,} keys into {tree.num_leaves:,} leaves")
    print(f"initial size: {human_bytes(tree.size_bytes())} (all leaves succinct)")

    # A Zipf-ish workload: most lookups hit a small contiguous hot range.
    rng = np.random.default_rng(0)
    hot = [pairs[index][0] for index in range(HOT_KEYS)]
    for step in range(NUM_LOOKUPS):
        if step % 10 == 0:
            key = pairs[rng.integers(0, NUM_KEYS)][0]  # background noise
        else:
            key = hot[rng.integers(0, HOT_KEYS)]
        tree.lookup(key)  # sampling + adaptation happen transparently

    counts = tree.encoding_counts()
    print(f"\nafter {NUM_LOOKUPS:,} skewed lookups:")
    print(f"  adaptation phases: {tree.manager.counters.adaptation_phases}")
    print(f"  leaf encodings:    {{{', '.join(f'{k}: {v}' for k, v in counts.items())}}}")
    print(f"  expansions: {tree.manager.counters.expansions}, "
          f"compactions: {tree.manager.counters.compactions}")
    print(f"  final size: {human_bytes(tree.size_bytes())} "
          f"(+{human_bytes(tree.manager.size_bytes())} sampling framework)")

    gapped = BPlusTree.bulk_load(pairs, LeafEncoding.GAPPED)
    saved = 1 - tree.size_bytes() / gapped.size_bytes()
    print(f"  vs all-Gapped tree ({human_bytes(gapped.size_bytes())}): {saved:.0%} smaller")

    # Correctness is never traded away.
    for key, value in pairs[:: NUM_KEYS // 100]:
        assert tree.lookup(key) == value
    print("\nall lookups verified — done.")


if __name__ == "__main__":
    main()
