"""Structural operation counters.

Every index in this reproduction increments named counters for the
structural work it performs; the cost model prices them.  Counter names
are plain strings so substrates can introduce their own events without
touching this module.  The conventional names are:

===========================  ==================================================
``inner_visit``              one B+-tree inner-node traversal step
``leaf_visit:gapped``        one access to a Gapped leaf
``leaf_visit:packed``        one access to a Packed leaf
``leaf_visit:succinct``      one access to a Succinct leaf
``leaf_write:<enc>``         one in-leaf mutation (insert/update/delete)
``art_visit``                one ART node traversal step
``fst_dense_visit``          one LOUDS-dense node step
``fst_sparse_visit``         one LOUDS-sparse node step
``migration:<src>-><dst>``   one encoding migration (priced per entry too)
``migration_entries:...``    entries moved by those migrations
``sample_check``             one is-sample gate evaluation
``sample_track``             one tracked sample (hash-map update)
``bloom_check``              one Bloom-filter membership test
``classify_item``            one item pass during classification
``heap_op``                  one heap push/replace during classification
===========================  ==================================================
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, Tuple


class OpCounters:
    """A named-event counter with merge and snapshot support."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()

    def add(self, event: str, amount: int = 1) -> None:
        """Add one item/event."""
        self._counts[event] += amount

    def add_many(self, events: Dict[str, int]) -> None:
        """Merge a mapping of event -> amount in one call.

        The batched index operations accumulate counter deltas in local
        dicts and flush them here once per batch, so the per-operation
        hot path pays one Counter.update instead of one add() per event.
        """
        self._counts.update(events)

    def get(self, event: str) -> int:
        """Return the value for ``key``, or ``default`` when absent."""
        return self._counts.get(event, 0)

    def merge(self, other: "OpCounters") -> None:
        """Merge another instance's contents into this one."""
        self._counts.update(other._counts)

    def snapshot(self) -> Dict[str, int]:
        """A copy of the current counts."""
        return dict(self._counts)

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        """Events since ``earlier`` (a previous :meth:`snapshot`)."""
        result = {}
        for event, count in self._counts.items():
            delta = count - earlier.get(event, 0)
            if delta:
                result[event] = delta
        return result

    def reset(self) -> None:
        """Clear all state."""
        self._counts.clear()

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self._counts.items())

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        top = ", ".join(f"{k}={v}" for k, v in sorted(self._counts.items())[:6])
        return f"OpCounters({top}{'...' if len(self._counts) > 6 else ''})"
