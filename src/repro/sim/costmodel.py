"""The calibrated cost model.

Converts :class:`~repro.sim.counters.OpCounters` events into modeled
nanoseconds.  The per-event prices are calibration constants chosen so
that the *totals* land near the paper's own measurements on its Ryzen
3950X testbed:

* Table 1 — uniform lookups cost ≈56/57/125 ns on Gapped/Packed/Succinct
  leaves (two inner levels + one leaf visit under the defaults below).
* Figure 9 — Gapped<->Packed migrations are memcpy-cheap (hundreds of ns)
  while anything involving Succinct re-encodes every entry (over 1 µs for
  a 70%-full leaf).
* Section 4.2.2 — FST->ART expansions cost ≈5 µs at 50% occupancy,
  ART->FST compactions ≈100 ns.
* Figure 5 / Section 3.1.4 — tracking one sample costs ≈60 ns, one
  classification step ≈60 ns.
* Figure 3 — random 4 KiB accesses cost ≈70 µs on SATA SSD, ≈12 µs on
  NVMe, ≈2 µs on persistent memory, and decompression adds ≈0.5 ns/byte.

Only the counter *values* come from executed data structures; these
prices are the explicit, auditable substitution for hardware timing (see
DESIGN.md §2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping

# Per-event prices in nanoseconds.  Events carrying an "amount" (entry
# counts) are priced per unit.
DEFAULT_COSTS_NS: Dict[str, float] = {
    # --- B+-tree traversal -------------------------------------------------
    "inner_visit": 8.0,
    "leaf_visit:gapped": 40.0,
    "leaf_visit:packed": 41.0,
    "leaf_visit:succinct": 109.0,
    # --- B+-tree mutations -------------------------------------------------
    "leaf_write:gapped": 24.0,
    "leaf_write:packed": 60.0,
    "leaf_write:succinct": 300.0,       # triggers a re-encode ...
    "leaf_rebuild_entry": 6.0,          # ... priced per entry moved
    "leaf_split": 400.0,
    # --- B+-tree encoding migrations (Figure 9) ----------------------------
    "migration:gapped->packed": 100.0,
    "migration:packed->gapped": 100.0,
    "migration:gapped->succinct": 300.0,
    "migration:succinct->gapped": 300.0,
    "migration:packed->succinct": 300.0,
    "migration:succinct->packed": 300.0,
    "migration_entry:cheap": 1.0,       # per entry, memcpy-style pairs
    "migration_entry:recode": 6.0,      # per entry, (de)bit-packing pairs
    # --- Tries --------------------------------------------------------------
    "art_visit": 18.0,
    "fst_dense_visit": 34.0,
    "fst_sparse_visit": 62.0,
    "trie_value_fetch": 10.0,
    "migration:fst->art": 2500.0,       # + per-label cost below
    "migration:art->fst": 100.0,
    "migration_label:fst->art": 40.0,
    # --- Sampling framework (Figure 5, Section 3.1.4) ----------------------
    "sample_check": 1.0,
    "sample_track": 60.0,
    "bloom_check": 15.0,
    "classify_item": 30.0,
    "heap_op": 30.0,
    # --- Concurrency (Figure 18) -------------------------------------------
    "lock_acquire": 20.0,
    "lock_blocked": 600.0,
    # Expected stall per (acquisition x other-contender) pair: the GIL
    # serializes Python threads, hiding the cache-line bouncing and CAS
    # retries a real shared map suffers, so contention is charged
    # explicitly per contender (see DESIGN.md section 2).
    "lock_contention_pair": 30.0,
    "map_merge_entry": 40.0,
    # --- Dual-stage baseline ------------------------------------------------
    "dynamic_stage_probe": 45.0,
    "static_stage_probe": 110.0,
    "bloom_probe": 18.0,
    "merge_entry": 25.0,
    "static_scan_item": 3.0,
}


@dataclass
class CostModel:
    """Prices counter events in nanoseconds.

    ``costs_ns`` can be overridden per experiment (ablations recalibrate
    individual events without touching the defaults).
    """

    costs_ns: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_COSTS_NS))

    def price(self, events: Mapping[str, int]) -> float:
        """Total modeled nanoseconds for a batch of counted events."""
        total = 0.0
        for event, count in events.items():
            total += self.costs_ns.get(event, 0.0) * count
        return total

    def price_per_op(self, events: Mapping[str, int], operations: int) -> float:
        """Average modeled nanoseconds per operation."""
        if operations <= 0:
            return 0.0
        return self.price(events) / operations

    def with_overrides(self, **overrides: float) -> "CostModel":
        """A copy with some event prices replaced (keyword = event name,
        with ``__`` standing in for ``:`` and ``->``-free names)."""
        merged = dict(self.costs_ns)
        for name, value in overrides.items():
            merged[name.replace("__", ":")] = value
        return CostModel(costs_ns=merged)


class StorageDevice(enum.Enum):
    """The storage tiers of Figure 3."""

    SATA_SSD = "samsung-870-ssd"
    NVME_SSD = "samsung-970-nvme"
    PMEM = "optane-pmem"
    DRAM = "dram"


# Random-access base latencies for one 4 KiB page, in microseconds,
# calibrated to Figure 3 (cold caches).
_DEVICE_READ_US = {
    StorageDevice.SATA_SSD: 70.0,
    StorageDevice.NVME_SSD: 12.0,
    StorageDevice.PMEM: 2.0,
    StorageDevice.DRAM: 0.056,
}
_DEVICE_WRITE_US = {
    StorageDevice.SATA_SSD: 75.0,
    StorageDevice.NVME_SSD: 20.0,
    StorageDevice.PMEM: 4.0,
    StorageDevice.DRAM: 0.060,
}

# LZ throughput model calibrated to LZ4 (the paper's codec):
# decompression ~4 GB/s, compression ~1.25 GB/s.
_DECOMPRESS_NS_PER_BYTE = 0.25
_COMPRESS_NS_PER_BYTE = 0.8


def storage_access_latency_us(
    device: StorageDevice,
    write: bool,
    compressed: bool,
    uncompressed_bytes: int,
    compressed_bytes: int | None = None,
) -> float:
    """Modeled latency of one leaf-page access on ``device`` (Figure 3).

    A read of a compressed page pays the device read plus decompression;
    a write pays compression plus the device write.  ``compressed_bytes``
    (from the real LZ compressor) scales the device transfer for
    compressed pages; it defaults to half the uncompressed size.
    """
    if compressed and compressed_bytes is None:
        compressed_bytes = uncompressed_bytes // 2
    payload = compressed_bytes if compressed else uncompressed_bytes
    base = _DEVICE_WRITE_US[device] if write else _DEVICE_READ_US[device]
    # Transfer scales with the payload relative to a 4 KiB page.
    latency_us = base * max(0.25, payload / 4096)
    if compressed:
        codec_ns = (
            _COMPRESS_NS_PER_BYTE if write else _DECOMPRESS_NS_PER_BYTE
        ) * uncompressed_bytes
        latency_us += codec_ns / 1000.0
    return latency_us
