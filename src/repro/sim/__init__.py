"""Measurement substrate: operation counters and the calibrated cost model.

Pure Python cannot exhibit the paper's nanosecond-scale memory-layout
effects, so every index in this reproduction counts the *structural* work
it performs (node visits per encoding, migrations, sampling events) in an
:class:`~repro.sim.counters.OpCounters`, and the
:class:`~repro.sim.costmodel.CostModel` converts those counters into
modeled nanoseconds using per-event costs calibrated against the paper's
own measurements (Tables 1-2, Figures 3, 5, 6, 9).  Wall-clock Python
timings are reported separately by pytest-benchmark.
"""

from repro.sim.costmodel import CostModel, StorageDevice, storage_access_latency_us
from repro.sim.counters import OpCounters

__all__ = ["CostModel", "OpCounters", "StorageDevice", "storage_access_latency_us"]
