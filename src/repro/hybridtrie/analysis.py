"""Design analyses for the Hybrid Trie.

The paper reports a negative result (Section 4.2.2): storing one FST per
cold subtree — instead of one global FST — would let hot subtrees be cut
out entirely, but "as each FST adds some storage overhead (for header
information and auxiliary data structures), this approach did not pay
off".  :func:`multi_fst_overhead` quantifies that trade-off for a built
trie, reproducing the reasoning that led the paper to a single global
FST.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hybridtrie.tagged import TrieBranch
from repro.hybridtrie.tree import HybridTrie

# Modeled fixed cost of one stand-alone FST instance: object header,
# level directory, value-array pointer, and the per-structure rank/select
# directories' base cost.  Conservative relative to real SuRF instances.
PER_FST_HEADER_BYTES = 96


@dataclass(frozen=True)
class MultiFstEstimate:
    """Single-global-FST vs one-FST-per-cold-branch size comparison."""

    branch_count: int
    single_fst_bytes: int       # the global FST (payload shared by all)
    multi_fst_payload_bytes: int  # per-branch payloads, summed
    multi_fst_header_bytes: int   # per-branch fixed overhead, summed

    @property
    def multi_fst_total_bytes(self) -> int:
        """Summed payload plus per-instance headers."""
        return self.multi_fst_payload_bytes + self.multi_fst_header_bytes

    @property
    def pays_off(self) -> bool:
        """True iff splitting the FST would actually save memory."""
        return self.multi_fst_total_bytes < self.single_fst_bytes


def _subtree_payload_bytes(trie: HybridTrie, node: int) -> int:
    """Approximate LOUDS payload of the subtree rooted at ``node``.

    Each reachable label costs ~1 byte of labels + 2 bits of bitmaps in
    the sparse encoding, plus 8 bytes per stored value — the same
    arithmetic the global FST's size model uses, restricted to the
    subtree.
    """
    labels = 0
    values = 0
    stack = [node]
    fst = trie.fst
    while stack:
        current = stack.pop()
        for _, child, value in fst.children(current):
            labels += 1
            if value is not None:
                values += 1
            else:
                stack.append(child)
    return labels + (labels + 3) // 4 + 8 * values


def multi_fst_overhead(
    trie: HybridTrie,
    per_fst_header_bytes: int = PER_FST_HEADER_BYTES,
    max_branches: Optional[int] = None,
) -> MultiFstEstimate:
    """Estimate the cost of one stand-alone FST per compact branch.

    Walks the trie's current compact branches (the subtrees that *would*
    each become their own FST) and compares their summed payload plus
    per-instance headers against the single global FST.
    """
    payload = 0
    count = 0

    def walk(current) -> None:
        nonlocal payload, count
        if isinstance(current, TrieBranch):
            if current.expanded:
                walk(current.art_node)
                return
            if max_branches is None or count < max_branches:
                payload += _subtree_payload_bytes(trie, current.fst_node)
            count += 1
            return
        for _, child in current.children_items():
            if not isinstance(child, int):
                walk(child)

    if trie._root is not None:
        walk(trie._root)
    return MultiFstEstimate(
        branch_count=count,
        single_fst_bytes=trie.fst.size_bytes(),
        multi_fst_payload_bytes=payload,
        multi_fst_header_bytes=count * per_fst_header_bytes,
    )
