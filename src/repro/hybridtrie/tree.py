"""The Hybrid Trie (AHI-Trie), Section 4.2 of the paper.

Construction (level-wise, Figure 10): one global FST is built over the
whole key set; the upper ``c_art`` levels are then materialized as ART
nodes whose boundary children are compact :class:`TrieBranch` wrappers
pointing into the FST.  The FST's own dense/sparse split (``c_fst``) is
independent and configured through ``dense_levels``.

Run-time refinement (branch-wise): the adaptation manager tracks sampled
accesses to branches; hot branches *expand* — one ART node is built from
the FST node's labels (node type chosen by fanout), its children becoming
new compact branches one level deeper — and cold branches *compact* back
to their FST node number.  The FST is static and complete, so compaction
is pointer surgery only (the paper: ~100 ns) while expansion must collect
the labels (~5 µs).

Inserts are not supported (the paper leaves them to future work since
FST is static); lookups and range scans are.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.art.nodes import ARTNode, art_node_for_fanout
from repro.art.tree import _common_prefix_length
from repro.core.access import AccessType
from repro.core.budget import MemoryBudget
from repro.core.heuristics import Heuristic
from repro.core.manager import AdaptationManager, ManagerConfig
from repro.core.trained import rank_units
from repro.faults.injector import fault_point
from repro.fst.trie import FST
from repro.hybridtrie.tagged import BRANCH_POINTER_BYTES, TrieBranch, TrieEncoding
from repro.obs.runtime import active_tracer
from repro.sim.counters import OpCounters

TRIE_ENCODING_ORDER: Tuple[TrieEncoding, ...] = (TrieEncoding.FST, TrieEncoding.ART)
DEFAULT_ART_LEVELS = 2

#: Precomputed ``leaf_probe:<region>`` span names (RA004: telemetry
#: names are literal tables, never formatted on the hot path).
_PROBE_EVENTS = {
    "none": "leaf_probe:none",
    "fst": "leaf_probe:fst",
    "art": "leaf_probe:art",
}


class HybridTrie:
    """Level-wise ART + FST with adaptive branch-wise refinement."""

    stats_family = "hybridtrie"

    def __init__(
        self,
        pairs: Sequence[Tuple[bytes, int]],
        art_levels: int = DEFAULT_ART_LEVELS,
        dense_levels: Optional[int] = None,
        adaptive: bool = True,
        budget: Optional[MemoryBudget] = None,
        heuristic: Optional[Heuristic] = None,
        manager_config: Optional[ManagerConfig] = None,
    ) -> None:
        self.counters = OpCounters()
        self._fst = FST(pairs, dense_levels=dense_levels, counters=self.counters)
        self._num_keys = self._fst.num_keys
        self.art_levels = max(0, min(art_levels, self._fst.height))
        self._num_branches = 0
        self._root = self._build_upper(0, 0) if self._num_keys else None
        self.adaptive = adaptive
        if manager_config is None:
            manager_config = ManagerConfig(
                encoding_order=TRIE_ENCODING_ORDER,
                budget=budget or MemoryBudget.unbounded(),
                heuristic=heuristic,
            )
        self.manager = AdaptationManager(self, manager_config)
        if not adaptive:
            self.manager.disable()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_upper(self, fst_node: int, level: int):
        """Materialize the permanent ART region down to ``art_levels``."""
        if level >= self.art_levels:
            branch = TrieBranch(fst_node, level)
            self._num_branches += 1
            return branch
        entries = self._fst.children(fst_node)
        node = art_node_for_fanout(len(entries))
        for label, child, value in entries:
            if value is not None:
                node.set_child(label, value)
            else:
                node.set_child(label, self._build_upper(child, level + 1))
        return node

    # ------------------------------------------------------------------
    # Lookups (Listing 2)
    # ------------------------------------------------------------------
    def lookup(self, key: bytes) -> Optional[int]:
        """Return the value stored under ``key``, or None."""
        tracer = active_tracer()
        if tracer is not None:
            return self._traced_lookup(tracer, key)
        if self._root is None:
            return None
        self.counters.add("sample_check")
        track = self.adaptive and self.manager.is_sample()
        current = self._root
        depth = 0
        while True:
            if isinstance(current, TrieBranch):
                if track:
                    self.manager.track(current, AccessType.READ)
                if not current.expanded:
                    return self._fst.lookup_from(current.fst_node, key, depth)
                current = current.art_node
                continue
            # ART node (upper region or an expanded branch's node).
            self.counters.add("art_visit")
            if depth >= len(key):
                return None
            child = current.find_child(key[depth])
            depth += 1
            if child is None:
                return None
            if isinstance(child, int):
                self.counters.add("trie_value_fetch")
                return child if depth == len(key) else None
            current = child

    def _traced_lookup(self, tracer, key: bytes) -> Optional[int]:
        """:meth:`lookup` under an installed tracer (identical result)."""
        span = tracer.op_start("lookup", family=self.stats_family)
        if self._root is None:
            if span is not None:
                tracer.end(span, empty=True)
            return None
        self.counters.add("sample_check")
        track = self.adaptive and self.manager.is_sample()
        current = self._root
        depth = 0
        art_steps = 0
        probe = "none"
        value: Optional[int] = None
        while True:
            if isinstance(current, TrieBranch):
                if track:
                    self.manager.track(current, AccessType.READ)
                if not current.expanded:
                    value = self._fst.lookup_from(current.fst_node, key, depth)
                    probe = "fst"
                    break
                current = current.art_node
                continue
            self.counters.add("art_visit")
            art_steps += 1
            if depth >= len(key):
                break
            child = current.find_child(key[depth])
            depth += 1
            if child is None:
                break
            if isinstance(child, int):
                self.counters.add("trie_value_fetch")
                value = child if depth == len(key) else None
                probe = "art"
                break
            current = child
        if span is not None:
            tracer.event("descent", art_steps=art_steps, depth=depth)
            tracer.event(_PROBE_EVENTS[probe], hit=value is not None)
            tracer.end(span, sampled=track)
        return value

    def __contains__(self, key: bytes) -> bool:
        return self.lookup(key) is not None

    def lookup_many(self, keys: Sequence[bytes]) -> List[Optional[int]]:
        """Batched point lookups; one value (or None) per key.

        Sorted batches keep the current root-to-termination path on a
        stack of ``(node, depth)`` entries — ART nodes, expanded
        branches, and the compact branch a descent ended in — and each
        key rewinds only past the entries deeper than its common prefix
        with the previous key.  The sample gate is drained once for the
        whole batch (``manager.consume``) and the resulting tracking
        events are flushed after the last key, so no migration can
        invalidate the cached path mid-batch; the FST is complete and
        immutable, which is what makes resuming from cached branches
        safe.  Unsorted batches fall back to per-key lookups.
        """
        keys = list(keys)
        if not keys:
            return []
        if self._root is None:
            return [None] * len(keys)
        if any(a > b for a, b in zip(keys, keys[1:])):
            return [self.lookup(key) for key in keys]
        total = len(keys)
        self.counters.add("sample_check", total)
        sampled = set(self.manager.consume(total)) if self.adaptive else set()
        to_track: List[TrieBranch] = []
        results: List[Optional[int]] = []
        art_visits = 0
        value_fetches = 0
        stack: List[Tuple[object, int]] = [(self._root, 0)]
        previous: Optional[bytes] = None
        for index, key in enumerate(keys):
            if previous is not None:
                common = _common_prefix_length(previous, key)
                while len(stack) > 1 and stack[-1][1] > common:
                    stack.pop()
            previous = key
            node, depth = stack[-1]
            value: Optional[int] = None
            while True:
                if isinstance(node, TrieBranch):
                    if not node.expanded:
                        value = self._fst.lookup_from(node.fst_node, key, depth)
                        break
                    node = node.art_node
                    continue
                art_visits += 1
                if depth >= len(key):
                    break
                child = node.find_child(key[depth])
                depth += 1
                if child is None:
                    break
                if isinstance(child, int):
                    value_fetches += 1
                    value = child if depth == len(key) else None
                    break
                stack.append((child, depth))
                node = child
            results.append(value)
            if index in sampled:
                to_track.extend(
                    entry for entry, _ in stack if isinstance(entry, TrieBranch)
                )
        if art_visits:
            self.counters.add("art_visit", art_visits)
        if value_fetches:
            self.counters.add("trie_value_fetch", value_fetches)
        for branch in to_track:
            # A track-triggered compaction may detach later branches in
            # this list; a detached branch no longer exists as a unit.
            if not branch.detached:
                self.manager.track(branch, AccessType.READ)
        return results

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------
    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        """Up to ``count`` pairs with key >= ``start_key`` in key order."""
        if count <= 0 or self._root is None:
            return []
        self.counters.add("sample_check")
        track = self.adaptive and self.manager.is_sample()
        result: List[Tuple[bytes, int]] = []
        self._scan(self._root, b"", start_key, count, result, track)
        return result

    def _scan(
        self,
        current,
        path: bytes,
        start_key: bytes,
        count: int,
        result: List[Tuple[bytes, int]],
        track: bool,
    ) -> None:
        if isinstance(current, TrieBranch):
            if track:
                self.manager.track(current, AccessType.SCAN)
            if not current.expanded:
                self._fst._scan(current.fst_node, path, start_key, count, result)
                return
            current = current.art_node
        self.counters.add("art_visit")
        depth = len(path)
        on_boundary = path == start_key[:depth]
        minimum_label = start_key[depth] if on_boundary and depth < len(start_key) else 0
        for label, child in current.children_items():
            if len(result) >= count:
                return
            if label < minimum_label:
                continue
            extended = path + bytes([label])
            if isinstance(child, int):
                if extended >= start_key:
                    result.append((extended, child))
            else:
                if extended < start_key[: len(extended)]:
                    continue
                self._scan(child, extended, start_key, count, result, track)

    def scan_many(
        self, requests: Sequence[Tuple[bytes, int]]
    ) -> List[List[Tuple[bytes, int]]]:
        """Batched range scans; one result list per (start_key, count).

        The sample gate is drained once for all non-empty requests
        instead of once per scan; sampled offsets map back to the
        corresponding request, which then runs tracked exactly like a
        sampled :meth:`scan`.
        """
        requests = list(requests)
        if not requests:
            return []
        live = sum(
            1 for start, count in requests if count > 0 and self._root is not None
        )
        sampled: set = set()
        if live:
            self.counters.add("sample_check", live)
            if self.adaptive:
                sampled = set(self.manager.consume(live))
        results: List[List[Tuple[bytes, int]]] = []
        gate = 0
        for start, count in requests:
            if count <= 0 or self._root is None:
                results.append([])
                continue
            track = gate in sampled
            gate += 1
            result: List[Tuple[bytes, int]] = []
            self._scan(self._root, b"", start, count, result, track)
            results.append(result)
        return results

    def prefix_items(self, prefix: bytes) -> List[Tuple[bytes, int]]:
        """All (key, value) pairs whose key starts with ``prefix``, in key
        order — answered across the mixed ART/FST structure via chunked
        range scans."""
        results: List[Tuple[bytes, int]] = []
        start = prefix
        chunk = 256
        while True:
            batch = self.scan(start, chunk)
            for key, value in batch:
                if not key.startswith(prefix):
                    return results
                results.append((key, value))
            if len(batch) < chunk:
                return results
            start = batch[-1][0] + b"\x00"

    def successor(self, key: bytes) -> Optional[Tuple[bytes, int]]:
        """The smallest stored (key, value) with key >= ``key``."""
        batch = self.scan(key, 1)
        return batch[0] if batch else None

    def items(self) -> List[Tuple[bytes, int]]:
        """All pairs in key order (scans without sampling)."""
        if self._root is None:
            return []
        result: List[Tuple[bytes, int]] = []
        self._scan(self._root, b"", b"", self._num_keys, result, False)
        return result

    # ------------------------------------------------------------------
    # Branch migrations (the Encode callback of Listing 2)
    # ------------------------------------------------------------------
    def expand_branch(self, branch: TrieBranch) -> bool:
        """FST -> ART: materialize one ART node for the branch (cf. (1) in
        Figure 10).  Children become compact branches one level deeper.

        Transactional: the ART node and its child wrappers are built off
        to the side and attached with a single swap; an exception anywhere
        before the swap (allocation, label collection, an injected fault)
        leaves the branch compact and all counters untouched.
        """
        if branch.expanded or branch.detached:
            return False
        fault_point("trie.expand.read")
        entries = self._fst.children(branch.fst_node)
        fault_point("trie.expand.build")
        node = art_node_for_fanout(len(entries))
        new_branches = 0
        for label, child, value in entries:
            if value is not None:
                node.set_child(label, value)
            else:
                node.set_child(label, TrieBranch(child, branch.level + 1))
                new_branches += 1
        fault_point("trie.expand.swap")
        branch.art_node = node
        self._num_branches += new_branches
        self.counters.add("migration:fst->art")
        self.counters.add("migration_label:fst->art", len(entries))
        return True

    def compact_branch(self, branch: TrieBranch) -> bool:
        """ART -> FST: drop the materialized node, keep the node number
        (cf. (2) in Figure 10).  Nested expanded descendants are dropped
        with it; their wrappers are detached so tracking can evict them.

        Transactional: descendants are *collected* first (read-only), and
        only then detached — the exception-free mutation phase happens
        entirely after the last injection point, so a failed compaction
        changes nothing.
        """
        if not branch.expanded or branch.detached:
            return False
        fault_point("trie.compact.collect")
        descendants: List[TrieBranch] = []
        self._collect_branches(branch.art_node, descendants)
        fault_point("trie.compact.swap")
        branch.art_node = None
        for child in descendants:
            child.detached = True
            self._num_branches -= 1
            self.manager.forget(child)
        self.counters.add("migration:art->fst")
        return True

    def _collect_branches(self, node: ARTNode, found: List[TrieBranch]) -> None:
        for _, child in node.children_items():
            if isinstance(child, TrieBranch):
                found.append(child)
                if child.expanded:
                    self._collect_branches(child.art_node, found)

    # ------------------------------------------------------------------
    # Offline training (Section 3.2)
    # ------------------------------------------------------------------
    def train(
        self,
        workload_keys: Sequence[bytes],
        budget: Optional[MemoryBudget] = None,
        rounds: int = 4,
    ) -> int:
        """Expand the branches a historic workload touches most.

        Replays ``workload_keys`` (without sampling), ranks touched
        branches by frequency, and expands best-first until the budget is
        hit.  Because expansion reveals one more level of branches, the
        trace is replayed for up to ``rounds`` refinement rounds.
        """
        budget = budget or MemoryBudget.unbounded()
        was_adaptive = self.adaptive
        self.adaptive = False
        migrated = 0
        try:
            for _ in range(rounds):
                trace = []
                for key in workload_keys:
                    branch = self._branch_on_path(key)
                    if branch is not None:
                        trace.append((branch, AccessType.READ))
                if not trace:
                    break
                progressed = False
                for branch in rank_units(trace):
                    if budget.exceeded(self.used_memory(), self.num_keys):
                        return migrated
                    if branch.expanded or branch.detached:
                        continue
                    if self.expand_branch(branch):
                        migrated += 1
                        progressed = True
                if not progressed:
                    break
        finally:
            self.adaptive = was_adaptive
        return migrated

    def _branch_on_path(self, key: bytes) -> Optional[TrieBranch]:
        """The first compact branch a lookup for ``key`` crosses."""
        current = self._root
        depth = 0
        while True:
            if isinstance(current, TrieBranch):
                if not current.expanded:
                    return current
                current = current.art_node
                continue
            if current is None or depth >= len(key):
                return None
            child = current.find_child(key[depth])
            depth += 1
            if child is None or isinstance(child, int):
                return None
            current = child

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def expanded_fst_nodes(self) -> List[int]:
        """FST node numbers of all currently expanded branches."""
        numbers: List[int] = []

        def walk(current) -> None:
            if isinstance(current, TrieBranch):
                if current.expanded:
                    numbers.append(current.fst_node)
                    walk(current.art_node)
                return
            for _, child in current.children_items():
                if not isinstance(child, int):
                    walk(child)

        if self._root is not None:
            walk(self._root)
        return sorted(numbers)

    def to_bytes(self) -> bytes:
        """Serialize the trie: the FST plus the expansion layout.

        A trained trie round-trips exactly — the offline-training story of
        Section 3.2 (build and train centrally, ship to query nodes).
        Run-time sampling state is deliberately not persisted.
        """
        import struct

        fst_blob = self._fst.to_bytes()
        expanded = self.expanded_fst_nodes()
        header = struct.pack("<4sQQQ", b"AHT1", self.art_levels, len(fst_blob), len(expanded))
        body = b"".join(struct.pack("<Q", number) for number in expanded)
        return header + fst_blob + body

    @classmethod
    def from_bytes(cls, blob: bytes, adaptive: bool = True) -> "HybridTrie":
        """Load a trie serialized with :meth:`to_bytes`.

        Raises :class:`~repro.fst.serialize.CorruptSerializationError` on
        a truncated or inconsistent blob (the embedded FST additionally
        carries its own checksum).
        """
        import struct

        from repro.fst.serialize import CorruptSerializationError

        header = struct.Struct("<4sQQQ")
        if len(blob) < header.size:
            raise CorruptSerializationError("truncated HybridTrie blob (incomplete header)")
        magic, art_levels, fst_length, expanded_count = header.unpack_from(blob, 0)
        if magic != b"AHT1":
            raise CorruptSerializationError(f"bad magic {magic!r}; not a HybridTrie blob")
        offset = header.size
        if offset + fst_length > len(blob):
            raise CorruptSerializationError(
                f"embedded FST of {fst_length} bytes overruns the blob"
            )
        fst = FST.from_bytes(blob[offset : offset + fst_length])
        offset += fst_length
        if offset + 8 * expanded_count != len(blob):
            raise CorruptSerializationError(
                f"expansion list of {expanded_count} entries does not match "
                f"the {len(blob) - offset} remaining bytes"
            )
        expanded = {
            struct.unpack_from("<Q", blob, offset + 8 * index)[0]
            for index in range(expanded_count)
        }
        if any(node >= fst.num_nodes for node in expanded):
            raise CorruptSerializationError(
                "expansion list names FST nodes beyond the node count"
            )
        trie = cls.__new__(cls)
        trie.counters = OpCounters()
        trie._fst = fst
        fst.counters = trie.counters
        trie._num_keys = fst.num_keys
        trie.art_levels = max(0, min(art_levels, fst.height))
        trie._num_branches = 0
        trie._root = trie._build_upper(0, 0) if trie._num_keys else None
        trie.adaptive = adaptive
        trie.manager = AdaptationManager(
            trie, ManagerConfig(encoding_order=TRIE_ENCODING_ORDER)
        )
        if not adaptive:
            trie.manager.disable()
        # Re-expand outer-to-inner: expanding a branch reveals its children
        # as new compact branches, so iterate until no listed node remains
        # compact.
        progressed = True
        while expanded and progressed:
            progressed = False
            stack = [trie._root] if trie._root is not None else []
            while stack:
                current = stack.pop()
                if isinstance(current, TrieBranch):
                    if current.fst_node in expanded and not current.expanded:
                        trie.expand_branch(current)
                        expanded.discard(current.fst_node)
                        progressed = True
                    if current.expanded:
                        stack.append(current.art_node)
                    continue
                for _, child in current.children_items():
                    if not isinstance(child, int):
                        stack.append(child)
        return trie

    # ------------------------------------------------------------------
    # AdaptiveIndex protocol
    # ------------------------------------------------------------------
    def tracked_population(self) -> int:
        """Number of trackable units (n in Equation 1)."""
        return max(1, self._num_branches)

    def used_memory(self) -> int:
        """Modeled index size in bytes (AdaptiveIndex protocol)."""
        return self.size_bytes()

    @property
    def num_keys(self) -> int:
        """Number of indexed keys."""
        return self._num_keys

    def encoding_of(self, identifier: Hashable) -> Optional[TrieEncoding]:
        """Current encoding of a tracked unit (AdaptiveIndex protocol)."""
        if isinstance(identifier, TrieBranch) and not identifier.detached:
            return identifier.encoding
        return None

    def migrate(
        self,
        identifier: Hashable,
        target_encoding: TrieEncoding,
        context: object,
    ) -> bool:
        """Re-encode one unit via its callback (AdaptiveIndex protocol)."""
        if not isinstance(identifier, TrieBranch):
            return False
        if target_encoding is TrieEncoding.ART:
            return self.expand_branch(identifier)
        return self.compact_branch(identifier)

    def encoding_census(self) -> Dict[TrieEncoding, Tuple[int, float]]:
        """Encoding -> (count, avg bytes) map (AdaptiveIndex protocol)."""
        expanded_sizes: List[int] = []
        compact_count = 0

        def walk(current) -> None:
            nonlocal compact_count
            if isinstance(current, TrieBranch):
                if current.expanded:
                    expanded_sizes.append(current.art_node.size_bytes())
                    walk(current.art_node)
                else:
                    compact_count += 1
                return
            for _, child in current.children_items():
                if not isinstance(child, int):
                    walk(child)

        if self._root is not None:
            walk(self._root)
        census: Dict[TrieEncoding, Tuple[int, float]] = {}
        census[TrieEncoding.FST] = (compact_count, float(BRANCH_POINTER_BYTES))
        if expanded_sizes:
            census[TrieEncoding.ART] = (
                len(expanded_sizes),
                sum(expanded_sizes) / len(expanded_sizes),
            )
        return census

    # ------------------------------------------------------------------
    # Self-verification
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Prove structural integrity; raises
        :class:`~repro.core.invariants.InvariantViolation` when branch
        accounting, the encoding census, the key set, or the underlying
        FST's LOUDS structure is inconsistent."""
        from repro.core.invariants import validate

        validate(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fst(self) -> FST:
        """The underlying global FST."""
        return self._fst

    @property
    def num_branches(self) -> int:
        """Number of live tracked branches."""
        return self._num_branches

    def expanded_branch_count(self) -> int:
        """Number of branches currently expanded to ART."""
        census = self.encoding_census()
        count, _ = census.get(TrieEncoding.ART, (0, 0.0))
        return count

    def size_bytes(self) -> int:
        """Modeled footprint: the (complete, static) FST plus every
        materialized ART node plus per-branch pointer bookkeeping."""
        total = self._fst.size_bytes()
        total += self._num_branches * BRANCH_POINTER_BYTES

        def walk(current) -> int:
            if isinstance(current, TrieBranch):
                return walk(current.art_node) if current.expanded else 0
            size = current.size_bytes()
            for _, child in current.children_items():
                if not isinstance(child, int):
                    size += walk(child)
            return size

        if self._root is not None:
            total += walk(self._root)
        return total

    def total_size_bytes(self) -> int:
        """Index plus the sampling framework's own footprint."""
        return self.size_bytes() + self.manager.size_bytes()

    def stats(self) -> dict:
        """Uniform stats dict including the adaptation block."""
        from repro.obs.introspect import base_stats

        stats = base_stats(
            self.stats_family,
            num_keys=self._num_keys,
            size_bytes=self.size_bytes(),
            census=self.encoding_census(),
            counters_snapshot=self.counters.snapshot(),
            manager=self.manager,
        )
        stats["art_levels"] = self.art_levels
        stats["num_branches"] = self._num_branches
        stats["expanded_branches"] = self.expanded_branch_count()
        stats["total_size_bytes"] = self.total_size_bytes()
        return stats

    def describe(self) -> str:
        """Human-readable rendering of :meth:`stats`."""
        from repro.obs.introspect import format_stats

        return format_stats(self.stats())

    def __len__(self) -> int:
        return self._num_keys
