"""Tagged branch identifiers for the Hybrid Trie.

The paper's Hybrid Trie tags child pointers with an extra bit to
distinguish ART pointers, inlined TIDs, and inlined FST node numbers
(Section 4.2.1); the tagged pointer doubles as the unit identifier the
adaptation manager tracks.  The Python analogue is :class:`TrieBranch`:
a small wrapper with *stable identity* that is either

* **compact** — it carries only ``fst_node``, the LOUDS node number where
  this subtree lives inside the global FST, or
* **expanded** — it additionally carries ``art_node``, a materialized ART
  node whose children are values or further (compact) branches.

Because the wrapper survives expansion and compaction, tracked access
statistics survive encoding migrations, as the paper requires.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional


class TrieEncoding(enum.Enum):
    """Branch encodings, ordered compact -> fast for the manager."""

    FST = "fst"
    ART = "art"

    def __str__(self) -> str:
        return self.value


_branch_ids = itertools.count(1)

# Modeled bookkeeping per branch: one tagged 8-byte pointer slot.
BRANCH_POINTER_BYTES = 8


class TrieBranch:
    """A subtree root below the ART cutoff, with stable identity."""

    __slots__ = ("branch_id", "fst_node", "level", "art_node", "detached")

    def __init__(self, fst_node: int, level: int) -> None:
        self.branch_id = next(_branch_ids)
        self.fst_node = fst_node
        self.level = level
        self.art_node: Optional[object] = None
        self.detached = False

    def __hash__(self) -> int:
        return self.branch_id

    def __eq__(self, other: object) -> bool:
        return self is other

    @property
    def encoding(self) -> TrieEncoding:
        """The current physical encoding."""
        return TrieEncoding.ART if self.art_node is not None else TrieEncoding.FST

    @property
    def expanded(self) -> bool:
        """True when the branch is materialized as an ART node."""
        return self.art_node is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "detached" if self.detached else str(self.encoding)
        return f"TrieBranch(id={self.branch_id}, fst_node={self.fst_node}, level={self.level}, {state})"
