"""Hybrid Trie (AHI-Trie): level-wise ART + FST with run-time refinement.

Built from a static key set, :class:`~repro.hybridtrie.tree.HybridTrie`
represents the upper ``c_art`` levels as ART nodes and everything below
as one global FST (dense upper region, sparse lower region).  At the
boundary — and inside every expanded branch — *tagged branches*
(:class:`~repro.hybridtrie.tagged.TrieBranch`) stand in for the paper's
tagged pointers: each holds either an FST node number (compact) or a
materialized ART node (expanded).  The adaptation manager expands hot
branches and compacts cold ones at run-time; inserts are unsupported,
matching the paper (Section 4.2.2 leaves them to future work).
"""

from repro.hybridtrie.tagged import TrieBranch, TrieEncoding
from repro.hybridtrie.tree import HybridTrie

__all__ = ["HybridTrie", "TrieBranch", "TrieEncoding"]
