"""Deterministic fault injection for structure-modifying operations.

The paper's migrations run *online, under load*; the one thing they must
never do is corrupt the index.  This package provides the test scaffold
for that guarantee: migration and serialization paths declare named
*injection points* (:func:`fault_point`), and a seedable
:class:`FaultInjector` decides — deterministically — which of those
calls raise an :class:`InjectedFault`.  See ``docs/robustness.md``.
"""

from repro.faults.injector import (
    FaultInjector,
    InjectedFault,
    active_injector,
    fault_point,
)

__all__ = [
    "FaultInjector",
    "InjectedFault",
    "active_injector",
    "fault_point",
]
