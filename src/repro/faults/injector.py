"""The seedable fault injector and its injection-point hook.

Structure-modifying code (leaf re-encoding, trie expansion/compaction,
dual-stage merges, serialization) calls :func:`fault_point` with a stable
site name at every step that could fail in a real system — allocation,
re-encoding, the pointer swap.  With no injector installed the call is a
near-free global check; under an installed :class:`FaultInjector` it may
raise :class:`InjectedFault` according to one of three deterministic
modes:

* **fail-at-nth-call** — ``fail_at=n`` arms the n-th matching call
  (1-indexed), reproducing one exact crash point;
* **fail-by-site** — ``site="trie.expand.swap"`` restricts any mode to
  one site (or a prefix with a trailing ``*``); a sequence of patterns
  arms every site matching *any* of them, which is how the durability
  crash campaign targets a whole write path
  (``site=("durability.wal.append", "service.split.*")``);
* **failure-rate** — ``rate=p`` fails each matching call with
  probability ``p`` from a seeded PRNG, for randomized campaigns.

An injector with no failure mode configured is a pure *observer*: it
still counts every site it crosses, which is how tests enumerate the
injection points of an operation before parametrizing over them.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.obs.runtime import active_registry


class InjectedFault(RuntimeError):
    """Raised by an armed injection point; carries the site and call #."""

    def __init__(self, site: str, call_number: int) -> None:
        super().__init__(f"injected fault at {site!r} (matching call #{call_number})")
        self.site = site
        self.call_number = call_number


# The currently-installed injector; None keeps fault_point a cheap no-op.
_ACTIVE: Optional["FaultInjector"] = None


def fault_point(site: str) -> None:
    """Declare one injection point; raises under an armed injector."""
    if _ACTIVE is not None:
        _ACTIVE.check(site)


def active_injector() -> Optional["FaultInjector"]:
    """The installed injector, or None."""
    return _ACTIVE


class FaultInjector:
    """Deterministic, seedable source of injected failures.

    Use as a context manager to install it for a code region::

        with FaultInjector(site="bptree.migrate.*", rate=0.2, seed=7) as inj:
            run_workload()
        assert inj.failures_injected > 0

    ``max_failures`` caps the total number of raises (the default ``None``
    never stops); a cap of 1 turns any mode into a one-shot crash.
    """

    def __init__(
        self,
        *,
        site: Union[str, Sequence[str], None] = None,
        fail_at: Optional[int] = None,
        rate: float = 0.0,
        seed: int = 0,
        max_failures: Optional[int] = None,
    ) -> None:
        if fail_at is not None and fail_at < 1:
            raise ValueError(f"fail_at is 1-indexed; got {fail_at}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        if max_failures is not None and max_failures < 0:
            raise ValueError(f"max_failures must be >= 0, got {max_failures}")
        self.site = site
        #: The site filter, normalized to a tuple of patterns (empty =
        #: match everything).  Kept separate from ``site`` so ``repr``
        #: and introspection show what the caller actually passed.
        self._site_patterns: Tuple[str, ...] = (
            (site,) if isinstance(site, str) else tuple(site) if site is not None else ()
        )
        for pattern in self._site_patterns:
            if not pattern:
                raise ValueError("site patterns must be non-empty strings")
        self.fail_at = fail_at
        self.rate = rate
        self.max_failures = max_failures
        self._rng = random.Random(seed)
        self.calls_by_site: Dict[str, int] = {}
        self.failures_by_site: Dict[str, int] = {}
        self.matching_calls = 0
        self.failures_injected = 0
        self._previous: Optional["FaultInjector"] = None

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Make this the active injector (remembers any previous one)."""
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        return self

    def uninstall(self) -> None:
        """Restore whichever injector was active before :meth:`install`."""
        global _ACTIVE
        _ACTIVE = self._previous
        self._previous = None

    def __enter__(self) -> "FaultInjector":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()

    # ------------------------------------------------------------------
    # The decision
    # ------------------------------------------------------------------
    def matches(self, site: str) -> bool:
        """True when ``site`` passes this injector's site filter.

        With several patterns, matching *any* of them arms the site;
        each pattern is an exact name or a trailing-``*`` prefix.
        """
        if not self._site_patterns:
            return True
        for pattern in self._site_patterns:
            if pattern.endswith("*"):
                if site.startswith(pattern[:-1]):
                    return True
            elif site == pattern:
                return True
        return False

    def check(self, site: str) -> None:
        """Count the crossing of ``site``; raise when armed for it."""
        self.calls_by_site[site] = self.calls_by_site.get(site, 0) + 1
        if not self.matches(site):
            return
        self.matching_calls += 1
        if self.max_failures is not None and self.failures_injected >= self.max_failures:
            return
        should_fail = False
        if self.fail_at is not None and self.matching_calls == self.fail_at:
            should_fail = True
        elif self.rate > 0.0 and self._rng.random() < self.rate:
            should_fail = True
        if should_fail:
            self.failures_injected += 1
            self.failures_by_site[site] = self.failures_by_site.get(site, 0) + 1
            registry = active_registry()
            if registry is not None:
                registry.counter("faults.injected").inc()
                # repro: ignore[RA004] -- per-site labels are caller-supplied
                # and only formatted when a fault actually fires (cold path).
                registry.counter(f"faults.injected:{site}").inc()
            raise InjectedFault(site, self.matching_calls)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def sites_seen(self) -> Dict[str, int]:
        """Site -> crossing count, for enumerating injection points."""
        return dict(self.calls_by_site)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector(site={self.site!r}, fail_at={self.fail_at}, "
            f"rate={self.rate}, injected={self.failures_injected})"
        )
