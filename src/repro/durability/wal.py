"""Per-shard write-ahead log: CRC-framed records, group commit, torn-tail reads.

One WAL file per shard log, in the FST2 framing discipline:

.. code-block:: text

    file   := header frame*
    header := magic "RWAL" (4) || version u32          -- 8 bytes
    frame  := body_len u32 || crc32(body) u32 || body  -- 8-byte frame header
    body   := lsn u64 || op u8 || key || [value]       -- codec.py encodings

``op`` is ``1`` (put, key+value follow) or ``2`` (delete, key only).
LSNs are assigned under the log's internal lock and strictly increase;
a frame whose LSN does not exceed its predecessor's is treated as
corruption.

**Group commit**: :meth:`WriteAheadLog.append_batch` encodes every
record of a batch, crosses the ``durability.wal.append`` fault point
*once*, and lands the whole batch with a single OS write — and, under
the ``"batch"`` sync policy, a single ``fsync``.  That is the entire
durability overhead of a ``put_many``, amortized over the batch.

**Torn tails**: :func:`read_frames` stops at the first frame that is
truncated, fails its CRC, or breaks LSN monotonicity, and reports how
many trailing bytes it refused — a torn final frame from a mid-write
crash is *skipped and counted*, never raised, because with fsync-aware
acknowledgment only unacknowledged records can be torn.  Recovery
truncates the file back to the valid prefix before appending again.

**Poisoning**: an append that fails part-way (an injected tear, or a
real partial ``write()``/``fsync`` error) may leave garbage mid-file.
Because :func:`read_frames` stops at the first bad frame, any frame
appended *after* that garbage would be unreachable on replay — an
acknowledged-then-lost write.  So the first append failure poisons the
log: every later :meth:`~WriteAheadLog.append_batch` (and checkpoint
truncation) raises :class:`WalPoisonedError` until recovery re-opens
the file, which drops the torn tail first.

For fault campaigns, a log built with a ``tear_rng`` simulates the
mid-write crash honestly: when the ``durability.wal.append`` point
fires, a random *prefix* of the encoded batch is written before the
fault propagates, exactly what a real kill during the write syscall
leaves behind.
"""

from __future__ import annotations

import os
import random
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.durability.codec import Key, decode_key, decode_value, encode_key, encode_value
from repro.faults.injector import InjectedFault, fault_point
from repro.fst.serialize import CorruptSerializationError
from repro.obs.runtime import active_registry

WAL_MAGIC = b"RWAL"
WAL_VERSION = 1

OP_PUT = 1
OP_DELETE = 2

_FILE_HEADER = struct.Struct("<4sI")
_FRAME_HEADER = struct.Struct("<II")
_LSN_OP = struct.Struct("<QB")

#: A single frame body longer than this is garbage framing (128 MiB).
MAX_FRAME_BYTES = 128 * 1024 * 1024

#: Sync policies: ``"none"`` flushes to the OS per batch; ``"batch"``
#: additionally ``fsync``\ s once per batch (the group-commit policy).
SYNC_POLICIES = ("none", "batch")

#: RA004: literal instrument names, never formatted on the write path.
_COUNTERS = {
    "batches": "durability.wal.append_batches",
    "records": "durability.wal.append_records",
    "bytes": "durability.wal.append_bytes",
    "fsyncs": "durability.wal.fsyncs",
    "truncations": "durability.wal.truncations",
    "torn_tails": "durability.wal.torn_tails",
    "torn_bytes": "durability.wal.torn_bytes",
    "poisoned": "durability.wal.poisoned",
}

#: One WAL record: ``(op, key, value)`` — value ignored for deletes.
Record = Tuple[int, Key, Optional[int]]


class LogSealedError(RuntimeError):
    """An append reached a log sealed by a shard split/merge."""


class WalPoisonedError(RuntimeError):
    """An append reached a log fenced off by an earlier append failure.

    The file may hold garbage after its last intact frame, and
    :func:`read_frames` would silently drop anything appended past that
    garbage — so the log refuses every durable operation until it is
    re-opened through recovery (which truncates the torn tail first).
    """


@dataclass(frozen=True)
class Frame:
    """One decoded WAL frame."""

    lsn: int
    op: int
    key: Key
    value: Optional[int]


@dataclass(frozen=True)
class TailInfo:
    """What :func:`read_frames` found at the end of a WAL file."""

    valid_bytes: int  # prefix length (incl. header) holding intact frames
    torn_bytes: int  # trailing bytes refused
    reason: Optional[str]  # None when the file ended cleanly

    @property
    def torn(self) -> bool:
        """True when trailing bytes were refused."""
        return self.torn_bytes > 0


def encode_frame(lsn: int, op: int, key: Key, value: Optional[int]) -> bytes:
    """One framed record: frame header plus CRC-covered body."""
    if op == OP_PUT:
        if value is None:
            raise ValueError("put records carry a value")
        body = _LSN_OP.pack(lsn, op) + encode_key(key) + encode_value(value)
    elif op == OP_DELETE:
        body = _LSN_OP.pack(lsn, op) + encode_key(key)
    else:
        raise ValueError(f"unknown WAL op {op}")
    return _FRAME_HEADER.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


def _decode_body(body: bytes) -> Frame:
    lsn, op = _LSN_OP.unpack_from(body, 0)
    offset = _LSN_OP.size
    key, offset = decode_key(body, offset)
    value: Optional[int] = None
    if op == OP_PUT:
        value, offset = decode_value(body, offset)
    elif op != OP_DELETE:
        raise CorruptSerializationError(f"unknown WAL op {op}")
    if offset != len(body):
        raise CorruptSerializationError(f"{len(body) - offset} trailing bytes in WAL frame")
    return Frame(lsn, op, key, value)


def read_frames(path: Path) -> Tuple[List[Frame], TailInfo]:
    """Every intact frame of the WAL at ``path``, plus tail diagnostics.

    A missing file reads as empty.  Parsing stops at the first frame
    that is truncated, fails its CRC, or does not increase the LSN; the
    refused suffix is reported in :class:`TailInfo`, never raised —
    only a corrupt *file header* raises, because that means the file
    was never a WAL at all.
    """
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return [], TailInfo(0, 0, None)
    if len(blob) < _FILE_HEADER.size:
        # A crash between file creation and the header write.
        return [], TailInfo(0, len(blob), "incomplete file header")
    magic, version = _FILE_HEADER.unpack_from(blob, 0)
    if magic != WAL_MAGIC:
        raise CorruptSerializationError(f"bad WAL magic {magic!r}")
    if version != WAL_VERSION:
        raise CorruptSerializationError(f"unsupported WAL version {version}")
    frames: List[Frame] = []
    offset = _FILE_HEADER.size
    last_lsn = 0
    reason: Optional[str] = None
    while offset < len(blob):
        if offset + _FRAME_HEADER.size > len(blob):
            reason = "truncated frame header"
            break
        body_len, crc = _FRAME_HEADER.unpack_from(blob, offset)
        if body_len > MAX_FRAME_BYTES:
            reason = f"frame declares {body_len} bytes (over the ceiling)"
            break
        body_end = offset + _FRAME_HEADER.size + body_len
        if body_end > len(blob):
            reason = "truncated frame body"
            break
        body = blob[offset + _FRAME_HEADER.size : body_end]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            reason = "frame checksum mismatch"
            break
        try:
            frame = _decode_body(body)
        except CorruptSerializationError as error:
            reason = str(error)
            break
        if frame.lsn <= last_lsn:
            reason = f"LSN {frame.lsn} does not advance past {last_lsn}"
            break
        frames.append(frame)
        last_lsn = frame.lsn
        offset = body_end
    return frames, TailInfo(offset, len(blob) - offset, reason)


class WriteAheadLog:
    """Append-only framed log with group commit and sealed-log fencing.

    ``next_lsn`` seeds LSN assignment (recovery passes ``last + 1``).
    Appends, truncation, and sealing serialize on an internal lock so
    thread-safe (OLC) shards may write concurrently; note that for
    *same-key* concurrent upserts the WAL order is authoritative on
    replay, exactly as nondeterministic as the in-memory apply order.
    """

    def __init__(
        self,
        path: Path,
        sync: str = "batch",
        next_lsn: int = 1,
        create: bool = False,
        tear_rng: Optional[random.Random] = None,
    ) -> None:
        if sync not in SYNC_POLICIES:
            raise ValueError(f"sync policy must be one of {SYNC_POLICIES}, got {sync!r}")
        if next_lsn < 1:
            raise ValueError(f"next_lsn must be >= 1, got {next_lsn}")
        self.path = path
        self.sync = sync
        self._lock = threading.Lock()
        self._next_lsn = next_lsn
        self._sealed = False
        self._poisoned: Optional[str] = None
        self._tear_rng = tear_rng
        if create or not path.exists():
            handle = open(path, "wb")
            handle.write(_FILE_HEADER.pack(WAL_MAGIC, WAL_VERSION))
            handle.flush()
            if sync == "batch":
                os.fsync(handle.fileno())
        else:
            handle = open(path, "ab")
        self._handle = handle

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        """The highest LSN handed out so far (0 before any append)."""
        return self._next_lsn - 1

    @property
    def sealed(self) -> bool:
        """True once a split/merge has fenced this log off."""
        return self._sealed

    @property
    def poisoned(self) -> Optional[str]:
        """Why a failed append fenced this log off (None when healthy)."""
        return self._poisoned

    def size_bytes(self) -> int:
        """Current on-disk size of the log file."""
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0

    # ------------------------------------------------------------------
    # Appends (group commit)
    # ------------------------------------------------------------------
    def append_batch(self, records: Sequence[Record]) -> Tuple[int, int]:
        """Durably append ``records`` as one group commit.

        Assigns consecutive LSNs, writes every frame with a single OS
        write, and — under the ``"batch"`` policy — issues exactly one
        ``fsync``.  Returns ``(first_lsn, last_lsn)``.  The
        ``durability.wal.append`` fault point fires before the write;
        with a ``tear_rng`` installed, an injected fault first lands a
        random prefix of the batch, simulating a mid-write crash.
        """
        if not records:
            raise ValueError("refusing to append an empty batch")
        with self._lock:
            if self._sealed:
                raise LogSealedError(f"log {self.path.name} is sealed (shard was re-keyed)")
            self._check_poisoned()
            first = self._next_lsn
            parts = []
            lsn = first
            for op, key, value in records:
                parts.append(encode_frame(lsn, op, key, value))
                lsn += 1
            blob = b"".join(parts)
            try:
                fault_point("durability.wal.append")
            except InjectedFault:
                # The simulated kill: a random prefix of the batch lands
                # before the fault propagates.  Whatever actually hit the
                # file, the log must be fenced — see _poison below.
                self._poison("injected append fault (possible torn write)")
                if self._tear_rng is not None:
                    self._handle.write(blob[: self._tear_rng.randrange(len(blob))])
                    self._handle.flush()
                raise
            try:
                self._handle.write(blob)
                self._handle.flush()
                if self.sync == "batch":
                    os.fsync(self._handle.fileno())
            except BaseException as error:
                self._poison(f"append failed mid-write: {error!r}")
                raise
            self._next_lsn = lsn
        registry = active_registry()
        if registry is not None:
            registry.counter(_COUNTERS["batches"]).inc()
            registry.counter(_COUNTERS["records"]).inc(len(records))
            registry.counter(_COUNTERS["bytes"]).inc(len(blob))
            if self.sync == "batch":
                registry.counter(_COUNTERS["fsyncs"]).inc()
        return first, lsn - 1

    def _poison(self, reason: str) -> None:
        """Fence the log after a failed append (caller holds the lock).

        ``_next_lsn`` was not advanced, so the failed records were never
        acknowledged; what must never happen is a *later* acknowledged
        append landing after the garbage this failure may have left,
        where replay cannot reach it.  Only re-opening through recovery
        (a fresh instance, torn tail dropped) lifts the fence.
        """
        if self._poisoned is not None:
            return
        self._poisoned = reason
        registry = active_registry()
        if registry is not None:
            registry.counter(_COUNTERS["poisoned"]).inc()

    def _check_poisoned(self) -> None:
        if self._poisoned is not None:
            raise WalPoisonedError(
                f"log {self.path.name} is poisoned ({self._poisoned}); "
                "re-open it via recovery before appending"
            )

    # ------------------------------------------------------------------
    # Truncation (checkpoint support)
    # ------------------------------------------------------------------
    def truncate_upto(self, cutoff_lsn: int) -> int:
        """Drop every frame with ``lsn <= cutoff_lsn``; returns frames kept.

        The survivor file is built aside and published with one
        ``os.replace`` behind the ``durability.wal.truncate`` fault
        point — a crash before the swap leaves the longer (harmlessly
        redundant) log in place.
        """
        from repro.core.atomicio import discard_aside, publish_aside, write_aside

        with self._lock:
            self._check_poisoned()
            self._handle.flush()
            frames, _tail = read_frames(self.path)
            kept = [frame for frame in frames if frame.lsn > cutoff_lsn]
            blob = _FILE_HEADER.pack(WAL_MAGIC, WAL_VERSION) + b"".join(
                encode_frame(f.lsn, f.op, f.key, f.value) for f in kept
            )
            tmp = write_aside(self.path, blob, durable=self.sync == "batch")
            try:
                fault_point("durability.wal.truncate")
                self._handle.close()
                publish_aside(tmp, self.path, durable=self.sync == "batch")
            except BaseException:
                discard_aside(tmp)
                # The fault point precedes the close() above, so the old
                # handle is usually still open: release it before
                # reopening or every aborted truncation leaks a
                # descriptor (close() is idempotent when it did run).
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = open(self.path, "ab")
                raise
            self._handle = open(self.path, "ab")
        registry = active_registry()
        if registry is not None:
            registry.counter(_COUNTERS["truncations"]).inc()
        return len(kept)

    def drop_torn_tail(self, tail: TailInfo) -> None:
        """Cut a refused suffix off the file (recovery housekeeping)."""
        if not tail.torn:
            return
        with self._lock:
            self._handle.flush()
            self._handle.close()
            if tail.valid_bytes < _FILE_HEADER.size:
                # The crash landed inside the 8-byte file header;
                # os.truncate would zero-PAD up to header size, leaving
                # invalid magic that makes every later read_frames
                # raise.  Rewrite a fresh empty log instead.
                with open(self.path, "wb") as handle:
                    handle.write(_FILE_HEADER.pack(WAL_MAGIC, WAL_VERSION))
                    handle.flush()
                    if self.sync == "batch":
                        os.fsync(handle.fileno())
            else:
                os.truncate(self.path, tail.valid_bytes)
            self._handle = open(self.path, "ab")
        registry = active_registry()
        if registry is not None:
            registry.counter(_COUNTERS["torn_tails"]).inc()
            registry.counter(_COUNTERS["torn_bytes"]).inc(tail.torn_bytes)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def seal(self) -> None:
        """Fence the log: every later append raises :class:`LogSealedError`."""
        with self._lock:
            self._sealed = True
            self._handle.flush()
            if self.sync == "batch":
                os.fsync(self._handle.fileno())

    def close(self) -> None:
        """Release the file handle (idempotent; appends stay possible only
        through a fresh instance)."""
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    def delete_file(self) -> None:
        """Close and remove the log file (post-seal cleanup)."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass
