"""Durability root: directory layout, routing manifest, orphan sweeping.

The :class:`DurabilityManager` owns one directory tree::

    root/
      MANIFEST.json      -- the durable routing epoch (CRC-wrapped JSON)
      wal/<log_id>.wal   -- one WAL per live shard log
      snap/<log_id>.<lsn>.snap

``MANIFEST.json`` is the *commit point* of the whole store.  It names
the current epoch, the partitioner, and the ordered shard log ids; it
is rewritten — build-aside, ``os.replace``, directory fsync, behind the
``durability.manifest.swap`` fault point — exactly when shard topology
changes (bootstrap, split, merge).  Recovery trusts only logs the
manifest names: a crash mid-split leaves either the old manifest (new
half-built logs are swept as orphans) or the new one (old sealed logs
are swept), so there is no torn routing state to reason about.

Log ids encode the routing epoch (``e00000017-p0003`` = epoch 17,
position 3), which is what lets split/merge *re-key* shards: retiring
a shard seals its log under the old id and builds successors under
fresh ids, so a stale writer can never durably append to a log that
the manifest no longer reaches.
"""

from __future__ import annotations

import json
import random
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.atomicio import discard_aside, publish_aside, write_aside
from repro.durability.codec import Key
from repro.durability.log import DurableLog, RecoveryResult
from repro.faults.injector import fault_point
from repro.fst.serialize import CorruptSerializationError
from repro.obs.runtime import active_registry

MANIFEST_FORMAT = 1

#: RA004: literal instrument names.
_COUNTERS = {
    "publishes": "durability.manifest.publishes",
    "orphans": "durability.manifest.orphans_removed",
}

Pair = Tuple[Key, int]


@dataclass(frozen=True)
class Manifest:
    """The durable routing epoch: which logs exist and how keys route.

    ``shards`` lists the *primary* log id per routing position.  A
    replicated store additionally carries ``replicas``: the replication
    factor, the per-replica divergence profile names (so recovery
    rebuilds each copy under the same policy it crashed with), and the
    full per-shard replica log id lists — every id a recovery must
    consider reachable.
    """

    epoch: int
    partitioner: Dict[str, Any]
    shards: List[str]  # primary log ids, in routing-table order
    #: Replication block: {"factor": int, "profiles": [str], "logs":
    #: [[str]]} — or None for a plain single-copy store.
    replicas: Optional[Dict[str, Any]] = None


def partitioner_spec(partitioner: Any) -> Dict[str, Any]:
    """JSON-safe description of a service partitioner."""
    from repro.service.partition import HashPartitioner, RangePartitioner

    if isinstance(partitioner, HashPartitioner):
        return {"kind": "hash", "num_shards": partitioner.num_shards}
    if isinstance(partitioner, RangePartitioner):
        boundaries = []
        for boundary in partitioner.boundaries:
            if isinstance(boundary, int):
                boundaries.append({"t": "int", "v": str(boundary)})
            else:
                boundaries.append({"t": "bytes", "v": bytes(boundary).hex()})
        return {"kind": "range", "boundaries": boundaries}
    raise TypeError(f"cannot persist partitioner {type(partitioner).__name__}")


def build_partitioner(spec: Dict[str, Any]) -> Any:
    """Rebuild a partitioner from its manifest spec."""
    from repro.service.partition import HashPartitioner, RangePartitioner

    kind = spec.get("kind")
    if kind == "hash":
        return HashPartitioner(int(spec["num_shards"]))
    if kind == "range":
        boundaries: List[Any] = []
        for boundary in spec["boundaries"]:
            if boundary["t"] == "int":
                boundaries.append(int(boundary["v"]))
            elif boundary["t"] == "bytes":
                boundaries.append(bytes.fromhex(boundary["v"]))
            else:
                raise CorruptSerializationError(f"unknown boundary type {boundary['t']!r}")
        return RangePartitioner(boundaries)
    raise CorruptSerializationError(f"unknown partitioner kind {kind!r}")


class DurabilityManager:
    """Owns a durability root directory and the logs living under it."""

    def __init__(
        self,
        root: Path,
        sync: str = "batch",
        retain: int = 2,
        tear_rng: Optional[random.Random] = None,
    ) -> None:
        self.root = Path(root)
        self.sync = sync
        self.retain = retain
        self.tear_rng = tear_rng
        self.wal_dir = self.root / "wal"
        self.snap_dir = self.root / "snap"
        self.root.mkdir(parents=True, exist_ok=True)
        self.wal_dir.mkdir(exist_ok=True)
        self.snap_dir.mkdir(exist_ok=True)

    @property
    def manifest_path(self) -> Path:
        return self.root / "MANIFEST.json"

    @staticmethod
    def log_id(epoch: int, position: int) -> str:
        """The durable name of the shard at ``position`` in ``epoch``."""
        return f"e{epoch:08d}-p{position:04d}"

    @staticmethod
    def replica_log_id(epoch: int, position: int, replica: int) -> str:
        """The durable name of one replica's private log.

        Replica 0 is the primary named in ``Manifest.shards``; every
        replica (0 included) carries the ``-rNN`` suffix so a replicated
        store's log ids never collide with a plain store's.
        """
        return f"{DurabilityManager.log_id(epoch, position)}-r{replica:02d}"

    # ------------------------------------------------------------------
    # Manifest (the commit point)
    # ------------------------------------------------------------------
    def publish_manifest(self, manifest: Manifest, allow_fault: bool = True) -> None:
        """Durably publish ``manifest`` as the new routing epoch.

        The JSON payload is CRC-wrapped and swapped in atomically
        behind the ``durability.manifest.swap`` fault point.  Rollback
        paths (re-publishing the *old* epoch after an aborted split)
        pass ``allow_fault=False`` so the undo cannot itself be killed
        by the injector mid-abort.
        """
        payload = {
            "format": MANIFEST_FORMAT,
            "epoch": manifest.epoch,
            "partitioner": manifest.partitioner,
            "shards": list(manifest.shards),
        }
        if manifest.replicas is not None:
            payload["replicas"] = manifest.replicas
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(encoded.encode("utf-8")) & 0xFFFFFFFF
        blob = json.dumps({"crc": crc, "payload": payload}, sort_keys=True).encode("utf-8")
        tmp = write_aside(self.manifest_path, blob)
        try:
            if allow_fault:
                fault_point("durability.manifest.swap")
            publish_aside(tmp, self.manifest_path)
        except BaseException:
            discard_aside(tmp)
            raise
        registry = active_registry()
        if registry is not None:
            registry.counter(_COUNTERS["publishes"]).inc()

    def read_manifest(self) -> Manifest:
        """The current routing epoch; raises if absent or corrupt."""
        try:
            wrapper = json.loads(self.manifest_path.read_bytes().decode("utf-8"))
        except FileNotFoundError:
            raise
        except (OSError, ValueError) as error:
            raise CorruptSerializationError(f"unreadable manifest: {error}") from error
        if not isinstance(wrapper, dict) or "crc" not in wrapper or "payload" not in wrapper:
            raise CorruptSerializationError("manifest is missing its crc/payload wrapper")
        payload = wrapper["payload"]
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        if zlib.crc32(encoded.encode("utf-8")) & 0xFFFFFFFF != wrapper["crc"]:
            raise CorruptSerializationError("manifest checksum mismatch")
        if payload.get("format") != MANIFEST_FORMAT:
            raise CorruptSerializationError(f"unsupported manifest format {payload.get('format')}")
        shards = payload["shards"]
        if not isinstance(shards, list) or not all(isinstance(s, str) for s in shards):
            raise CorruptSerializationError("manifest shard list is malformed")
        replicas = payload.get("replicas")
        if replicas is not None:
            if (
                not isinstance(replicas, dict)
                or not isinstance(replicas.get("factor"), int)
                or not isinstance(replicas.get("profiles"), list)
                or not isinstance(replicas.get("logs"), list)
                or not all(
                    isinstance(ids, list) and all(isinstance(i, str) for i in ids)
                    for ids in replicas["logs"]
                )
            ):
                raise CorruptSerializationError("manifest replica block is malformed")
        return Manifest(
            epoch=int(payload["epoch"]),
            partitioner=dict(payload["partitioner"]),
            shards=list(shards),
            replicas=replicas,
        )

    def has_manifest(self) -> bool:
        """True when a manifest file exists (store was bootstrapped)."""
        return self.manifest_path.exists()

    # ------------------------------------------------------------------
    # Log lifecycle
    # ------------------------------------------------------------------
    def create_log(self, log_id: str, pairs: Sequence[Pair]) -> DurableLog:
        """Fresh log (base snapshot + empty WAL) under ``log_id``."""
        return DurableLog.create(
            log_id,
            self.wal_dir,
            self.snap_dir,
            pairs,
            sync=self.sync,
            retain=self.retain,
            tear_rng=self.tear_rng,
        )

    def recover_log(self, log_id: str) -> Tuple[DurableLog, RecoveryResult]:
        """Reopen ``log_id`` and rebuild its state from disk."""
        return DurableLog.recover(
            log_id,
            self.wal_dir,
            self.snap_dir,
            sync=self.sync,
            retain=self.retain,
            tear_rng=self.tear_rng,
        )

    # ------------------------------------------------------------------
    # Orphan sweeping
    # ------------------------------------------------------------------
    def cleanup_orphans(self, manifest: Manifest) -> int:
        """Remove files no epoch reaches; returns how many were removed.

        Run at recovery, after the manifest is read: WALs and snapshots
        whose log id the manifest does not name (the debris of a crash
        mid-split/merge) and unpublished ``*.tmp`` aside files are all
        unreachable by construction, so deleting them is safe.
        """
        referenced = set(manifest.shards)
        if manifest.replicas is not None:
            for log_ids in manifest.replicas.get("logs", []):
                referenced.update(log_ids)
        removed = 0
        for path in self.wal_dir.iterdir():
            if path.suffix == ".tmp" or (
                path.suffix == ".wal" and path.stem not in referenced
            ):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        for path in self.snap_dir.iterdir():
            if path.suffix == ".tmp":
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
                continue
            if path.suffix == ".snap":
                log_id = path.name.split(".", 1)[0]
                if log_id not in referenced:
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        continue
        for path in self.root.iterdir():
            if path.suffix == ".tmp":
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        registry = active_registry()
        if registry is not None and removed:
            registry.counter(_COUNTERS["orphans"]).inc(removed)
        return removed
