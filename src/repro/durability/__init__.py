"""Durability for the sharded service: WAL, snapshots, crash recovery.

The package turns `repro.service` from a purely in-memory store into
one that survives kill-at-any-instruction crashes with zero lost
acknowledged writes:

* :mod:`repro.durability.codec` — tagged key/value wire encoding
  shared by WAL frames and snapshots;
* :mod:`repro.durability.wal` — per-shard CRC-framed write-ahead log
  with group commit and torn-tail-tolerant reads;
* :mod:`repro.durability.snapshot` — atomic snapshot generations with
  corrupt-newest fallback;
* :mod:`repro.durability.log` — the per-shard :class:`DurableLog`
  (create / recover / checkpoint / seal lifecycle);
* :mod:`repro.durability.manager` — the durability root directory and
  the CRC-wrapped routing manifest that is the store's commit point.

Every irreversible disk transition sits behind a named
:func:`repro.faults.fault_point` (see :data:`FAULT_SITES`), which is
what the ≥1000-crash recovery campaign in
``repro.harness.experiments_durability`` drives.
"""

from repro.durability.codec import Key, decode_key, decode_value, encode_key, encode_value
from repro.durability.log import DurableLog, RecoveryResult
from repro.durability.manager import (
    DurabilityManager,
    Manifest,
    build_partitioner,
    partitioner_spec,
)
from repro.durability.snapshot import SnapshotStore, decode_snapshot, encode_snapshot
from repro.durability.wal import (
    OP_DELETE,
    OP_PUT,
    Frame,
    LogSealedError,
    TailInfo,
    WalPoisonedError,
    WriteAheadLog,
    read_frames,
)

#: Every named crash site on the durable write/admin path, in the order
#: a write normally meets them.  The crash-recovery campaign arms each
#: of these (plus the service split/merge sites) and proves zero lost
#: acknowledged writes.
FAULT_SITES = (
    "durability.wal.append",
    "durability.wal.apply",
    "durability.snapshot.swap",
    "durability.wal.truncate",
    "durability.manifest.swap",
)

__all__ = [
    "FAULT_SITES",
    "DurabilityManager",
    "DurableLog",
    "Frame",
    "Key",
    "LogSealedError",
    "Manifest",
    "OP_DELETE",
    "OP_PUT",
    "RecoveryResult",
    "SnapshotStore",
    "TailInfo",
    "WalPoisonedError",
    "WriteAheadLog",
    "build_partitioner",
    "decode_key",
    "decode_snapshot",
    "decode_value",
    "encode_key",
    "encode_snapshot",
    "encode_value",
    "partitioner_spec",
    "read_frames",
]
