"""One shard's durable identity: a WAL plus its snapshot generations.

A :class:`DurableLog` is the unit that the service attaches to each
shard.  Its lifecycle mirrors the shard's:

``create``
    fresh log for a new shard (bootstrap, or the build side of a
    split/merge): any stale same-id files are destroyed first, a base
    snapshot of the shard's starting pairs is published at LSN 0, and
    an empty WAL opens at LSN 1.

``recover``
    rebuild the shard's state after a crash: load the newest *valid*
    snapshot (falling back past corrupt generations), cut the WAL's
    torn tail if the crash interrupted a group commit, and replay
    every frame past the snapshot's LSN into a plain dict — the
    canonical pair set from which any index family can be rebuilt.

``checkpoint``
    publish a new snapshot at the WAL's current LSN, prune old
    generations, and truncate the WAL up to the *oldest retained*
    snapshot's LSN (so every surviving generation remains a viable
    fallback).

``seal``
    fence the log when its shard is retired by a split/merge — a
    racing writer that still holds the old routing table gets
    :class:`~repro.durability.wal.LogSealedError` instead of an
    acknowledgment that recovery would not honor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.durability.codec import Key
from repro.durability.snapshot import SnapshotStore
from repro.durability.wal import (
    OP_DELETE,
    OP_PUT,
    Record,
    WriteAheadLog,
    read_frames,
)
from repro.faults.injector import fault_point

Pair = Tuple[Key, int]


@dataclass(frozen=True)
class RecoveryResult:
    """What one log's recovery found and rebuilt."""

    log_id: str
    state: Dict[Key, int]
    snapshot_lsn: int
    last_lsn: int
    frames_replayed: int
    snapshots_skipped: int
    torn_bytes: int


class DurableLog:
    """The durable write path of one shard (WAL + snapshots)."""

    def __init__(self, log_id: str, wal: WriteAheadLog, snapshots: SnapshotStore) -> None:
        self.log_id = log_id
        self.wal = wal
        self.snapshots = snapshots

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        log_id: str,
        wal_dir: Path,
        snap_dir: Path,
        pairs: Sequence[Pair],
        sync: str = "batch",
        retain: int = 2,
        tear_rng: Optional[random.Random] = None,
    ) -> "DurableLog":
        """Fresh log seeded with a base snapshot of ``pairs`` at LSN 0.

        Any files left under this id by an aborted earlier split are
        destroyed first, so a reused id can never replay stale frames.
        """
        snapshots = SnapshotStore(snap_dir, log_id, retain=retain)
        snapshots.delete_files()
        wal_path = wal_dir / f"{log_id}.wal"
        snapshots.write(list(pairs), 0)
        wal = WriteAheadLog(wal_path, sync=sync, next_lsn=1, create=True, tear_rng=tear_rng)
        return cls(log_id, wal, snapshots)

    @classmethod
    def recover(
        cls,
        log_id: str,
        wal_dir: Path,
        snap_dir: Path,
        sync: str = "batch",
        retain: int = 2,
        tear_rng: Optional[random.Random] = None,
    ) -> Tuple["DurableLog", RecoveryResult]:
        """Rebuild state from disk; returns the reopened log and its result.

        Loads the newest valid snapshot, replays every intact WAL frame
        past its LSN (each behind the ``durability.wal.apply`` fault
        point, so campaigns can kill recovery itself), and cuts a torn
        final record off the file before reopening it for appends.
        """
        snapshots = SnapshotStore(snap_dir, log_id, retain=retain)
        pairs, snapshot_lsn, skipped = snapshots.load_newest()
        state: Dict[Key, int] = dict(pairs)
        wal_path = wal_dir / f"{log_id}.wal"
        frames, tail = read_frames(wal_path)
        replayed = 0
        for frame in frames:
            if frame.lsn <= snapshot_lsn:
                continue
            fault_point("durability.wal.apply")
            if frame.op == OP_PUT:
                assert frame.value is not None  # encode_frame enforces this
                state[frame.key] = frame.value
            else:
                state.pop(frame.key, None)
            replayed += 1
        last_lsn = max(snapshot_lsn, frames[-1].lsn if frames else 0)
        wal = WriteAheadLog(
            wal_path, sync=sync, next_lsn=last_lsn + 1, create=False, tear_rng=tear_rng
        )
        wal.drop_torn_tail(tail)
        result = RecoveryResult(
            log_id=log_id,
            state=state,
            snapshot_lsn=snapshot_lsn,
            last_lsn=last_lsn,
            frames_replayed=replayed,
            snapshots_skipped=skipped,
            torn_bytes=tail.torn_bytes,
        )
        return cls(log_id, wal, snapshots), result

    # ------------------------------------------------------------------
    # The write path (called under the shard's locks)
    # ------------------------------------------------------------------
    def append_put_many(self, pairs: Sequence[Pair]) -> Tuple[int, int]:
        """Group-commit a batch of upserts; returns ``(first_lsn, last_lsn)``."""
        records: List[Record] = [(OP_PUT, key, value) for key, value in pairs]
        return self.wal.append_batch(records)

    def append_put(self, key: Key, value: int) -> int:
        """Durably log one upsert; returns its LSN."""
        first, _last = self.wal.append_batch([(OP_PUT, key, value)])
        return first

    def append_delete(self, key: Key) -> int:
        """Durably log one delete; returns its LSN."""
        first, _last = self.wal.append_batch([(OP_DELETE, key, None)])
        return first

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, pairs: Sequence[Pair]) -> int:
        """Snapshot ``pairs`` at the current LSN and trim history.

        The caller must present the state as of the WAL's ``last_lsn``
        (the service holds the shard's gates while collecting it).
        Truncation is keyed to the *oldest retained* generation, so a
        corrupt-newest fallback always has its WAL tail.
        """
        lsn = self.wal.last_lsn
        self.snapshots.write(list(pairs), lsn)
        cutoff = self.snapshots.prune()
        if cutoff is not None and cutoff > 0:
            self.wal.truncate_upto(cutoff)
        return lsn

    # ------------------------------------------------------------------
    # Retirement and introspection
    # ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        """The highest LSN this log has handed out."""
        return self.wal.last_lsn

    @property
    def sealed(self) -> bool:
        """True once the shard was retired by a split/merge."""
        return self.wal.sealed

    def seal(self) -> None:
        """Fence the log against post-retirement acknowledgments."""
        self.wal.seal()

    def close(self) -> None:
        """Release file handles (idempotent)."""
        self.wal.close()

    def delete_files(self) -> None:
        """Destroy the WAL and every snapshot (after a split/merge commits)."""
        self.wal.delete_file()
        self.snapshots.delete_files()

    def wal_size_bytes(self) -> int:
        """Current WAL file size (drives checkpoint scheduling)."""
        return self.wal.size_bytes()

    def stats(self) -> Dict[str, Any]:
        """One JSON-safe summary of this log."""
        return {
            "log_id": self.log_id,
            "last_lsn": self.wal.last_lsn,
            "sealed": self.wal.sealed,
            "poisoned": self.wal.poisoned,
            "wal_bytes": self.wal.size_bytes(),
            "snapshot_lsns": self.snapshots.list_lsns(),
            "sync": self.wal.sync,
        }
