"""Key/value wire codec shared by WAL records and snapshots.

The service's key space is heterogeneous — ints for the B+-tree
families, byte strings for the tries — and Python ints are unbounded,
so the codec is tagged and length-prefixed rather than fixed-width:

``key``
    one tag byte (``0x01`` int, ``0x02`` bytes), a ``u32`` payload
    length, and the payload — ints as minimal-length signed big-endian
    two's complement, byte strings raw.

``value``
    a ``u32`` length plus the same signed big-endian int encoding
    (values are always ints in the service surface).

Decoding follows the FST2 discipline (see ``repro.fst.serialize``):
every declared length is bounds-checked against the blob before
unpacking, and any inconsistency raises
:class:`~repro.fst.serialize.CorruptSerializationError` rather than
returning a half-decoded record.
"""

from __future__ import annotations

import struct
from typing import Tuple, Union

from repro.fst.serialize import CorruptSerializationError

Key = Union[int, bytes]

_TAG_INT = 0x01
_TAG_BYTES = 0x02

_U32 = struct.Struct("<I")

#: Sanity ceiling on one declared key/value payload (64 MiB): a longer
#: declaration is garbage framing, not data.
MAX_ITEM_BYTES = 64 * 1024 * 1024


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise CorruptSerializationError(message)


def _int_to_bytes(number: int) -> bytes:
    length = (number.bit_length() + 8) // 8
    return number.to_bytes(length or 1, "big", signed=True)


def encode_key(key: Key) -> bytes:
    """Tagged, length-prefixed encoding of one int or bytes key."""
    if isinstance(key, bool) or not isinstance(key, (int, bytes, bytearray)):
        raise TypeError(f"durable keys are int or bytes, got {type(key).__name__}")
    if isinstance(key, int):
        payload = _int_to_bytes(key)
        return bytes((_TAG_INT,)) + _U32.pack(len(payload)) + payload
    payload = bytes(key)
    return bytes((_TAG_BYTES,)) + _U32.pack(len(payload)) + payload


def decode_key(blob: bytes, offset: int) -> Tuple[Key, int]:
    """Decode one key at ``offset``; returns ``(key, next_offset)``."""
    _require(offset + 5 <= len(blob), f"truncated key header at offset {offset}")
    tag = blob[offset]
    (length,) = _U32.unpack_from(blob, offset + 1)
    offset += 5
    _require(length <= MAX_ITEM_BYTES, f"key declares {length} bytes (over the ceiling)")
    _require(offset + length <= len(blob), f"key payload of {length} bytes overruns the blob")
    payload = blob[offset : offset + length]
    offset += length
    if tag == _TAG_INT:
        _require(length >= 1, "int key with empty payload")
        return int.from_bytes(payload, "big", signed=True), offset
    if tag == _TAG_BYTES:
        return payload, offset
    raise CorruptSerializationError(f"unknown key tag 0x{tag:02x}")


def encode_value(value: int) -> bytes:
    """Length-prefixed signed big-endian encoding of one int value."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"durable values are ints, got {type(value).__name__}")
    payload = _int_to_bytes(value)
    return _U32.pack(len(payload)) + payload


def decode_value(blob: bytes, offset: int) -> Tuple[int, int]:
    """Decode one value at ``offset``; returns ``(value, next_offset)``."""
    _require(offset + 4 <= len(blob), f"truncated value header at offset {offset}")
    (length,) = _U32.unpack_from(blob, offset)
    offset += 4
    _require(1 <= length <= MAX_ITEM_BYTES, f"value declares {length} bytes")
    _require(offset + length <= len(blob), f"value payload of {length} bytes overruns the blob")
    return int.from_bytes(blob[offset : offset + length], "big", signed=True), offset + length
