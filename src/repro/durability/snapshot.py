"""Checkpoint snapshots: canonical key/value dumps, published atomically.

A snapshot is the *materialized* state of one shard log at a known LSN
— a canonical sorted key/value dump that works for every index family,
because families differ in structure but all reduce to the same pair
set (the PR-1 migration invariant).  Format:

.. code-block:: text

    file   := header record*
    header := magic "RSNP" (4) || version u32 || crc u32
              || lsn u64 || count u64                      -- 28 bytes
    record := key || value                                 -- codec.py

The CRC is computed over the whole file with the CRC field zeroed
(the FST2 discipline), so a flipped byte anywhere — header or records
— invalidates the snapshot as a unit.

Snapshots are written build-aside and published with one ``os.replace``
behind the ``durability.snapshot.swap`` fault point; the store retains
the newest ``retain`` generations so that a snapshot corrupted *after*
publication (bit rot, operator error) degrades to the previous
generation plus a longer WAL replay — never to data loss, because the
WAL is only truncated up to the *oldest retained* snapshot's LSN.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.core.atomicio import discard_aside, publish_aside, write_aside
from repro.durability.codec import Key, decode_key, decode_value, encode_key, encode_value
from repro.faults.injector import fault_point
from repro.fst.serialize import CorruptSerializationError
from repro.obs.runtime import active_registry

SNAPSHOT_MAGIC = b"RSNP"
SNAPSHOT_VERSION = 1

_HEADER = struct.Struct("<4sIIQQ")

#: RA004: literal instrument names.
_COUNTERS = {
    "writes": "durability.snapshot.writes",
    "bytes": "durability.snapshot.bytes",
    "loads": "durability.snapshot.loads",
    "corrupt_skipped": "durability.snapshot.corrupt_skipped",
    "pruned": "durability.snapshot.pruned",
}

Pair = Tuple[Key, int]


def encode_snapshot(pairs: Sequence[Pair], lsn: int) -> bytes:
    """The full snapshot blob for ``pairs`` as of ``lsn``."""
    body = b"".join(encode_key(key) + encode_value(value) for key, value in pairs)
    zero_header = _HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, 0, lsn, len(pairs))
    crc = zlib.crc32(body, zlib.crc32(zero_header)) & 0xFFFFFFFF
    return _HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, crc, lsn, len(pairs)) + body


def decode_snapshot(blob: bytes) -> Tuple[List[Pair], int]:
    """``(pairs, lsn)`` from a snapshot blob; raises on any corruption."""
    if len(blob) < _HEADER.size:
        raise CorruptSerializationError(f"snapshot of {len(blob)} bytes is shorter than its header")
    magic, version, crc, lsn, count = _HEADER.unpack_from(blob, 0)
    if magic != SNAPSHOT_MAGIC:
        raise CorruptSerializationError(f"bad snapshot magic {magic!r}")
    if version != SNAPSHOT_VERSION:
        raise CorruptSerializationError(f"unsupported snapshot version {version}")
    zero_header = _HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, 0, lsn, count)
    body = blob[_HEADER.size :]
    if zlib.crc32(body, zlib.crc32(zero_header)) & 0xFFFFFFFF != crc:
        raise CorruptSerializationError("snapshot checksum mismatch")
    pairs: List[Pair] = []
    offset = _HEADER.size
    for _ in range(count):
        key, offset = decode_key(blob, offset)
        value, offset = decode_value(blob, offset)
        pairs.append((key, value))
    if offset != len(blob):
        raise CorruptSerializationError(f"{len(blob) - offset} trailing bytes after snapshot records")
    return pairs, lsn


class SnapshotStore:
    """The snapshot generations of one shard log, newest-first.

    Files are named ``{log_id}.{lsn:020d}.snap`` so lexical order is
    LSN order; the store never holds open handles, so it is safe to
    share across checkpoint and recovery code paths.
    """

    def __init__(self, directory: Path, log_id: str, retain: int = 2) -> None:
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.directory = directory
        self.log_id = log_id
        self.retain = retain

    def _path_for(self, lsn: int) -> Path:
        return self.directory / f"{self.log_id}.{lsn:020d}.snap"

    def list_lsns(self) -> List[int]:
        """LSNs of every snapshot file present, ascending."""
        lsns = []
        for path in self.directory.glob(f"{self.log_id}.*.snap"):
            parts = path.name.split(".")
            if len(parts) == 3 and parts[1].isdigit():
                lsns.append(int(parts[1]))
        return sorted(lsns)

    # ------------------------------------------------------------------
    # Publication
    # ------------------------------------------------------------------
    def write(self, pairs: Sequence[Pair], lsn: int) -> Path:
        """Publish a snapshot of ``pairs`` as of ``lsn``; returns its path.

        The blob is built aside in full and swapped in with one
        ``os.replace`` behind the ``durability.snapshot.swap`` fault
        point — a crash at the point leaves the previous generations
        untouched and only an unpublished temp file (which recovery's
        orphan sweep removes).
        """
        blob = encode_snapshot(pairs, lsn)
        final = self._path_for(lsn)
        tmp = write_aside(final, blob)
        try:
            fault_point("durability.snapshot.swap")
            publish_aside(tmp, final)
        except BaseException:
            discard_aside(tmp)
            raise
        registry = active_registry()
        if registry is not None:
            registry.counter(_COUNTERS["writes"]).inc()
            registry.counter(_COUNTERS["bytes"]).inc(len(blob))
        return final

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def load_newest(self) -> Tuple[List[Pair], int, int]:
        """``(pairs, lsn, corrupt_skipped)`` from the newest *valid* snapshot.

        Generations are tried newest-first; one that fails its CRC (or
        any decode check) is counted and skipped, falling back to the
        previous generation — whose longer WAL tail replays the
        difference.  Raises only when no generation is valid.
        """
        lsns = self.list_lsns()
        skipped = 0
        registry = active_registry()
        for lsn in reversed(lsns):
            try:
                blob = self._path_for(lsn).read_bytes()
                pairs, decoded_lsn = decode_snapshot(blob)
            except (OSError, CorruptSerializationError):
                skipped += 1
                if registry is not None:
                    registry.counter(_COUNTERS["corrupt_skipped"]).inc()
                continue
            if decoded_lsn != lsn:
                skipped += 1
                if registry is not None:
                    registry.counter(_COUNTERS["corrupt_skipped"]).inc()
                continue
            if registry is not None:
                registry.counter(_COUNTERS["loads"]).inc()
            return pairs, lsn, skipped
        raise CorruptSerializationError(
            f"no valid snapshot for log {self.log_id} ({len(lsns)} candidates, {skipped} corrupt)"
        )

    # ------------------------------------------------------------------
    # Retention
    # ------------------------------------------------------------------
    def prune(self) -> Optional[int]:
        """Drop generations beyond ``retain``; returns the oldest kept LSN.

        The returned LSN is the safe WAL-truncation cutoff: every
        surviving snapshot can still be reached, so frames at or below
        it are redundant under *any* fallback.
        """
        lsns = self.list_lsns()
        if not lsns:
            return None
        doomed = lsns[: -self.retain] if len(lsns) > self.retain else []
        registry = active_registry()
        for lsn in doomed:
            try:
                self._path_for(lsn).unlink()
            except OSError:
                continue
            if registry is not None:
                registry.counter(_COUNTERS["pruned"]).inc()
        kept = lsns[len(doomed) :]
        return kept[0] if kept else None

    def delete_files(self) -> None:
        """Remove every generation (post-seal cleanup after split/merge)."""
        for lsn in self.list_lsns():
            try:
                self._path_for(lsn).unlink()
            except OSError:
                continue
