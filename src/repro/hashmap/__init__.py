"""Hash-map substrates for the sample store (Section 3.1.3).

The paper stores aggregated samples in "a high-performance hop-scotch
hash map for single-threaded execution [6], and a concurrent cuckoo-based
hash map for parallel workloads [34]".  This package implements both from
scratch:

* :class:`~repro.hashmap.hopscotch.HopscotchMap` — open addressing with
  hopscotch neighbourhoods (every key lives within H slots of its home
  bucket, so lookups probe one cache-line-sized window);
* :class:`~repro.hashmap.cuckoo.CuckooMap` — two-choice cuckoo hashing
  with BFS kickout paths and striped locks for concurrent readers and
  writers.

Python dicts are faster in CPython, so the adaptation manager uses them
by default; ``ManagerConfig(sample_map="hopscotch")`` switches to the
paper's structure (same semantics, real implementation), and the GS
concurrency strategy accepts a :class:`CuckooMap` store.
"""

from repro.hashmap.cuckoo import CuckooMap
from repro.hashmap.hopscotch import HopscotchMap

__all__ = ["CuckooMap", "HopscotchMap"]
