"""Concurrent cuckoo hash map (after Li et al., EuroSys 2014).

Two-choice cuckoo hashing with 4-slot buckets: every key lives in one of
two buckets determined by two hash functions.  Inserts displace residents
along a BFS-discovered cuckoo path when both buckets are full.  Striped
locks guard bucket groups so concurrent readers and writers proceed on
disjoint stripes — the structure the paper uses for the shared (GS)
sample store.

Python's GIL serializes the bytecode, but the locking protocol is real:
operations take the stripe locks of both candidate buckets in address
order (no deadlocks), and the contention counters feed Figure 18's cost
model.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Hashable, Iterator, List, Tuple

_SLOTS_PER_BUCKET = 4
_MAX_BFS_DEPTH = 5
_EMPTY = object()


def _mix(value: int, seed: int) -> int:
    value ^= seed
    value = (value * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    return value


class _Bucket:
    __slots__ = ("keys", "values")

    def __init__(self) -> None:
        self.keys: List[object] = [_EMPTY] * _SLOTS_PER_BUCKET
        self.values: List[object] = [None] * _SLOTS_PER_BUCKET

    def find(self, key: Hashable) -> int:
        """Slot index of ``key`` within this bucket, or -1."""
        for slot in range(_SLOTS_PER_BUCKET):
            if self.keys[slot] is not _EMPTY and self.keys[slot] == key:
                return slot
        return -1

    def free_slot(self) -> int:
        """Index of a free slot, or -1 when the bucket is full."""
        for slot in range(_SLOTS_PER_BUCKET):
            if self.keys[slot] is _EMPTY:
                return slot
        return -1


class CuckooMap:
    """A thread-safe dict-like map with two-choice cuckoo hashing."""

    def __init__(self, initial_buckets: int = 64, lock_stripes: int = 16) -> None:
        buckets = max(8, initial_buckets)
        self._num_buckets = 1 << (buckets - 1).bit_length()
        self._buckets: List[_Bucket] = [_Bucket() for _ in range(self._num_buckets)]
        self._stripes = [threading.Lock() for _ in range(lock_stripes)]
        self._resize_lock = threading.Lock()
        self._size_lock = threading.Lock()  # += is not atomic across stripes
        self._size = 0
        self.resizes = 0
        self.lock_acquisitions = 0
        self.blocked_acquisitions = 0

    # ------------------------------------------------------------------
    # Hashing and locking
    # ------------------------------------------------------------------
    def _bucket_indexes(self, key: Hashable) -> Tuple[int, int]:
        base = hash(key) & 0xFFFFFFFFFFFFFFFF
        first = _mix(base, 0x9E3779B97F4A7C15) % self._num_buckets
        second = _mix(base, 0xC2B2AE3D27D4EB4F) % self._num_buckets
        if second == first:
            second = (first + 1) % self._num_buckets
        return first, second

    def _acquire(self, *bucket_indexes: int):
        stripes = sorted({index % len(self._stripes) for index in bucket_indexes})
        acquired = []
        for stripe in stripes:
            lock = self._stripes[stripe]
            if not lock.acquire(blocking=False):
                self.blocked_acquisitions += 1
                lock.acquire()
            self.lock_acquisitions += 1
            acquired.append(lock)
        return acquired

    @staticmethod
    def _release(locks) -> None:
        for lock in reversed(locks):
            lock.release()

    def _acquire_all_stripes(self):
        """Block every fast-path operation (displacements, resizes)."""
        for lock in self._stripes:
            lock.acquire()
        return list(self._stripes)

    def _bump_size(self, delta: int) -> None:
        with self._size_lock:
            self._size += delta

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def get(self, key: Hashable, default=None):
        """Return the value for ``key``, or ``default`` when absent."""
        first, second = self._bucket_indexes(key)
        locks = self._acquire(first, second)
        try:
            for index in (first, second):
                slot = self._buckets[index].find(key)
                if slot >= 0:
                    return self._buckets[index].values[slot]
            return default
        finally:
            self._release(locks)

    def __getitem__(self, key: Hashable):
        sentinel = _EMPTY
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyError(key)
        return value

    def __contains__(self, key: Hashable) -> bool:
        return self.get(key, _EMPTY) is not _EMPTY

    def __len__(self) -> int:
        return self._size

    def __setitem__(self, key: Hashable, value: object) -> None:
        while True:
            if self._try_set(key, value):
                return
            self._grow()

    def _try_set(
        self,
        key: Hashable,
        value: object,
        resize_locked: bool = False,
        stripes_held: bool = False,
    ) -> bool:
        first, second = self._bucket_indexes(key)
        locks = [] if stripes_held else self._acquire(first, second)
        try:
            for index in (first, second):
                slot = self._buckets[index].find(key)
                if slot >= 0:
                    self._buckets[index].values[slot] = value
                    return True
            for index in (first, second):
                slot = self._buckets[index].free_slot()
                if slot >= 0:
                    self._buckets[index].keys[slot] = key
                    self._buckets[index].values[slot] = value
                    self._bump_size(1)
                    return True
        finally:
            self._release(locks)
        # Both buckets full: displace along a BFS cuckoo path.  The
        # displacement mutates buckets other operations may be touching,
        # so the rare path stops the world: resize lock + every stripe.
        if stripes_held:
            # All stripes already held by our caller (resize/displace).
            return self._displace_and_retry(key, value, first, second)
        if resize_locked:
            all_stripes = self._acquire_all_stripes()
            try:
                return self._displace_and_retry(key, value, first, second)
            finally:
                self._release(all_stripes)
        with self._resize_lock:
            all_stripes = self._acquire_all_stripes()
            try:
                return self._displace_and_retry(key, value, first, second)
            finally:
                self._release(all_stripes)

    def _displace_and_retry(
        self, key: Hashable, value: object, first: int, second: int
    ) -> bool:
        """Caller holds the resize lock and every stripe."""
        path = self._find_cuckoo_path(first, second)
        if path is None:
            return False
        self._apply_cuckoo_path(path)
        return self._try_set(key, value, resize_locked=True, stripes_held=True)

    def _find_cuckoo_path(self, first: int, second: int):
        """BFS for a chain of displacements ending at a free slot.

        Returns a list of (bucket, slot) hops from the bucket to vacate
        down to a bucket with a free slot.
        """
        queue = deque([(first, [])] if first == second else [(first, []), (second, [])])
        visited = {first, second}
        while queue:
            bucket_index, path = queue.popleft()
            if len(path) > _MAX_BFS_DEPTH:
                continue
            bucket = self._buckets[bucket_index]
            free = bucket.free_slot()
            if free >= 0:
                return path + [(bucket_index, free)]
            for slot in range(_SLOTS_PER_BUCKET):
                key = bucket.keys[slot]
                a, b = self._bucket_indexes(key)
                alternate = b if a == bucket_index else a
                if alternate not in visited:
                    visited.add(alternate)
                    queue.append((alternate, path + [(bucket_index, slot)]))
        return None

    def _apply_cuckoo_path(self, path) -> None:
        """Shift keys backwards along the path, freeing its first slot."""
        for position in range(len(path) - 1, 0, -1):
            to_bucket, to_slot = path[position]
            from_bucket, from_slot = path[position - 1]
            key = self._buckets[from_bucket].keys[from_slot]
            value = self._buckets[from_bucket].values[from_slot]
            self._buckets[to_bucket].keys[to_slot] = key
            self._buckets[to_bucket].values[to_slot] = value
            self._buckets[from_bucket].keys[from_slot] = _EMPTY
            self._buckets[from_bucket].values[from_slot] = None

    def __delitem__(self, key: Hashable) -> None:
        first, second = self._bucket_indexes(key)
        locks = self._acquire(first, second)
        try:
            for index in (first, second):
                slot = self._buckets[index].find(key)
                if slot >= 0:
                    self._buckets[index].keys[slot] = _EMPTY
                    self._buckets[index].values[slot] = None
                    self._bump_size(-1)
                    return
            raise KeyError(key)
        finally:
            self._release(locks)

    def pop(self, key: Hashable, default=_EMPTY):
        """Remove ``key`` and return its value (or ``default``)."""
        try:
            value = self[key]
        except KeyError:
            if default is _EMPTY:
                raise
            return default
        del self[key]
        return value

    def items(self) -> Iterator[Tuple[Hashable, object]]:
        """Yield all ``(key, value)`` pairs in key order."""
        for bucket in self._buckets:
            for slot in range(_SLOTS_PER_BUCKET):
                if bucket.keys[slot] is not _EMPTY:
                    yield bucket.keys[slot], bucket.values[slot]

    def keys(self) -> Iterator[Hashable]:
        """Yield all keys."""
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[object]:
        """Yield all values."""
        for _, value in self.items():
            yield value

    def clear(self) -> None:
        """Remove every entry."""
        with self._resize_lock:
            all_stripes = self._acquire_all_stripes()
            try:
                self._buckets = [_Bucket() for _ in range(self._num_buckets)]
                self._size = 0
            finally:
                self._release(all_stripes)

    # ------------------------------------------------------------------
    # Resizing
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        with self._resize_lock:
            all_stripes = self._acquire_all_stripes()
            try:
                entries = [
                    (bucket.keys[slot], bucket.values[slot])
                    for bucket in self._buckets
                    for slot in range(_SLOTS_PER_BUCKET)
                    if bucket.keys[slot] is not _EMPTY
                ]
                self._num_buckets *= 2
                self._buckets = [_Bucket() for _ in range(self._num_buckets)]
                self._size = 0
                self.resizes += 1
                for key, value in entries:
                    if not self._try_set(
                        key, value, resize_locked=True, stripes_held=True
                    ):  # pragma: no cover
                        raise AssertionError("re-insert failed right after resize")
            finally:
                self._release(all_stripes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        """Number of hash buckets."""
        return self._num_buckets

    def load_factor(self) -> float:
        """Occupied fraction of the structure's capacity."""
        return self._size / (self._num_buckets * _SLOTS_PER_BUCKET)

    def check_invariants(self) -> None:
        """Every key sits in one of its two candidate buckets."""
        counted = 0
        for bucket_index, bucket in enumerate(self._buckets):
            for slot in range(_SLOTS_PER_BUCKET):
                key = bucket.keys[slot]
                if key is _EMPTY:
                    continue
                first, second = self._bucket_indexes(key)
                assert bucket_index in (first, second), (
                    f"key {key!r} in bucket {bucket_index}, candidates {first}/{second}"
                )
                counted += 1
        assert counted == self._size
