"""Hopscotch hash map (Herlihy, Shavit, Tzafrir 2008).

Open addressing with the *hopscotch* invariant: every key is stored
within ``H`` slots of its home bucket (its hash position), and each home
bucket keeps an ``H``-bit hop bitmap marking which of its neighbourhood
slots hold its keys.  Lookups therefore probe at most the H-slot window —
one cache line in the C++ original, which is why the paper picks this map
for the single-threaded sample store.

Inserts first find any free slot by linear probing and then *hop* it
backwards into the neighbourhood by displacing keys whose own invariant
allows the move; if no free slot can be hopped close enough, the table
resizes.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional, Tuple

NEIGHBOURHOOD = 32  # H: bitmap width, matching the C++ reference
_FREE = object()


class HopscotchMap:
    """A dict-like map with hopscotch open addressing.

    Supports the mapping protocol subset the sample store needs:
    ``get`` / ``__setitem__`` / ``__getitem__`` / ``__delitem__`` /
    ``__contains__`` / ``items`` / ``pop`` / ``__len__``.
    """

    def __init__(self, initial_capacity: int = 64) -> None:
        capacity = max(NEIGHBOURHOOD * 2, initial_capacity)
        # Round up to a power of two for cheap masking.
        self._capacity = 1 << (capacity - 1).bit_length()
        self._mask = self._capacity - 1
        self._keys: List[object] = [_FREE] * self._capacity
        self._values: List[object] = [None] * self._capacity
        self._hop_info: List[int] = [0] * self._capacity
        self._size = 0
        self.resizes = 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _home(self, key: Hashable) -> int:
        return hash(key) & self._mask

    def _find_slot(self, key: Hashable) -> Optional[int]:
        """The slot holding ``key``, scanning only the home neighbourhood."""
        home = self._home(key)
        hop_info = self._hop_info[home]
        while hop_info:
            offset = (hop_info & -hop_info).bit_length() - 1
            hop_info &= hop_info - 1
            slot = (home + offset) & self._mask
            if self._keys[slot] == key:
                return slot
        return None

    def get(self, key: Hashable, default=None):
        """Return the value for ``key``, or ``default`` when absent."""
        slot = self._find_slot(key)
        return default if slot is None else self._values[slot]

    def __getitem__(self, key: Hashable):
        slot = self._find_slot(key)
        if slot is None:
            raise KeyError(key)
        return self._values[slot]

    def __contains__(self, key: Hashable) -> bool:
        return self._find_slot(key) is not None

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def __setitem__(self, key: Hashable, value: object) -> None:
        slot = self._find_slot(key)
        if slot is not None:
            self._values[slot] = value
            return
        while not self._try_insert(key, value):
            self._resize()

    def _try_insert(self, key: Hashable, value: object) -> bool:
        if self._size >= self._capacity * 0.9:
            return False
        home = self._home(key)
        # Linear-probe for any free slot.
        free = None
        for distance in range(self._capacity):
            candidate = (home + distance) & self._mask
            if self._keys[candidate] is _FREE:
                free = candidate
                free_distance = distance
                break
        if free is None:
            return False
        # Hop the free slot backwards until it is inside the neighbourhood.
        while free_distance >= NEIGHBOURHOOD:
            moved = self._hop_backwards(free)
            if moved is None:
                return False  # displacement impossible: resize
            free = moved
            free_distance = (free - home) & self._mask
        self._keys[free] = key
        self._values[free] = value
        self._hop_info[home] |= 1 << free_distance
        self._size += 1
        return True

    def _hop_backwards(self, free: int) -> Optional[int]:
        """Move ``free`` at least one slot toward lower indices by
        relocating a displaceable key into it; returns the new free slot."""
        for distance in range(NEIGHBOURHOOD - 1, 0, -1):
            candidate_home_start = (free - distance) & self._mask
            hop_info = self._hop_info[candidate_home_start]
            if not hop_info:
                continue
            # The lowest set bit is the key closest to its home — moving it
            # to ``free`` keeps it within its neighbourhood iff the new
            # offset still fits.
            offset = (hop_info & -hop_info).bit_length() - 1
            if offset >= distance:
                continue  # its current slot is not before ``free``
            victim = (candidate_home_start + offset) & self._mask
            new_offset = distance  # victim's distance when moved to free
            if new_offset >= NEIGHBOURHOOD:
                continue
            self._keys[free] = self._keys[victim]
            self._values[free] = self._values[victim]
            self._hop_info[candidate_home_start] &= ~(1 << offset)
            self._hop_info[candidate_home_start] |= 1 << new_offset
            self._keys[victim] = _FREE
            self._values[victim] = None
            return victim
        return None

    def _resize(self) -> None:
        entries = list(self.items())
        self._capacity *= 2
        self._mask = self._capacity - 1
        self._keys = [_FREE] * self._capacity
        self._values = [None] * self._capacity
        self._hop_info = [0] * self._capacity
        self._size = 0
        self.resizes += 1
        for key, value in entries:
            if not self._try_insert(key, value):  # pragma: no cover
                raise AssertionError("re-insert failed right after resize")

    # ------------------------------------------------------------------
    # Delete and iteration
    # ------------------------------------------------------------------
    def __delitem__(self, key: Hashable) -> None:
        slot = self._find_slot(key)
        if slot is None:
            raise KeyError(key)
        home = self._home(key)
        offset = (slot - home) & self._mask
        self._hop_info[home] &= ~(1 << offset)
        self._keys[slot] = _FREE
        self._values[slot] = None
        self._size -= 1

    def pop(self, key: Hashable, default=_FREE):
        """Remove ``key`` and return its value (or ``default``)."""
        slot = self._find_slot(key)
        if slot is None:
            if default is _FREE:
                raise KeyError(key)
            return default
        value = self._values[slot]
        del self[key]
        return value

    def items(self) -> Iterator[Tuple[Hashable, object]]:
        """Yield all ``(key, value)`` pairs in key order."""
        for slot in range(self._capacity):
            if self._keys[slot] is not _FREE:
                yield self._keys[slot], self._values[slot]

    def keys(self) -> Iterator[Hashable]:
        """Yield all keys."""
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[object]:
        """Yield all values."""
        for _, value in self.items():
            yield value

    def clear(self) -> None:
        """Remove every entry."""
        self._keys = [_FREE] * self._capacity
        self._values = [None] * self._capacity
        self._hop_info = [0] * self._capacity
        self._size = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """The structure's current capacity."""
        return self._capacity

    def load_factor(self) -> float:
        """Occupied fraction of the structure's capacity."""
        return self._size / self._capacity

    def max_probe_window(self) -> int:
        """The hopscotch guarantee: lookups probe at most this many slots."""
        return NEIGHBOURHOOD

    def check_invariants(self) -> None:
        """Every key lies within its home neighbourhood, and hop bitmaps
        agree with slot contents (tests and debugging)."""
        seen = 0
        for home in range(self._capacity):
            hop_info = self._hop_info[home]
            while hop_info:
                offset = (hop_info & -hop_info).bit_length() - 1
                hop_info &= hop_info - 1
                slot = (home + offset) & self._mask
                key = self._keys[slot]
                assert key is not _FREE, f"hop bit {offset} of {home} points at a free slot"
                assert self._home(key) == home, f"key {key!r} charted by the wrong home"
                assert offset < NEIGHBOURHOOD
                seen += 1
        assert seen == self._size, f"hop bitmaps chart {seen} keys, size says {self._size}"
