"""repro.obs — the unified observability layer.

One subsystem carries the whole decision trail of the adaptation
machinery (what was sampled, classified, and migrated, and what each
decision cost) across every index family:

* :mod:`repro.obs.metrics` — named counters/gauges/fixed-bucket
  histograms in a :class:`MetricsRegistry`, exported as a Prometheus
  text-exposition snapshot;
* :mod:`repro.obs.tracing` — nestable spans (``lookup`` ->
  ``leaf_probe:succinct``, ``adaptation_phase`` ->
  ``migration:gapped->succinct``) over pluggable sinks;
* :mod:`repro.obs.sinks` — JSONL, in-memory, and tee sinks;
* :mod:`repro.obs.runtime` — the process-global install point; the
  default is *no* telemetry, and every probe in the hot paths is a
  single global read + branch (see ``benchmarks/bench_obs_overhead.py``);
* :mod:`repro.obs.schema` / :mod:`repro.obs.validate` — trace schema
  validation against ``docs/trace_schema.json``;
* :mod:`repro.obs.introspect` — the uniform ``.stats()`` /
  ``.describe()`` contract all six index families implement;
* :mod:`repro.obs.jsonable` — the one JSON-coercion helper every
  exporter (including ``repro.harness.export``) shares;
* :mod:`repro.obs.report` — the human-readable console exporter;
* :mod:`repro.obs.distributed` — trace-context propagation vocabulary
  (trace ids, the span-name -> layer map the stitcher attributes by);
* :mod:`repro.obs.stitch` — joins per-process JSONL traces into
  per-request causal trees (``python -m repro.obs.stitch``);
* :mod:`repro.obs.slo` — declarative objectives with multi-window
  burn-rate alerting, plus one-shot SLO checks for harness CLIs;
* :mod:`repro.obs.top` — the live ops console over the STATS opcode
  (``python -m repro.obs.top``).

Quickstart::

    from repro.obs import Telemetry

    with Telemetry.with_jsonl_trace("trace.jsonl", op_sample_every=64) as t:
        run_workload(index)
    print(t.registry.to_prometheus())
    print(index.describe())

See ``docs/observability.md`` for naming conventions, the span
taxonomy, and the overhead budget.
"""

from repro.obs.distributed import (
    MAX_TRACE_ID,
    SPAN_LAYERS,
    TraceContext,
    layer_of,
    new_trace_id,
)
from repro.obs.jsonable import jsonable_key, to_jsonable
from repro.obs.metrics import (
    COST_NS_BUCKETS,
    LATENCY_BUCKETS,
    RATIO_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from repro.obs.report import render_metrics, render_telemetry, render_trace_summary
from repro.obs.runtime import Telemetry, active, active_registry, active_tracer
from repro.obs.schema import TraceSchemaError, validate_trace, validate_trace_file
from repro.obs.slo import (
    Objective,
    SloCheck,
    SloMonitor,
    default_net_objectives,
    evaluate_checks,
    latency_objective,
    parse_check,
    ratio_objective,
)
from repro.obs.sinks import (
    InMemoryTraceSink,
    JsonlTraceSink,
    TeeTraceSink,
    read_jsonl_trace,
)
from repro.obs.tracing import Span, Tracer, TraceSink

__all__ = [
    "COST_NS_BUCKETS",
    "LATENCY_BUCKETS",
    "MAX_TRACE_ID",
    "Counter",
    "Gauge",
    "Histogram",
    "InMemoryTraceSink",
    "JsonlTraceSink",
    "MetricsRegistry",
    "Objective",
    "RATIO_BUCKETS",
    "SIZE_BUCKETS",
    "SPAN_LAYERS",
    "SloCheck",
    "SloMonitor",
    "Span",
    "Telemetry",
    "TeeTraceSink",
    "TraceContext",
    "TraceSchemaError",
    "TraceSink",
    "Tracer",
    "active",
    "active_registry",
    "active_tracer",
    "default_net_objectives",
    "evaluate_checks",
    "jsonable_key",
    "latency_objective",
    "layer_of",
    "new_trace_id",
    "parse_check",
    "parse_prometheus",
    "ratio_objective",
    "read_jsonl_trace",
    "render_metrics",
    "render_telemetry",
    "render_trace_summary",
    "to_jsonable",
    "validate_trace",
    "validate_trace_file",
]
