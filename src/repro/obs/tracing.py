"""Structured tracing: nestable spans over a pluggable sink.

Spans model the paper's decision trail end-to-end::

    lookup -> descent -> leaf_probe:succinct
    adaptation_phase -> classify -> migration:gapped->succinct

and, since the network front end exists, the request trail across
processes::

    net.client.request -> net.server.request -> net.coalesce.batch
        -> service.route -> service.shard_op -> lookup -> ...

Design constraints, in priority order:

* **No wall-clock in the hot path.**  Spans are ordered by a logical
  sequence counter (``seq_start``/``seq_end``); durations, when they
  matter, are modeled costs carried as attributes.  (Network-layer
  spans, which are nowhere near the index hot path, additionally carry
  measured ``elapsed_s`` attributes.)
* **Zero cost when disabled.**  Nothing here runs unless a tracer is
  installed (see :mod:`repro.obs.runtime`); instrumented call sites pay
  one global read and one ``is None`` branch.
* **Bounded cost when enabled.**  Per-operation spans go through
  :meth:`Tracer.op_start`, which applies its own skip-sampling gate
  (``op_sample_every``) — the same idea the paper uses for access
  sampling.  Phase-level spans (:meth:`Tracer.span`) are always emitted;
  they fire at most once per adaptation phase / merge / interval.

Span parenting uses a per-thread stack, so the concurrency experiments
can trace without corrupting the tree.  Code that multiplexes many
logical operations over one thread (the asyncio server) must NOT use the
stack: it uses the detached lifecycle instead — :meth:`Tracer.start_remote`
/ :meth:`Tracer.start_child` / :meth:`Tracer.child_event` /
:meth:`Tracer.finish` — which parents spans explicitly and never reads
thread-local state.  :meth:`Tracer.adopt` bridges the two worlds: it
pushes a detached span onto the *current* thread's stack (e.g. inside an
executor task) so stack-based instrumentation below nests under it.

Completed spans are emitted to the sink as flat record dicts (children
before parents, post-order), which is what the JSONL schema in
``docs/trace_schema.json`` describes.  Spans belonging to a distributed
trace additionally carry a ``trace_id``; purely local spans omit the
field, keeping pre-existing traces byte-identical.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Protocol


class TraceSink(Protocol):
    """Receives completed span records."""

    def emit(self, record: Dict) -> None:
        """Accept one completed span (a JSON-safe dict)."""

    def close(self) -> None:
        """Flush and release resources."""


class Span:
    """One open span; becomes a record dict when finished."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "seq_start",
        "seq_end",
        "attributes",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        seq_start: int,
        attributes: Optional[Dict] = None,
        trace_id: Optional[int] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.seq_start = seq_start
        self.seq_end: Optional[int] = None
        self.attributes = attributes or {}

    def set(self, **attributes: object) -> None:
        """Attach attributes to the open span."""
        self.attributes.update(attributes)


class _ThreadState(threading.local):
    def __init__(self) -> None:
        self.stack: List[Span] = []


class Tracer:
    """Emits nested spans to one sink.

    ``op_sample_every = 0`` disables per-operation spans entirely (the
    default: phase-level visibility at near-zero cost); ``1`` traces
    every operation; ``n`` traces every n-th.

    ``span_id_base`` offsets the sequential span-id counter; give each
    process of a distributed run a distinct base (e.g. ``1 << 32`` per
    process) so span ids never collide when client and server JSONL
    files are stitched together.
    """

    def __init__(
        self,
        sink: TraceSink,
        op_sample_every: int = 0,
        span_id_base: int = 0,
    ) -> None:
        if op_sample_every < 0:
            raise ValueError(f"op_sample_every must be >= 0, got {op_sample_every}")
        if span_id_base < 0:
            raise ValueError(f"span_id_base must be >= 0, got {span_id_base}")
        self.sink = sink
        self.op_sample_every = op_sample_every
        self._op_countdown = 0
        self._seq = 0
        self._next_span_id = span_id_base + 1
        self._lock = threading.Lock()
        self._emit_lock = threading.Lock()
        self._state = _ThreadState()
        self.spans_emitted = 0
        self.ops_skipped = 0

    # -- internals -------------------------------------------------------
    def _tick(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _new_id(self) -> int:
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
            return span_id

    # -- span lifecycle (stack-based) ------------------------------------
    def start(self, name: str, **attributes: object) -> Span:
        """Open a span as a child of the current innermost span."""
        stack = self._state.stack
        parent = stack[-1] if stack else None
        span = Span(
            name,
            self._new_id(),
            parent.span_id if parent is not None else None,
            self._tick(),
            attributes,
            trace_id=parent.trace_id if parent is not None else None,
        )
        stack.append(span)
        return span

    def end(self, span: Span, **attributes: object) -> None:
        """Close ``span`` (and any forgotten children) and emit it."""
        if attributes:
            span.attributes.update(attributes)
        stack = self._state.stack
        while stack:
            top = stack.pop()
            if top is span:
                break
            self._emit(top)  # abandoned child: close it at the same tick
        span.seq_end = self._tick()
        self._emit(span)

    def op_start(self, name: str, **attributes: object) -> Optional[Span]:
        """Per-operation span gate; None when sampled out or disabled."""
        every = self.op_sample_every
        if every == 0:
            return None
        if self._op_countdown > 0:
            self._op_countdown -= 1
            self.ops_skipped += 1
            return None
        self._op_countdown = every - 1
        return self.start(name, **attributes)

    def event(self, name: str, **attributes: object) -> None:
        """An instantaneous span (seq_start == seq_end) under the current one."""
        stack = self._state.stack
        parent = stack[-1] if stack else None
        span = Span(
            name,
            self._new_id(),
            parent.span_id if parent is not None else None,
            self._tick(),
            attributes,
            trace_id=parent.trace_id if parent is not None else None,
        )
        span.seq_end = span.seq_start
        self._emit(span)

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Context-managed span for phase-level code paths."""
        span = self.start(name, **attributes)
        try:
            yield span
        finally:
            self.end(span)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread's stack, if any."""
        stack = self._state.stack
        return stack[-1] if stack else None

    # -- span lifecycle (detached; explicit parenting) -------------------
    #
    # The asyncio server interleaves many requests on one thread, so the
    # per-thread stack would misparent their spans.  Detached spans are
    # parented explicitly, never touch the stack, and are closed with
    # ``finish`` (never ``end``).

    def start_remote(
        self,
        name: str,
        trace_id: int,
        remote_parent_id: Optional[int] = None,
        **attributes: object,
    ) -> Span:
        """Open a detached span continuing a trace from another process.

        The span is a local root (``parent_id is None``) so each JSONL
        file stays self-contained for schema validation; the causal link
        to the originating process is carried as a ``remote_parent_id``
        attribute, which the stitch tool resolves across files.
        """
        if remote_parent_id is not None:
            attributes = dict(attributes)
            attributes["remote_parent_id"] = remote_parent_id
        return Span(name, self._new_id(), None, self._tick(), attributes, trace_id=trace_id)

    def start_child(self, name: str, parent: Span, **attributes: object) -> Span:
        """Open a detached span as an explicit child of ``parent``."""
        return Span(
            name,
            self._new_id(),
            parent.span_id,
            self._tick(),
            attributes,
            trace_id=parent.trace_id,
        )

    def child_event(self, name: str, parent: Span, **attributes: object) -> None:
        """An instantaneous span under an explicit ``parent``."""
        span = Span(
            name,
            self._new_id(),
            parent.span_id,
            self._tick(),
            attributes,
            trace_id=parent.trace_id,
        )
        span.seq_end = span.seq_start
        self._emit(span)

    def finish(self, span: Span, **attributes: object) -> None:
        """Close and emit a detached span (does not touch any stack)."""
        if attributes:
            span.attributes.update(attributes)
        span.seq_end = self._tick()
        self._emit(span)

    @contextmanager
    def adopt(self, span: Span) -> Iterator[Span]:
        """Make a detached ``span`` the stack parent on *this* thread.

        Used to carry a request's span across an executor hop: stack-based
        instrumentation (router, shards, index hot paths) run inside the
        ``with`` block nests under it.  The adopted span itself is NOT
        emitted on exit — its owner still calls :meth:`finish`.  Spans
        left open inside the block are closed and emitted, mirroring
        :meth:`end`'s forgotten-children discipline.
        """
        stack = self._state.stack
        stack.append(span)
        try:
            yield span
        finally:
            while stack:
                top = stack.pop()
                if top is span:
                    break
                self._emit(top)

    def _emit(self, span: Span) -> None:
        if span.seq_end is None:
            span.seq_end = span.seq_start
        record: Dict = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "seq_start": span.seq_start,
            "seq_end": span.seq_end,
            "attributes": span.attributes,
        }
        if span.trace_id is not None:
            record["trace_id"] = span.trace_id
        with self._emit_lock:
            self.spans_emitted += 1
            self.sink.emit(record)

    # -- teardown --------------------------------------------------------
    def close(self) -> None:
        """Close any still-open spans on this thread, then the sink."""
        stack = self._state.stack
        while stack:
            self.end(stack[-1])
        self.sink.close()
