"""CLI validation of exported telemetry artifacts.

Used by the ``obs-smoke`` CI job::

    python -m repro.obs.validate trace.jsonl --schema docs/trace_schema.json
    python -m repro.obs.validate --prometheus metrics.prom
    python -m repro.obs.validate trace.jsonl --require-span adaptation_phase

Exit code 0 means every named artifact validated; any schema violation
or malformed exposition line prints the failure and exits 1.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.obs.metrics import iter_instrument_names, parse_prometheus
from repro.obs.schema import TraceSchemaError, validate_trace_file


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="Validate JSONL traces and Prometheus snapshots.",
    )
    parser.add_argument("trace", nargs="?", default=None, help="JSONL trace file")
    parser.add_argument("--schema", default=None, help="trace schema JSON (default: checked-in)")
    parser.add_argument(
        "--require-span",
        action="append",
        default=[],
        metavar="NAME",
        help="fail unless the trace contains a span with this name (repeatable)",
    )
    parser.add_argument(
        "--prometheus", default=None, metavar="FILE", help="exposition file to parse"
    )
    args = parser.parse_args(argv)

    if args.trace is None and args.prometheus is None:
        parser.error("nothing to validate: pass a trace file and/or --prometheus")

    if args.trace is not None:
        try:
            names = validate_trace_file(args.trace, args.schema)
        except (TraceSchemaError, OSError) as error:
            print(f"TRACE INVALID: {error}", file=sys.stderr)
            return 1
        total = sum(names.values())
        print(f"{args.trace}: {total} spans valid; names: " + ", ".join(
            f"{name}={count}" for name, count in sorted(names.items())
        ))
        missing = [name for name in args.require_span if name not in names]
        if missing:
            print(f"TRACE INVALID: required spans missing: {missing}", file=sys.stderr)
            return 1

    if args.prometheus is not None:
        try:
            samples = parse_prometheus(Path(args.prometheus).read_text())
        except (ValueError, OSError) as error:
            print(f"PROMETHEUS INVALID: {error}", file=sys.stderr)
            return 1
        print(
            f"{args.prometheus}: {len(samples)} samples across "
            f"{len(iter_instrument_names(samples))} metrics"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
