"""Stitch per-process JSONL traces into per-request causal trees.

Each process of a distributed run writes a self-contained JSONL trace
(its ``parent_id`` graph closes locally; see ``docs/trace_schema.json``).
The cross-process link is carried out-of-band: a span opened by
:meth:`~repro.obs.tracing.Tracer.start_remote` is a local root whose
``attributes.remote_parent_id`` names the originating span in *another*
file, and both sides share a ``trace_id``.  This tool joins the files::

    python -m repro.obs.stitch client.jsonl server.jsonl
    python -m repro.obs.stitch *.jsonl --format json --output stitched.json
    python -m repro.obs.stitch *.jsonl \\
        --require-chain 'net.client.request>service.shard_op>lookup'

Per trace it prints a flame-style breakdown: the stitched span tree
(indentation = causality) and a per-layer attribution table — measured
``elapsed_s`` summed by the layer each span name maps to (see
:data:`repro.obs.distributed.SPAN_LAYERS`), span counts for layers that
carry no wall-clock (the index hot path is sequence-ordered on purpose).

``--require-chain a>b>c`` asserts at least one stitched trace contains
spans named ``a``, ``b``, ``c`` on one ancestor line, in order, gaps
allowed (names are prefix-matched, so ``lookup`` also matches
``lookup_many``).  The ``obs-e2e`` CI job uses this to prove a traced
request really crossed net -> index -> wal.  Exit codes: 0 ok, 1 input
error, 2 a required chain matched no trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.distributed import layer_of

Record = Dict[str, Any]


class StitchError(ValueError):
    """Input files that cannot be stitched into coherent traces."""


def load_records(paths: Sequence[str]) -> List[Record]:
    """All span records from ``paths``, tagged with their source file."""
    records: List[Record] = []
    for path in paths:
        text = Path(path).read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise StitchError(f"{path}:{lineno}: not JSON: {error}") from error
            if not isinstance(record, dict):
                raise StitchError(f"{path}:{lineno}: span record must be an object")
            record["_file"] = path
            records.append(record)
    return records


class SpanNode:
    """One span in a stitched tree."""

    __slots__ = ("record", "children")

    def __init__(self, record: Record) -> None:
        self.record = record
        self.children: List["SpanNode"] = []

    @property
    def name(self) -> str:
        return str(self.record["name"])

    @property
    def span_id(self) -> int:
        return int(self.record["span_id"])

    def sort_children(self) -> None:
        self.children.sort(key=lambda node: node.record.get("seq_start", 0))
        for child in self.children:
            child.sort_children()


class Trace:
    """All spans sharing one trace id, stitched across files."""

    def __init__(self, trace_id: int, roots: List[SpanNode], orphans: int) -> None:
        self.trace_id = trace_id
        self.roots = roots
        #: remote_parent_id references that resolved to no span in this
        #: trace (the referenced process's file was not supplied).
        self.orphans = orphans

    def walk(self) -> Iterable[Tuple[int, SpanNode]]:
        """(depth, node) pairs, preorder."""
        stack = [(0, root) for root in reversed(self.roots)]
        while stack:
            depth, node = stack.pop()
            yield depth, node
            for child in reversed(node.children):
                stack.append((depth + 1, child))

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    def layers(self) -> Dict[str, Dict[str, float]]:
        """Per-layer attribution: span count and summed ``elapsed_s``."""
        summary: Dict[str, Dict[str, float]] = {}
        for _, node in self.walk():
            layer = layer_of(node.name)
            entry = summary.setdefault(layer, {"spans": 0, "elapsed_s": 0.0})
            entry["spans"] += 1
            elapsed = node.record.get("attributes", {}).get("elapsed_s")
            if isinstance(elapsed, (int, float)) and not isinstance(elapsed, bool):
                entry["elapsed_s"] += float(elapsed)
        return summary

    def has_chain(self, chain: Sequence[str]) -> bool:
        """True when some root-to-leaf line visits the names in order.

        Names are prefix-matched; intermediate spans are allowed (the
        chain is a subsequence of an ancestor line, not a direct path).
        """

        def descend(node: SpanNode, needed: Tuple[str, ...]) -> bool:
            if needed and node.name.startswith(needed[0]):
                needed = needed[1:]
            if not needed:
                return True
            return any(descend(child, needed) for child in node.children)

        want = tuple(chain)
        return any(descend(root, want) for root in self.roots)


def stitch(records: Sequence[Record]) -> List[Trace]:
    """Group records by trace id and stitch cross-file parent links.

    Only records carrying a ``trace_id`` participate (purely local spans
    have no cross-process identity).  Span ids must be unique within a
    trace — give each process a distinct ``span_id_base``.
    """
    by_trace: Dict[int, List[Record]] = {}
    for record in records:
        trace_id = record.get("trace_id")
        if trace_id is None:
            continue
        by_trace.setdefault(int(trace_id), []).append(record)

    traces: List[Trace] = []
    for trace_id, members in sorted(by_trace.items()):
        nodes: Dict[int, SpanNode] = {}
        for record in members:
            span_id = int(record["span_id"])
            if span_id in nodes:
                other = nodes[span_id].record
                raise StitchError(
                    f"trace {trace_id}: span id {span_id} appears in both "
                    f"{other['_file']} and {record['_file']} — run each "
                    "process with a distinct span_id_base"
                )
            nodes[span_id] = SpanNode(record)
        roots: List[SpanNode] = []
        orphans = 0
        for node in nodes.values():
            parent_id = node.record.get("parent_id")
            if parent_id is None:
                remote = node.record.get("attributes", {}).get("remote_parent_id")
                if remote is not None and int(remote) in nodes:
                    nodes[int(remote)].children.append(node)
                    continue
                if remote is not None:
                    orphans += 1
                roots.append(node)
                continue
            parent = nodes.get(int(parent_id))
            if parent is None:
                # Parent span was never emitted (e.g. truncated file);
                # keep the subtree visible as a root.
                orphans += 1
                roots.append(node)
                continue
            parent.children.append(node)
        for root in roots:
            root.sort_children()
        roots.sort(key=lambda node: node.record.get("seq_start", 0))
        traces.append(Trace(trace_id, roots, orphans))
    return traces


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
_SHOWN_ATTRS = ("op", "tenant", "status", "decision", "count", "size", "fanout")


def _describe(node: SpanNode) -> str:
    attributes = node.record.get("attributes", {})
    parts = [f"{key}={attributes[key]}" for key in _SHOWN_ATTRS if key in attributes]
    elapsed = attributes.get("elapsed_s")
    if isinstance(elapsed, (int, float)) and not isinstance(elapsed, bool):
        parts.append(f"elapsed={elapsed * 1e6:.0f}us")
    return f" [{' '.join(parts)}]" if parts else ""


def render_text(traces: Sequence[Trace]) -> str:
    """The flame-style text view of every stitched trace."""
    lines: List[str] = []
    for trace in traces:
        lines.append(
            f"trace {trace.trace_id:#018x}: {trace.span_count()} spans"
            + (f" ({trace.orphans} unresolved remote links)" if trace.orphans else "")
        )
        for depth, node in trace.walk():
            lines.append(f"  {'  ' * depth}{node.name}{_describe(node)}")
        layers = trace.layers()
        total = sum(entry["elapsed_s"] for entry in layers.values())
        lines.append("  -- layer attribution --")
        for layer, entry in sorted(
            layers.items(), key=lambda item: -item[1]["elapsed_s"]
        ):
            share = (entry["elapsed_s"] / total * 100.0) if total > 0 else 0.0
            lines.append(
                f"  {layer:>10}: {int(entry['spans'])} spans, "
                f"{entry['elapsed_s'] * 1e6:9.0f}us ({share:5.1f}%)"
            )
        lines.append("")
    lines.append(f"{len(traces)} stitched trace(s)")
    return "\n".join(lines)


def _tree_json(node: SpanNode) -> Dict[str, Any]:
    record = {
        key: value for key, value in node.record.items() if key != "_file"
    }
    record["file"] = node.record["_file"]
    record["children"] = [_tree_json(child) for child in node.children]
    return record


def render_json(traces: Sequence[Trace]) -> str:
    """The machine-readable stitched view."""
    payload = {
        "traces": [
            {
                "trace_id": trace.trace_id,
                "spans": trace.span_count(),
                "unresolved_remote_links": trace.orphans,
                "layers": trace.layers(),
                "tree": [_tree_json(root) for root in trace.roots],
            }
            for trace in traces
        ]
    }
    return json.dumps(payload, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.stitch",
        description="Join client+server JSONL traces into per-request trees.",
    )
    parser.add_argument("files", nargs="+", help="JSONL trace files to stitch")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument(
        "--output", default=None, metavar="FILE", help="write here instead of stdout"
    )
    parser.add_argument(
        "--require-chain",
        action="append",
        default=[],
        metavar="A>B>C",
        help="fail (exit 2) unless >=1 trace has these span names on one "
        "ancestor line, in order, gaps allowed (prefix match; repeatable)",
    )
    args = parser.parse_args(argv)

    try:
        traces = stitch(load_records(args.files))
    except (StitchError, OSError) as error:
        print(f"STITCH FAILED: {error}", file=sys.stderr)
        return 1

    rendered = render_text(traces) if args.format == "text" else render_json(traces)
    if args.output is not None:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    else:
        print(rendered)

    failed = False
    for expression in args.require_chain:
        chain = [name.strip() for name in expression.split(">") if name.strip()]
        if not chain:
            print(f"STITCH FAILED: empty --require-chain {expression!r}", file=sys.stderr)
            return 1
        matched = sum(1 for trace in traces if trace.has_chain(chain))
        if matched == 0:
            print(
                f"REQUIRED CHAIN MISSING: {' > '.join(chain)} "
                f"(checked {len(traces)} traces)",
                file=sys.stderr,
            )
            failed = True
        else:
            print(f"chain ok: {' > '.join(chain)} in {matched} trace(s)")
    return 2 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
