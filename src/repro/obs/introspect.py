"""The uniform ``.stats()`` / ``.describe()`` introspection contract.

Every index family exposes::

    index.stats()     # one JSON-safe dict, uniform top-level shape
    index.describe()  # the same data as a human-readable report

The shared shape (all families)::

    {
      "family":          "bptree_adaptive",
      "num_keys":        123456,
      "size_bytes":      1048576,
      "encoding_census": {"succinct": {"count": 10, "avg_bytes": 400.0}, ...},
      "counters":        {...},             # OpCounters snapshot
      "adaptation":      {...} | None,      # adaptive families only
    }

``adaptation`` carries the decision trail the paper's Section 3
machinery produces: sampler state, migration history (from the
:class:`~repro.core.events.EventLog`), and quarantine/degradation
status.  Helpers here build those blocks so the six families stay
byte-for-byte consistent; family modules add extra keys after the
shared ones (e.g. dual-stage merge counts).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.jsonable import to_jsonable

RECENT_EVENTS_KEPT = 8


def census_stats(census: Dict) -> Dict[str, Dict]:
    """Normalize an ``encoding_census()`` mapping into the stats shape."""
    normalized: Dict[str, Dict] = {}
    for encoding, entry in census.items():
        if isinstance(entry, tuple):
            count, avg_bytes = entry
        else:  # plain count (e.g. ART node census)
            count, avg_bytes = entry, None
        key = str(getattr(encoding, "value", encoding))
        normalized[key] = {"count": int(count)}
        if avg_bytes is not None:
            normalized[key]["avg_bytes"] = round(float(avg_bytes), 1)
    return normalized


def manager_stats(manager: Any, recent_events: int = RECENT_EVENTS_KEPT) -> Dict:
    """The adaptation block of ``stats()`` for one AdaptationManager."""
    events = manager.events
    recent = [event.as_dict() for event in events.events[-recent_events:]]
    return {
        "epoch": manager.epoch,
        "skip_length": manager.skip_length,
        "sample_size": manager.sample_size,
        "tracked_units": manager.tracked_units,
        "accesses_seen": manager.counters.accesses,
        "sampled": manager.counters.sampled,
        "phases": manager.counters.adaptation_phases,
        "quarantined_units": manager.quarantined_units,
        "degraded": manager.adaptation_degraded,
        "migration_history": {
            "expansions": events.total_expansions,
            "compactions": events.total_compactions,
            "migrations": events.total_migrations,
            "failures": events.total_migration_failures,
            "quarantined": events.total_quarantined,
            "recent_events": recent,
        },
    }


def base_stats(
    family: str,
    num_keys: int,
    size_bytes: int,
    census: Dict,
    counters_snapshot: Dict[str, int],
    manager: Optional[Any] = None,
) -> Dict:
    """Assemble the uniform stats dict; family modules extend the result."""
    return {
        "family": family,
        "num_keys": int(num_keys),
        "size_bytes": int(size_bytes),
        "encoding_census": census_stats(census),
        "counters": to_jsonable(counters_snapshot),
        "adaptation": manager_stats(manager) if manager is not None else None,
    }


def format_stats(stats: Dict) -> str:
    """Render a ``stats()`` dict as the human-readable ``describe()`` text."""
    lines = [
        f"{stats['family']}: {stats['num_keys']:,} keys, "
        f"{_human_bytes(stats['size_bytes'])}"
    ]
    census = stats.get("encoding_census") or {}
    if census:
        parts = []
        for encoding, entry in sorted(census.items()):
            part = f"{encoding}={entry['count']}"
            if "avg_bytes" in entry:
                part += f" (~{_human_bytes(entry['avg_bytes'])} each)"
            parts.append(part)
        lines.append("  encodings: " + ", ".join(parts))
    adaptation = stats.get("adaptation")
    if adaptation:
        history = adaptation["migration_history"]
        lines.append(
            f"  adaptation: epoch {adaptation['epoch']}, "
            f"skip {adaptation['skip_length']}, "
            f"sample size {adaptation['sample_size']}, "
            f"{adaptation['tracked_units']} tracked units"
        )
        lines.append(
            f"  migrations: {history['expansions']} expansions, "
            f"{history['compactions']} compactions, "
            f"{history['failures']} failures, "
            f"{adaptation['quarantined_units']} quarantined"
            + (" [ADAPTATION DISABLED]" if adaptation["degraded"] else "")
        )
    for key, value in stats.items():
        if key in ("family", "num_keys", "size_bytes", "encoding_census", "counters", "adaptation"):
            continue
        lines.append(f"  {key}: {value}")
    counters = stats.get("counters") or {}
    if counters:
        top = sorted(counters.items(), key=lambda item: -item[1])[:6]
        lines.append("  top counters: " + ", ".join(f"{k}={v:,}" for k, v in top))
    return "\n".join(lines)


def _human_bytes(count: float) -> str:
    count = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return f"{count:,.1f} {unit}" if unit != "B" else f"{int(count)} B"
        count /= 1024
    return f"{count:,.1f} GiB"  # pragma: no cover - unreachable
