"""Trace-schema validation for JSONL span files.

The checked-in schema lives at ``docs/trace_schema.json``.  It is
expressed in JSON-Schema vocabulary for human readers, but validated by
the hand-rolled checker below — the container image carries no
``jsonschema`` package, and the span shape is small enough that a
faithful structural check is ~60 lines.

Beyond per-record shape, :func:`validate_trace` enforces two whole-trace
invariants the schema's ``constraints`` section documents: sequence
ordering (``seq_end >= seq_start``) and referential integrity (every
``parent_id`` names a span that exists in the same trace).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

DEFAULT_SCHEMA_PATH = Path(__file__).resolve().parents[3] / "docs" / "trace_schema.json"

_REQUIRED_FIELDS = ("span_id", "parent_id", "name", "seq_start", "seq_end", "attributes")
_OPTIONAL_FIELDS = ("trace_id",)
_MAX_TRACE_ID = (1 << 64) - 1
_NAME_PATTERN = re.compile(r"^[a-z0-9_.:>-]+$")


class TraceSchemaError(ValueError):
    """A span record (or the whole trace) violates the schema."""


def load_schema(path: Optional[Union[str, Path]] = None) -> Dict:
    """Load the checked-in schema document (sanity-checks its shape).

    Without an explicit ``path``, a missing checked-in file (installed
    package without the repo's ``docs/``) falls back to the validator's
    built-in field list.
    """
    schema_path = Path(path) if path is not None else DEFAULT_SCHEMA_PATH
    if path is None and not schema_path.exists():
        return {"required": list(_REQUIRED_FIELDS)}
    schema = json.loads(schema_path.read_text())
    required = schema.get("required")
    if sorted(required or ()) != sorted(_REQUIRED_FIELDS):
        raise TraceSchemaError(
            f"schema at {schema_path} does not match the validator: "
            f"required={required!r}"
        )
    return schema


def validate_record(record: Dict, line_number: int = 0) -> None:
    """Check one span record's shape; raises :class:`TraceSchemaError`."""
    where = f"line {line_number}: " if line_number else ""
    if not isinstance(record, dict):
        raise TraceSchemaError(f"{where}span record must be an object, got {type(record).__name__}")
    missing = [field for field in _REQUIRED_FIELDS if field not in record]
    if missing:
        raise TraceSchemaError(f"{where}missing fields {missing} in {sorted(record)}")
    extra = [
        field
        for field in record
        if field not in _REQUIRED_FIELDS and field not in _OPTIONAL_FIELDS
    ]
    if extra:
        raise TraceSchemaError(f"{where}unexpected fields {extra}")
    span_id = record["span_id"]
    if not isinstance(span_id, int) or isinstance(span_id, bool) or span_id < 1:
        raise TraceSchemaError(f"{where}span_id must be a positive integer, got {span_id!r}")
    parent_id = record["parent_id"]
    if parent_id is not None and (
        not isinstance(parent_id, int) or isinstance(parent_id, bool) or parent_id < 1
    ):
        raise TraceSchemaError(
            f"{where}parent_id must be null or a positive integer, got {parent_id!r}"
        )
    if parent_id == span_id:
        raise TraceSchemaError(f"{where}span {span_id} cannot be its own parent")
    name = record["name"]
    if not isinstance(name, str) or not name or not _NAME_PATTERN.match(name):
        raise TraceSchemaError(f"{where}invalid span name {name!r}")
    for field in ("seq_start", "seq_end"):
        value = record[field]
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise TraceSchemaError(f"{where}{field} must be a positive integer, got {value!r}")
    if record["seq_end"] < record["seq_start"]:
        raise TraceSchemaError(
            f"{where}span {span_id} ends (seq {record['seq_end']}) "
            f"before it starts (seq {record['seq_start']})"
        )
    if not isinstance(record["attributes"], dict):
        raise TraceSchemaError(f"{where}attributes must be an object")
    if "trace_id" in record:
        trace_id = record["trace_id"]
        if (
            not isinstance(trace_id, int)
            or isinstance(trace_id, bool)
            or not 1 <= trace_id <= _MAX_TRACE_ID
        ):
            raise TraceSchemaError(
                f"{where}trace_id must be an integer in [1, 2**64), got {trace_id!r}"
            )


def validate_trace(records: Sequence[Dict]) -> Dict[str, int]:
    """Validate a whole trace; returns ``{span name: count}`` on success."""
    seen_ids: Dict[int, int] = {}
    names: Dict[str, int] = {}
    for number, record in enumerate(records, start=1):
        validate_record(record, number)
        span_id = record["span_id"]
        if span_id in seen_ids:
            raise TraceSchemaError(
                f"line {number}: span_id {span_id} already used on line {seen_ids[span_id]}"
            )
        seen_ids[span_id] = number
        names[record["name"]] = names.get(record["name"], 0) + 1
    for number, record in enumerate(records, start=1):
        parent_id = record["parent_id"]
        if parent_id is not None and parent_id not in seen_ids:
            raise TraceSchemaError(
                f"line {number}: parent_id {parent_id} names no span in this trace"
            )
    return names


def validate_trace_file(
    path: Union[str, Path],
    schema_path: Optional[Union[str, Path]] = None,
) -> Dict[str, int]:
    """Validate a JSONL trace file against the checked-in schema."""
    load_schema(schema_path)  # confirms the schema and validator agree
    records: List[Dict] = []
    with Path(path).open() as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise TraceSchemaError(f"line {number}: not valid JSON ({error})") from error
    if not records:
        raise TraceSchemaError(f"{path}: trace contains no spans")
    return validate_trace(records)
