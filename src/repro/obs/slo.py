"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`Objective` declares an error budget over a cumulative signal
already flowing through the :class:`~repro.obs.metrics.MetricsRegistry`:

* **latency** — "p99 of ``net.request_seconds`` < 10ms" becomes
  *at most 1% of observations may exceed 0.01s*: ``threshold_s=0.01``,
  ``target=0.01``, counted straight off the histogram's cumulative
  buckets (align the threshold with a bucket boundary; observations in
  a straddling bucket count as bad, so the estimate is conservative);
* **ratio** — "shed rate < 5%" becomes *bad counters / total counter ≤
  0.05*: ``bad=("net.shed.throttled", "net.shed.overloaded")``,
  ``total="net.requests"``, ``target=0.05``.

:class:`SloMonitor` samples the cumulative (bad, total) pairs on every
:meth:`~SloMonitor.observe` tick and evaluates the *burn rate* — the
fraction of the error budget being spent, ``(Δbad/Δtotal) / target`` —
over a fast and a slow sliding window (the standard multi-window
alerting shape: the fast window catches a new fire quickly, the slow
window stops a brief blip from paging).  A run younger than a window
uses its oldest sample as the baseline, so short loadgen runs still
page under sustained overload.  States:

=========  ===================================================
``ok``     burn below ``warn_burn`` on either window
``warn``   both windows at or above ``warn_burn``
``page``   both windows at or above ``page_burn``
=========  ===================================================

Every tick publishes labeled gauges — ``slo.burn_fast`` /
``slo.burn_slow`` / ``slo.state`` with an ``objective`` label — so the
alert state rides the Prometheus export and the STATS snapshot for free.

:func:`parse_check` / :func:`evaluate_checks` implement the ``--slo``
flags the loadgen and crash-campaign harnesses expose: simple
``metric<bound`` expressions evaluated against a flat summary dict,
returning human-readable violations.
"""

from __future__ import annotations

import re
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry

#: RA004: literal gauge names for the alerting surface.
_BURN_FAST_GAUGE = "slo.burn_fast"
_BURN_SLOW_GAUGE = "slo.burn_slow"
_STATE_GAUGE = "slo.state"

STATES: Tuple[str, ...] = ("ok", "warn", "page")
_STATE_VALUES = {state: value for value, state in enumerate(STATES)}

_OBJECTIVE_NAME = re.compile(r"^[a-z0-9_]+$")


@dataclass(frozen=True)
class Objective:
    """One declarative objective over registry instruments."""

    name: str
    kind: str  # "latency" | "ratio"
    target: float  # allowed bad fraction (the error budget)
    description: str = ""
    histogram: str = ""  # latency: source histogram instrument
    threshold_s: float = 0.0  # latency: good/bad boundary, in seconds
    bad: Tuple[str, ...] = ()  # ratio: numerator counters
    total: str = ""  # ratio: denominator counter

    def __post_init__(self) -> None:
        if not _OBJECTIVE_NAME.match(self.name):
            raise ValueError(f"objective name {self.name!r} must be [a-z0-9_]+")
        if not 0.0 < self.target < 1.0:
            raise ValueError(f"objective {self.name!r}: target must be in (0, 1)")
        if self.kind == "latency":
            if not self.histogram or self.threshold_s <= 0.0:
                raise ValueError(
                    f"objective {self.name!r}: latency kind needs histogram + threshold_s"
                )
        elif self.kind == "ratio":
            if not self.bad or not self.total:
                raise ValueError(
                    f"objective {self.name!r}: ratio kind needs bad counters + total"
                )
        else:
            raise ValueError(f"objective {self.name!r}: unknown kind {self.kind!r}")

    def cumulative(self, registry: MetricsRegistry) -> Tuple[float, float]:
        """Current cumulative ``(bad, total)`` for this objective."""
        if self.kind == "latency":
            histogram = registry.get_histogram(self.histogram)
            if histogram is None:
                return 0.0, 0.0
            within = bisect_right(histogram.boundaries, self.threshold_s)
            good = sum(histogram.bucket_counts[:within])
            return float(histogram.count - good), float(histogram.count)
        total_counter = registry.get_counter(self.total)
        if total_counter is None:
            return 0.0, 0.0
        bad = 0.0
        for name in self.bad:
            counter = registry.get_counter(name)
            if counter is not None:
                bad += counter.value
        # Sheds are not part of the served-total counter semantics here:
        # the denominator is all requests seen, bad is the shed subset.
        return bad, float(total_counter.value)


def latency_objective(
    name: str,
    histogram: str,
    threshold_s: float,
    target: float = 0.01,
    description: str = "",
) -> Objective:
    """Budget ``target`` of observations above ``threshold_s``."""
    return Objective(
        name=name,
        kind="latency",
        target=target,
        histogram=histogram,
        threshold_s=threshold_s,
        description=description,
    )


def ratio_objective(
    name: str,
    bad: Sequence[str],
    total: str,
    target: float,
    description: str = "",
) -> Objective:
    """Budget ``target`` of ``total`` events landing in ``bad`` counters."""
    return Objective(
        name=name,
        kind="ratio",
        target=target,
        bad=tuple(bad),
        total=total,
        description=description,
    )


def default_net_objectives(
    p99_s: float = 0.01, shed_target: float = 0.05
) -> List[Objective]:
    """The stock serving-path objectives the net server monitors."""
    return [
        latency_objective(
            "net_request_p99",
            histogram="net.request_seconds",
            threshold_s=p99_s,
            target=0.01,
            description=f"p99 request latency < {p99_s * 1000:g}ms",
        ),
        ratio_objective(
            "net_shed_rate",
            bad=("net.shed.throttled", "net.shed.overloaded"),
            total="net.requests",
            target=shed_target,
            description=f"admission shed rate < {shed_target:.0%}",
        ),
    ]


@dataclass
class _Sample:
    at: float
    bad: float
    total: float


class SloMonitor:
    """Evaluates objectives over sliding windows; publishes burn gauges."""

    def __init__(
        self,
        objectives: Sequence[Objective],
        fast_window: float = 60.0,
        slow_window: float = 600.0,
        warn_burn: float = 1.0,
        page_burn: float = 6.0,
    ) -> None:
        if not objectives:
            raise ValueError("SloMonitor needs at least one objective")
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate objective names in {names}")
        if not 0 < fast_window <= slow_window:
            raise ValueError("need 0 < fast_window <= slow_window")
        if not 0 < warn_burn <= page_burn:
            raise ValueError("need 0 < warn_burn <= page_burn")
        self.objectives = list(objectives)
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.warn_burn = warn_burn
        self.page_burn = page_burn
        self._samples: Dict[str, Deque[_Sample]] = {name: deque() for name in names}
        self._status: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    def observe(self, registry: MetricsRegistry, now: float) -> Dict[str, str]:
        """Take one sample at time ``now``; returns ``{objective: state}``."""
        states: Dict[str, str] = {}
        for objective in self.objectives:
            samples = self._samples[objective.name]
            bad, total = objective.cumulative(registry)
            samples.append(_Sample(now, bad, total))
            horizon = now - self.slow_window
            while len(samples) > 2 and samples[1].at <= horizon:
                samples.popleft()
            burn_fast = self._burn(samples, now, self.fast_window, objective.target)
            burn_slow = self._burn(samples, now, self.slow_window, objective.target)
            effective = min(burn_fast, burn_slow)
            if effective >= self.page_burn:
                state = "page"
            elif effective >= self.warn_burn:
                state = "warn"
            else:
                state = "ok"
            states[objective.name] = state
            self._status[objective.name] = {
                "kind": objective.kind,
                "target": objective.target,
                "description": objective.description,
                "state": state,
                "burn_fast": burn_fast,
                "burn_slow": burn_slow,
                "bad": bad,
                "total": total,
            }
            labels = {"objective": objective.name}
            registry.gauge(_BURN_FAST_GAUGE, "fast-window burn rate", labels).set(
                burn_fast
            )
            registry.gauge(_BURN_SLOW_GAUGE, "slow-window burn rate", labels).set(
                burn_slow
            )
            registry.gauge(_STATE_GAUGE, "0=ok 1=warn 2=page", labels).set(
                _STATE_VALUES[state]
            )
        return states

    @staticmethod
    def _burn(
        samples: "Deque[_Sample]", now: float, window: float, target: float
    ) -> float:
        newest = samples[-1]
        baseline = samples[0]
        cutoff = now - window
        for sample in samples:
            if sample.at <= cutoff:
                baseline = sample
            else:
                break
        delta_total = newest.total - baseline.total
        if delta_total <= 0:
            return 0.0
        delta_bad = newest.bad - baseline.bad
        return (delta_bad / delta_total) / target

    # ------------------------------------------------------------------
    def state_of(self, objective: str) -> str:
        """Latest state for ``objective`` (``ok`` before the first tick)."""
        status = self._status.get(objective)
        return str(status["state"]) if status is not None else "ok"

    def worst_state(self) -> str:
        """The most severe state across objectives."""
        worst = 0
        for status in self._status.values():
            worst = max(worst, _STATE_VALUES[str(status["state"])])
        return STATES[worst]

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe view of objectives, burn rates, and states."""
        return {
            "windows": {
                "fast_s": self.fast_window,
                "slow_s": self.slow_window,
                "warn_burn": self.warn_burn,
                "page_burn": self.page_burn,
            },
            "worst": self.worst_state(),
            "objectives": {name: dict(status) for name, status in self._status.items()},
        }


# ----------------------------------------------------------------------
# --slo expression checks (loadgen / crash-campaign harnesses)
# ----------------------------------------------------------------------
_CHECK_EXPR = re.compile(
    r"^\s*(?P<metric>[A-Za-z0-9_.]+)\s*"
    r"(?P<op><=|>=|==|=|<|>)\s*"
    r"(?P<bound>[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)\s*$"
)

_OPS = {
    "<": lambda value, bound: value < bound,
    "<=": lambda value, bound: value <= bound,
    ">": lambda value, bound: value > bound,
    ">=": lambda value, bound: value >= bound,
    "==": lambda value, bound: value == bound,
}


@dataclass(frozen=True)
class SloCheck:
    """One parsed ``--slo`` expression, e.g. ``p99<0.01``."""

    metric: str
    op: str
    bound: float
    source: str

    def ok(self, value: float) -> bool:
        """True when ``value`` satisfies the expression."""
        return _OPS[self.op](value, self.bound)


def parse_check(expression: str) -> SloCheck:
    """Parse ``metric<bound`` (ops: ``< <= > >= = ==``)."""
    match = _CHECK_EXPR.match(expression)
    if match is None:
        raise ValueError(
            f"bad --slo expression {expression!r} (want e.g. 'p99<0.01', 'shed_fraction<=0.05')"
        )
    op = match.group("op")
    return SloCheck(
        metric=match.group("metric"),
        op="==" if op == "=" else op,
        bound=float(match.group("bound")),
        source=expression.strip(),
    )


def evaluate_checks(
    values: Mapping[str, float], checks: Sequence[SloCheck]
) -> List[str]:
    """Violation messages for every failed (or unresolvable) check."""
    violations: List[str] = []
    for check in checks:
        value: Optional[float] = values.get(check.metric)
        if value is None:
            known = ", ".join(sorted(values))
            violations.append(
                f"slo {check.source!r}: metric {check.metric!r} not found (have: {known})"
            )
            continue
        if not check.ok(value):
            violations.append(
                f"slo {check.source!r} violated: {check.metric}={value:g} "
                f"(bound {check.op} {check.bound:g})"
            )
    return violations
