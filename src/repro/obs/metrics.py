"""Named-instrument metrics: counters, gauges, and fixed-bucket histograms.

The registry is deliberately wall-clock-free: counters and gauges hold
plain integers/floats, and histograms bucket *modeled* quantities
(modeled nanoseconds, batch sizes, entries migrated) against boundaries
fixed at creation time — nothing in the hot path ever reads a clock.

Two publication styles coexist:

* **push** — phase-level code (the adaptation manager, the Bloom filter
  on reset, the fault injector on a raise) grabs an instrument once and
  records into it.  These sites run at most once per adaptation phase,
  so their cost is irrelevant.
* **pull** — the per-operation :class:`~repro.sim.counters.OpCounters`
  streams are far too hot to publish per increment; instead exporters
  call :meth:`MetricsRegistry.ingest_counters` with a snapshot, which
  materializes one registry counter per event name.  The hot path pays
  nothing.

``to_prometheus`` renders the whole registry in the Prometheus text
exposition format (version 0.0.4); :func:`parse_prometheus` is the
matching minimal parser the CI smoke job and the tests use to prove the
output is well-formed without a third-party dependency.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

# Shared fixed boundaries.  Powers of two suit batch sizes and entry
# counts; the cost buckets span the modeled-ns range the cost model
# produces (tens of ns to tens of ms for a full merge).
SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536)
COST_NS_BUCKETS: Tuple[float, ...] = (
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000,
    250_000, 1_000_000, 10_000_000, 100_000_000,
)
RATIO_BUCKETS: Tuple[float, ...] = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
# Wall-clock request latencies in *seconds*, log-spaced from 50us to 10s.
# The size/cost boundaries above would collapse every networked tail into
# one bucket; these are the default for every ``net.*`` and service
# op-latency histogram, so p99/p999 interpolation has resolution where
# asyncio round-trips actually land.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def set_total(self, total: int) -> None:
        """Install an absolute cumulative total (pull-style ingestion)."""
        if total < self.value:
            raise ValueError(
                f"counter {self.name!r} cannot move backwards "
                f"({self.value} -> {total})"
            )
        self.value = total


class Gauge:
    """A named value that may go up and down.

    A gauge may carry a fixed label set (e.g. ``objective="net_get_p99"``
    on the SLO burn-rate gauges); labeled siblings share the metric name
    and render as separate samples in the Prometheus exposition.
    """

    __slots__ = ("name", "help", "value", "labels")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        self.name = name
        self.help = help
        self.value = 0.0
        self.labels = labels

    def set(self, value: float) -> None:
        """Install the current value."""
        self.value = value


class Histogram:
    """Fixed-boundary cumulative histogram (Prometheus semantics).

    ``boundaries`` are the *upper* bucket bounds; an implicit +Inf bucket
    catches everything beyond the last.  Recording is one bisect plus one
    list increment — no clocks, no allocation.
    """

    __slots__ = ("name", "help", "boundaries", "bucket_counts", "total", "count")

    def __init__(
        self,
        name: str,
        boundaries: Sequence[float] = SIZE_BUCKETS,
        help: str = "",
    ) -> None:
        bounds = tuple(float(bound) for bound in boundaries)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one boundary")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r} boundaries must strictly increase")
        self.name = name
        self.help = help
        self.boundaries = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +Inf last
        self.total = 0.0
        self.count = 0

    def record(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Observations <= each boundary, then the +Inf total."""
        running = 0
        out = []
        for bucket in self.bucket_counts:
            running += bucket
            out.append(running)
        return out

    @property
    def mean(self) -> float:
        """Average observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimate, interpolated within its bucket.

        The rank ``q * count`` is located in the cumulative bucket
        counts and mapped back to a value by linear interpolation
        between the bucket's lower and upper boundary (the first
        bucket's lower edge is 0.0, or ``boundaries[0]`` when that is
        negative).

        Contract at the edges (tested in ``tests/obs/test_quantiles.py``):

        * **empty histogram** — returns 0.0 for every ``q`` (the
          :attr:`mean` convention), never raises;
        * ``q == 0.0`` — returns the lower edge of the first occupied
          bucket;
        * ``q == 1.0`` with no overflow — returns the upper boundary of
          the last occupied bucket;
        * **rank in the +Inf overflow bucket** — returns the last finite
          boundary, exactly (no interpolation into the unbounded bucket:
          the estimate can only under-report past the configured range,
          never invent values);
        * ``q`` outside ``[0, 1]`` — raises :class:`ValueError`.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        if target > self.count - self.bucket_counts[-1]:
            return self.boundaries[-1]  # rank lands in the +Inf bucket: clamp
        running = 0
        lower = min(0.0, self.boundaries[0])
        for upper, bucket in zip(self.boundaries, self.bucket_counts):
            if bucket and running + bucket >= target:
                fraction = (target - running) / bucket
                return lower + (upper - lower) * fraction
            running += bucket
            lower = upper
        return self.boundaries[-1]

    def summary(self) -> Dict[str, float]:
        """Count, sum, mean, and the tail quantiles as one plain dict."""
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }


class MetricsRegistry:
    """Get-or-create home of every named instrument.

    Gauges may carry labels; the gauge map is keyed by the rendered
    sample key (``name{label="value"}``, escaped) so labeled siblings
    coexist under one metric name.  Counters and histograms stay
    label-free — every current producer is a plain cumulative stream.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._kinds: Dict[str, str] = {}

    # -- instrument access ----------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        """The counter named ``name`` (created on first use)."""
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_fresh(name, "counter")
            instrument = self._counters[name] = Counter(name, help)
        return instrument

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        """The gauge named ``name`` (+ label set), created on first use."""
        label_items = tuple(sorted(labels.items())) if labels else ()
        key = sample_key(name, label_items)
        instrument = self._gauges.get(key)
        if instrument is None:
            self._check_fresh(name, "gauge")
            instrument = self._gauges[key] = Gauge(name, help, label_items)
        return instrument

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = SIZE_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_fresh(name, "histogram")
            instrument = self._histograms[name] = Histogram(name, boundaries, help)
        return instrument

    def _check_fresh(self, name: str, kind: str) -> None:
        existing = self._kinds.get(name)
        if existing is not None and existing != kind:
            raise ValueError(f"instrument name {name!r} already used with another type")
        self._kinds[name] = kind

    # -- read-only peeks (no instrument creation) ------------------------
    def get_counter(self, name: str) -> Optional[Counter]:
        """The counter named ``name`` if it already exists, else None."""
        return self._counters.get(name)

    def get_gauge(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[Gauge]:
        """The gauge named ``name`` (+ label set) if it exists, else None."""
        label_items = tuple(sorted(labels.items())) if labels else ()
        return self._gauges.get(sample_key(name, label_items))

    def get_histogram(self, name: str) -> Optional[Histogram]:
        """The histogram named ``name`` if it already exists, else None."""
        return self._histograms.get(name)

    def histogram_summaries(self, prefix: str = "") -> Dict[str, Dict[str, float]]:
        """``{name: summary}`` for every histogram under ``prefix``."""
        return {
            name: h.summary()
            for name, h in sorted(self._histograms.items())
            if name.startswith(prefix)
        }

    # -- pull-style ingestion -------------------------------------------
    def ingest_counters(self, snapshot: Dict[str, int], prefix: str = "ops") -> None:
        """Publish an :class:`OpCounters` snapshot as absolute counters.

        Event names keep their conventional form (``leaf_visit:gapped``)
        under ``<prefix>.``; repeated ingestion of growing snapshots is
        idempotent because totals are installed, not added.
        """
        for event, count in snapshot.items():
            # repro: ignore[RA004] -- generic republishing helper: names are
            # <prefix>.<event> for caller-supplied snapshots, open-ended by design.
            self.counter(f"{prefix}.{event}").set_total(count)

    # -- introspection ---------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """All instruments and their current values as plain dicts."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {
                name: {
                    "count": h.count,
                    "sum": h.total,
                    "mean": h.mean,
                    "boundaries": list(h.boundaries),
                    "bucket_counts": list(h.bucket_counts),
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    # -- Prometheus text exposition --------------------------------------
    def to_prometheus(self, namespace: str = "repro") -> str:
        """The whole registry in text exposition format 0.0.4."""
        lines: List[str] = []
        for name, counter in sorted(self._counters.items()):
            metric = _prom_name(namespace, name) + "_total"
            lines.append(f"# TYPE {metric} counter")
            if counter.help:
                lines.append(f"# HELP {metric} {counter.help}")
            lines.append(f"{metric} {_prom_value(counter.value)}")
        previous_metric = None
        for key, gauge in sorted(self._gauges.items(), key=lambda kv: (kv[1].name, kv[0])):
            metric = _prom_name(namespace, gauge.name)
            if metric != previous_metric:
                lines.append(f"# TYPE {metric} gauge")
                if gauge.help:
                    lines.append(f"# HELP {metric} {gauge.help}")
                previous_metric = metric
            if gauge.labels:
                rendered = ",".join(
                    f'{label}="{escape_label_value(value)}"'
                    for label, value in gauge.labels
                )
                lines.append(f"{metric}{{{rendered}}} {_prom_value(gauge.value)}")
            else:
                lines.append(f"{metric} {_prom_value(gauge.value)}")
        for name, histogram in sorted(self._histograms.items()):
            metric = _prom_name(namespace, name)
            lines.append(f"# TYPE {metric} histogram")
            if histogram.help:
                lines.append(f"# HELP {metric} {histogram.help}")
            cumulative = histogram.cumulative_counts()
            for bound, count in zip(histogram.boundaries, cumulative):
                lines.append(f'{metric}_bucket{{le="{_prom_value(bound)}"}} {count}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative[-1]}')
            lines.append(f"{metric}_sum {_prom_value(histogram.total)}")
            lines.append(f"{metric}_count {histogram.count}")
        return "\n".join(lines) + "\n"


_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")
_SAMPLE_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*")
_SAMPLE_VALUE = re.compile(r"^[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN)$")
_ESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _prom_name(namespace: str, name: str) -> str:
    return _NAME_SANITIZE.sub("_", f"{namespace}_{name}")


def _prom_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format (0.0.4)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def sample_key(name: str, labels: Sequence[Tuple[str, str]]) -> str:
    """The canonical sample key: ``name`` or ``name{label="escaped"}``."""
    if not labels:
        return name
    rendered = ",".join(f'{label}="{escape_label_value(value)}"' for label, value in labels)
    return f"{name}{{{rendered}}}"


def split_sample_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Parse a sample key back into ``(name, {label: unescaped value})``."""
    name, labels, rest = _parse_name_and_labels(key, 0)
    if rest:
        raise ValueError(f"trailing text {rest!r} after sample key")
    return name, dict(labels)


def _parse_name_and_labels(line: str, lineno: int) -> Tuple[str, List[Tuple[str, str]], str]:
    """Scan ``name{label="value",...}`` off the front of ``line``.

    Label values are unescaped; the remainder of the line is returned
    verbatim.  A regex cannot do this — escaped ``"`` and ``}`` inside a
    value defeat any ``[^}]*`` label capture — so this is a character
    scanner, and it is what makes :func:`parse_prometheus` able to
    round-trip values containing backslashes, quotes, and newlines.
    """
    where = f"line {lineno}: " if lineno else ""
    name_match = _SAMPLE_NAME.match(line)
    if name_match is None:
        raise ValueError(f"{where}malformed sample name in {line!r}")
    name = name_match.group(0)
    position = name_match.end()
    labels: List[Tuple[str, str]] = []
    if position < len(line) and line[position] == "{":
        position += 1
        try:
            while True:
                if line[position] == "}":
                    position += 1
                    break
                label_match = _LABEL_NAME.match(line[position:])
                if label_match is None:
                    raise ValueError(f"{where}malformed label name at {line[position:]!r}")
                label = label_match.group(0)
                position += label_match.end()
                if line[position : position + 2] != '="':
                    raise ValueError(f"{where}label {label!r} missing quoted value")
                position += 2
                chars: List[str] = []
                while True:
                    char = line[position]
                    if char == "\\":
                        escaped = _ESCAPES.get(line[position + 1])
                        if escaped is None:
                            raise ValueError(
                                f"{where}bad escape \\{line[position + 1]!r} "
                                f"in label {label!r}"
                            )
                        chars.append(escaped)
                        position += 2
                    elif char == '"':
                        position += 1
                        break
                    else:
                        chars.append(char)
                        position += 1
                labels.append((label, "".join(chars)))
                if line[position] == ",":
                    position += 1
        except IndexError:
            raise ValueError(f"{where}unterminated label set in {line!r}") from None
    return name, labels, line[position:]


def parse_prometheus(text: str) -> Dict[str, float]:
    """Parse a text exposition into ``{name{labels}: value}``.

    Sample keys are re-rendered canonically (escaped label values, no
    whitespace), so ``split_sample_key`` recovers the original label
    values exactly — including ``\\``, ``"``, and newlines.  Raises
    :class:`ValueError` on any malformed line — this is the validation
    the CI smoke job runs over exported snapshots.
    """
    samples: Dict[str, float] = {}
    types: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            kinds = ("counter", "gauge", "histogram", "summary", "untyped")
            if len(parts) != 4 or parts[3] not in kinds:
                raise ValueError(f"line {lineno}: malformed TYPE comment {raw!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        name, labels, rest = _parse_name_and_labels(line, lineno)
        if not rest or not rest[0].isspace():
            raise ValueError(f"line {lineno}: malformed sample {raw!r}")
        value_text = rest.strip()
        if _SAMPLE_VALUE.match(value_text) is None:
            raise ValueError(f"line {lineno}: malformed sample value {value_text!r}")
        key = sample_key(name, labels)
        if key in samples:
            raise ValueError(f"line {lineno}: duplicate sample {key!r}")
        samples[key] = (
            float("inf") if value_text in ("Inf", "+Inf") else float(value_text)
        )
    if not samples:
        raise ValueError("exposition contains no samples")
    return samples


def iter_instrument_names(samples: Iterable[str]) -> List[str]:
    """Bare metric names (labels and suffixes stripped) from parse output."""
    names = set()
    for key in samples:
        names.add(key.split("{", 1)[0])
    return sorted(names)
