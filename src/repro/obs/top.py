"""Live ops console over the STATS opcode.

``repro.obs.top`` is the operator's view of one running
:class:`~repro.net.server.NetServer`: it polls the structured STATS
snapshot over a plain :class:`~repro.net.client.NetClient` connection
and renders per-tenant admission/shed rates, the coalescer's batching,
per-shard encoding mix / migrations / WAL lag, latency histogram
summaries, and the SLO burn states::

    python -m repro.obs.top --host 127.0.0.1 --port 9344          # refresh loop
    python -m repro.obs.top --port 9344 --once                    # one frame
    python -m repro.obs.top --port 9344 --once --json             # raw snapshot

The rendering is a pure function over the snapshot dict
(:func:`render_snapshot`), so tests cover the console without a server.
Shed *rates* are computed between refreshes from the cumulative arbiter
counters; the first frame shows lifetime fractions.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.net.client import NetClient

_CLEAR = "\x1b[2J\x1b[H"


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - loop always returns


def _fmt_ms(seconds: object) -> str:
    if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
        return "-"
    return f"{seconds * 1000.0:.2f}ms"


def _fmt_plain(value: object) -> str:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return "-"
    return f"{value:g}"


def _tenant_rates(
    arbiter: Mapping[str, Any],
    previous: Optional[Mapping[str, Any]],
) -> List[Tuple[str, Dict[str, Any]]]:
    """Per-tenant admission rows with interval shed rates."""
    rows: List[Tuple[str, Dict[str, Any]]] = []
    tenants = arbiter.get("tenants", {})
    prev_tenants = (previous or {}).get("tenants", {})
    for name, state in sorted(tenants.items()):
        admitted = float(state.get("admitted", 0))
        shed = float(state.get("throttled", 0)) + float(state.get("overloaded", 0))
        prev = prev_tenants.get(name, {})
        d_admitted = admitted - float(prev.get("admitted", 0))
        d_shed = shed - (
            float(prev.get("throttled", 0)) + float(prev.get("overloaded", 0))
        )
        d_total = d_admitted + d_shed
        rows.append(
            (
                name,
                {
                    "inflight": state.get("inflight", 0),
                    "admitted": int(admitted),
                    "shed": int(shed),
                    "shed_rate": (d_shed / d_total) if d_total > 0 else 0.0,
                },
            )
        )
    return rows


def _shard_row(
    label: str,
    family: str,
    info: Mapping[str, Any],
    census: Mapping[str, Any],
) -> str:
    """One shard-table line (shared by plain shards and replica rows).

    For replica rows ``family`` carries the divergence profile and
    ``info`` is the per-replica stats dict, so the console shows each
    copy's own encoding mix, ops, and WAL lag instead of an aggregate.
    """
    mix = (
        " ".join(
            f"{encoding}:{entry.get('count', entry) if isinstance(entry, Mapping) else entry}"
            for encoding, entry in sorted(census.items())
        )
        or "-"
    )
    lag = info.get("wal_lag")
    return (
        f"  {label:<16} "
        f"{family:<16} "
        f"{info.get('num_keys', 0):>9} {info.get('ops', 0):>9} "
        f"{info.get('migrations', 0):>5} "
        f"{'-' if lag is None else lag:>8}  {mix}"
    )


def render_snapshot(
    stats: Mapping[str, Any],
    previous: Optional[Mapping[str, Any]] = None,
) -> str:
    """One console frame from a STATS snapshot (pure; fully testable)."""
    lines: List[str] = []
    server = stats.get("server", {})
    coalescer = stats.get("coalescer", {})
    lines.append(
        "server: "
        f"conns={server.get('connections', '-')} "
        f"requests={server.get('requests', '-')} "
        f"sheds={server.get('sheds', '-')} "
        f"proto_errors={server.get('protocol_errors', '-')} "
        f"admission={'on' if server.get('admission') else 'off'}"
    )
    flushed = max(1, int(coalescer.get("batches_flushed", 0) or 0))
    coalesced = int(coalescer.get("requests_coalesced", 0) or 0)
    lines.append(
        "coalescer: "
        f"enabled={coalescer.get('enabled', '-')} "
        f"max_batch={coalescer.get('max_batch', '-')} "
        f"batches={coalescer.get('batches_flushed', '-')} "
        f"avg_batch={coalesced / flushed:.2f}"
    )

    lines.append("")
    lines.append("tenants:")
    lines.append(
        f"  {'name':<12} {'shards':>6} {'keys':>10} {'bytes':>10} "
        f"{'inflight':>8} {'admitted':>9} {'shed':>7} {'shed%':>6}"
    )
    tenants = stats.get("tenants", {})
    previous_arbiter = (previous or {}).get("arbiter")
    rates = dict(_tenant_rates(stats.get("arbiter", {}), previous_arbiter))
    for name, info in sorted(tenants.items()):
        rate = rates.get(name, {})
        lines.append(
            f"  {name:<12} {info.get('num_shards', 0):>6} "
            f"{info.get('num_keys', 0):>10} "
            f"{_fmt_bytes(float(info.get('size_bytes', 0))):>10} "
            f"{rate.get('inflight', 0):>8} {rate.get('admitted', 0):>9} "
            f"{rate.get('shed', 0):>7} {rate.get('shed_rate', 0.0) * 100:>5.1f}%"
        )

    shards = stats.get("shards", {})
    if shards:
        lines.append("")
        lines.append("shards:")
        lines.append(
            f"  {'tenant/shard':<16} {'family':<16} {'keys':>9} {'ops':>9} "
            f"{'migr':>5} {'wal_lag':>8}  encodings"
        )
        for tenant, shard_list in sorted(shards.items()):
            for shard in shard_list:
                shard_label = tenant + "/" + str(shard.get("shard_id", "?"))
                replicas = shard.get("replicas")
                if replicas:
                    # A replicated shard renders one row per replica —
                    # the whole point of divergence is that the copies
                    # differ, so an aggregate row would hide the signal.
                    for replica in replicas:
                        label = f"{shard_label}.r{replica.get('replica', '?')}"
                        profile = str(replica.get("profile", "-"))
                        if replica.get("down"):
                            profile += "!"
                        lines.append(
                            _shard_row(
                                label,
                                profile,
                                replica,
                                replica.get("encoding_census", {}) or {},
                            )
                        )
                    continue
                lines.append(
                    _shard_row(
                        shard_label,
                        str(shard.get("family", "-")),
                        shard,
                        shard.get("encoding_census", {}) or {},
                    )
                )

    latency = stats.get("latency", {})
    if latency:
        lines.append("")
        lines.append("latency:")
        lines.append(
            f"  {'histogram':<28} {'count':>9} {'mean':>9} {'p50':>9} "
            f"{'p99':>9} {'p999':>9}"
        )
        for name, summary in sorted(latency.items()):
            # Only *_seconds histograms are durations; the rest (batch
            # sizes etc.) render as plain numbers.
            fmt = _fmt_ms if name.endswith("_seconds") else _fmt_plain
            lines.append(
                f"  {name:<28} {int(summary.get('count', 0)):>9} "
                f"{fmt(summary.get('mean')):>9} {fmt(summary.get('p50')):>9} "
                f"{fmt(summary.get('p99')):>9} {fmt(summary.get('p999')):>9}"
            )

    slo = stats.get("slo")
    if slo:
        lines.append("")
        lines.append(f"slo: worst={slo.get('worst', 'ok')}")
        for name, status in sorted(slo.get("objectives", {}).items()):
            lines.append(
                f"  {name:<20} state={status.get('state', '-'):<5} "
                f"burn_fast={status.get('burn_fast', 0.0):.2f} "
                f"burn_slow={status.get('burn_slow', 0.0):.2f} "
                f"bad={status.get('bad', 0):.0f}/{status.get('total', 0):.0f}"
            )
    return "\n".join(lines)


async def run(
    host: str,
    port: int,
    interval: float,
    once: bool,
    as_json: bool,
    frames: Optional[int] = None,
) -> int:
    """Poll STATS and render frames until interrupted (or ``frames``)."""
    client = await NetClient.connect(host, port)
    previous: Optional[Dict[str, Any]] = None
    shown = 0
    try:
        while True:
            stats = await client.stats()
            if as_json:
                print(json.dumps(stats, indent=2, sort_keys=True))
            else:
                frame = render_snapshot(stats, previous)
                if once or frames is not None:
                    print(frame)
                else:  # pragma: no cover - interactive path
                    print(_CLEAR + frame, flush=True)
            previous = stats
            shown += 1
            if once or (frames is not None and shown >= frames):
                return 0
            await asyncio.sleep(interval)
    finally:
        await client.close()


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top",
        description="Live ops console over a NetServer's STATS opcode.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    parser.add_argument("--once", action="store_true", help="one frame, then exit")
    parser.add_argument(
        "--json", action="store_true", help="print the raw snapshot as JSON"
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=None,
        help="exit after N refreshes (testing/smoke)",
    )
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error("--interval must be positive")
    try:
        return asyncio.run(
            run(args.host, args.port, args.interval, args.once, args.json, args.frames)
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        return 0
    except (ConnectionError, OSError) as error:
        print(f"TOP FAILED: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
