"""The human-readable console exporter.

Renders a :class:`~repro.obs.runtime.Telemetry` (or a bare registry
snapshot) as the text report the harness prints after a run with
``--metrics``/``--trace`` enabled.  Nothing here is machine-parsed; the
JSONL and Prometheus exporters carry the structured forms.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


def render_metrics(snapshot: Dict, max_counters: int = 24) -> str:
    """One registry ``snapshot()`` as an aligned console block."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        shown = sorted(counters.items(), key=lambda item: (-item[1], item[0]))
        for name, value in shown[:max_counters]:
            lines.append(f"  {name:<44} {value:>14,}")
        if len(shown) > max_counters:
            lines.append(f"  ... and {len(shown) - max_counters} more")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name, value in sorted(gauges.items()):
            rendered = f"{value:,.3f}".rstrip("0").rstrip(".")
            lines.append(f"  {name:<44} {rendered:>14}")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name, data in sorted(histograms.items()):
            lines.append(
                f"  {name:<44} n={data['count']:<9,} "
                f"mean={data['mean']:,.1f} sum={data['sum']:,.1f}"
            )
    return "\n".join(lines) if lines else "(no instruments recorded)"


def render_trace_summary(span_names: Dict[str, int]) -> str:
    """Span-name histogram (output of ``schema.validate_trace``)."""
    if not span_names:
        return "(no spans emitted)"
    total = sum(span_names.values())
    lines = [f"spans: {total:,} total"]
    for name, count in sorted(span_names.items(), key=lambda item: (-item[1], item[0])):
        lines.append(f"  {name:<44} {count:>10,}")
    return "\n".join(lines)


def render_telemetry(telemetry: Any, title: Optional[str] = None) -> str:
    """Full console report for one installed Telemetry."""
    header = f"== telemetry report{': ' + title if title else ''} =="
    parts = [header, render_metrics(telemetry.registry.snapshot())]
    if telemetry.tracer is not None:
        parts.append(
            f"tracing: {telemetry.tracer.spans_emitted:,} spans emitted, "
            f"op sampling 1/{telemetry.tracer.op_sample_every or 'off'}"
        )
    return "\n".join(parts)
