"""The telemetry switchboard: one process-global, default off.

Instrumented call sites throughout the codebase ask two questions::

    registry = active_registry()   # None unless telemetry is installed
    tracer = active_tracer()       # None unless tracing is enabled

Both return ``None`` by default, so every instrumentation point reduces
to a global read plus an ``is None`` branch — the "no-op recorder"
contract that ``benchmarks/bench_obs_overhead.py`` holds to a <=5%
overhead bound on the hot paths.

:class:`Telemetry` bundles a metrics registry with an optional tracer
and installs/uninstalls like the fault injector::

    with Telemetry.with_jsonl_trace("run.jsonl") as telemetry:
        run_workload()
    print(telemetry.registry.to_prometheus())

Installation nests: installing a second telemetry remembers the first
and restores it on uninstall.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import InMemoryTraceSink, JsonlTraceSink
from repro.obs.tracing import Tracer

# The currently-installed telemetry; None keeps every probe a no-op.
_ACTIVE: Optional["Telemetry"] = None


def active() -> Optional["Telemetry"]:
    """The installed telemetry, or None."""
    return _ACTIVE


def active_registry() -> Optional[MetricsRegistry]:
    """The installed metrics registry, or None."""
    telemetry = _ACTIVE
    return telemetry.registry if telemetry is not None else None


def active_tracer() -> Optional[Tracer]:
    """The installed tracer, or None (also None when only metrics are on)."""
    telemetry = _ACTIVE
    return telemetry.tracer if telemetry is not None else None


class Telemetry:
    """A metrics registry plus an optional tracer, installable globally."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        self._previous: Optional["Telemetry"] = None
        self._installed = False

    # -- constructors ----------------------------------------------------
    @classmethod
    def with_memory_trace(
        cls, op_sample_every: int = 0, span_id_base: int = 0
    ) -> "Telemetry":
        """Registry + tracer over an in-memory sink (tests, reports)."""
        return cls(tracer=Tracer(InMemoryTraceSink(), op_sample_every, span_id_base))

    @classmethod
    def with_jsonl_trace(
        cls,
        path: Union[str, Path],
        op_sample_every: int = 0,
        span_id_base: int = 0,
    ) -> "Telemetry":
        """Registry + tracer writing JSONL spans to ``path``.

        Give each process of a distributed run a distinct
        ``span_id_base`` (e.g. ``1 << 32`` times a process index) so the
        per-process span ids never collide when files are stitched.
        """
        return cls(tracer=Tracer(JsonlTraceSink(path), op_sample_every, span_id_base))

    # -- installation ----------------------------------------------------
    def install(self) -> "Telemetry":
        """Make this the active telemetry (remembers any previous one)."""
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore whichever telemetry was active before :meth:`install`."""
        global _ACTIVE
        if not self._installed:
            return
        _ACTIVE = self._previous
        self._previous = None
        self._installed = False
        if self.tracer is not None:
            self.tracer.close()

    def __enter__(self) -> "Telemetry":
        return self.install()

    def __exit__(self, *exc_info: object) -> None:
        self.uninstall()

    # -- convenience -----------------------------------------------------
    def snapshot(self) -> Dict:
        """Registry snapshot plus tracer emission stats."""
        result = {"metrics": self.registry.snapshot()}
        if self.tracer is not None:
            result["tracing"] = {
                "spans_emitted": self.tracer.spans_emitted,
                "ops_skipped": self.tracer.ops_skipped,
                "op_sample_every": self.tracer.op_sample_every,
            }
        return result
