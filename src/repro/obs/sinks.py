"""Trace sinks: where completed spans go.

All sinks receive flat span dicts (see ``docs/trace_schema.json``).
Values inside ``attributes`` are coerced through the shared
:func:`~repro.obs.jsonable.to_jsonable` helper at emission time, so
enums, dataclasses, Counters, and bytes serialize uniformly everywhere.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.obs.jsonable import to_jsonable
from repro.obs.tracing import TraceSink


class InMemoryTraceSink:
    """Collects span records in a list (tests, console reports)."""

    def __init__(self) -> None:
        self.records: List[Dict] = []
        self.closed = False

    def emit(self, record: Dict) -> None:
        record["attributes"] = to_jsonable(record["attributes"])
        self.records.append(record)

    def close(self) -> None:
        self.closed = True

    def by_name(self, name: str) -> List[Dict]:
        """All records with the given span name."""
        return [record for record in self.records if record["name"] == name]


class JsonlTraceSink:
    """Appends one JSON document per span to a file.

    Lines are buffered and flushed in batches so tracing a harness run
    does not pay one syscall per span.
    """

    def __init__(self, path: Union[str, Path], flush_every: int = 256) -> None:
        self.path = Path(path)
        self._handle = self.path.open("w")
        self._buffer: List[str] = []
        self._flush_every = max(1, flush_every)
        self.emitted = 0

    def emit(self, record: Dict) -> None:
        record["attributes"] = to_jsonable(record["attributes"])
        self._buffer.append(json.dumps(record, sort_keys=True))
        self.emitted += 1
        if len(self._buffer) >= self._flush_every:
            self._flush()

    def _flush(self) -> None:
        if self._buffer:
            self._handle.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    def close(self) -> None:
        self._flush()
        self._handle.close()


class TeeTraceSink:
    """Fans every span out to several sinks."""

    def __init__(self, *sinks: TraceSink) -> None:
        self.sinks = list(sinks)

    def emit(self, record: Dict) -> None:
        for sink in self.sinks:
            sink.emit(dict(record))

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


def read_jsonl_trace(path: Union[str, Path]) -> List[Dict]:
    """Load a JSONL trace back into span dicts (schema validation, tests)."""
    records = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
