"""Distributed-trace model: context propagation across the wire.

A *trace context* is the tiny fixed-size tuple that rides inside a wire
request frame (see :mod:`repro.net.protocol`): the 64-bit trace id
naming the whole causal tree, the span id of the sender's span (so the
receiver can parent under it), and a sampled flag (head-based sampling:
the client decides once, every downstream layer honors the decision).

Propagation rules (documented in ``docs/observability.md``):

* ``NetClient`` originates: on a sampled request it opens a
  ``net.client.request`` root span, generates a fresh trace id, and
  attaches ``TraceContext(trace_id, client_span_id, sampled=True)``.
* ``NetServer`` continues: a sampled context opens a
  ``net.server.request`` span via :meth:`Tracer.start_remote`, carrying
  the client's span id as a ``remote_parent_id`` attribute.  Each JSONL
  file stays self-contained (local ``parent_id`` graph is closed); the
  stitch tool re-attaches server trees under client spans.
* Everything below the server (coalescer batches, router fan-out, shard
  ops, WAL appends, index descents) parents through explicit spans or
  :meth:`Tracer.adopt`, inheriting the trace id automatically.

:data:`SPAN_LAYERS` maps span names to the coarse layers the stitch
tool's latency attribution reports (net/admission/coalesce/route/index/
wal); :func:`layer_of` resolves a span name to its layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

MAX_TRACE_ID = (1 << 64) - 1

#: (span-name prefix, layer) pairs, checked in order; first match wins.
SPAN_LAYERS: Tuple[Tuple[str, str], ...] = (
    ("net.client.request", "client"),
    ("net.admission", "admission"),
    ("net.coalesce", "coalesce"),
    ("net.", "net"),
    ("service.route", "route"),
    ("service.shard_op", "shard"),
    ("durability.", "wal"),
    ("lookup", "index"),
    ("descent", "index"),
    ("leaf_probe", "index"),
    ("insert", "index"),
    ("delete", "index"),
    ("scan", "index"),
)


def layer_of(span_name: str) -> str:
    """Map a span name to its attribution layer (``other`` if unknown)."""
    for prefix, layer in SPAN_LAYERS:
        if span_name.startswith(prefix):
            return layer
    return "other"


@dataclass(frozen=True)
class TraceContext:
    """The propagated slice of a trace: what fits in a request frame."""

    trace_id: int
    parent_span_id: int
    sampled: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.trace_id <= MAX_TRACE_ID:
            raise ValueError(f"trace_id out of range: {self.trace_id}")
        if not 0 <= self.parent_span_id <= MAX_TRACE_ID:
            raise ValueError(f"parent_span_id out of range: {self.parent_span_id}")


_trace_rng = random.Random()


def new_trace_id(rng: Optional[random.Random] = None) -> int:
    """A fresh nonzero 64-bit trace id (0 is reserved for 'absent')."""
    source = rng if rng is not None else _trace_rng
    value = source.getrandbits(64)
    return value if value != 0 else 1
