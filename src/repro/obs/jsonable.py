"""The one JSON-coercion helper every exporter shares.

Historically the harness exporter, the event log, and ad-hoc benchmark
scripts each carried their own partial ``_jsonable``: dataclasses went
through :func:`dataclasses.asdict` (losing non-init fields), Counters
were treated as generic mappings, and ``bytes`` *keys* were stringified
to ``"b'\\x01'"`` while bytes *values* became hex.  :func:`to_jsonable`
is the single canonical conversion; everything under ``repro.obs`` and
``repro.harness.export`` routes through it.

Rules (applied recursively):

* enums -> their ``.value``;
* dataclass instances -> a plain dict of their fields;
* ``collections.Counter`` and every other mapping -> a dict with
  string keys (bytes keys become hex, exactly like bytes values);
* lists/tuples -> lists; sets/frozensets -> sorted lists;
* ``bytes``/``bytearray`` -> hex strings;
* ints/floats/strings/bools/None -> unchanged (no precision loss);
* the optional ``default`` hook is tried on any non-primitive *before*
  the structural rules, so callers can override how specific objects
  (e.g. the harness summarizing a RunResult) export; anything still
  unknown falls back to ``str``.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable, Optional

_MISSING = object()


def jsonable_key(key: Any) -> str:
    """Coerce a mapping key to the string JSON requires."""
    if isinstance(key, str):
        return key
    if isinstance(key, (bytes, bytearray)):
        return bytes(key).hex()
    if isinstance(key, enum.Enum):
        return str(key.value)
    return str(key)


def to_jsonable(
    value: Any,
    default: Optional[Callable[[Any], Any]] = None,
) -> Any:
    """Recursively convert ``value`` into JSON-safe builtins.

    ``default`` is tried on every non-primitive (including dataclasses
    and mappings) *before* the structural rules; return
    :data:`NotImplemented` from it to decline.
    """
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, bool) or value is None:  # bool before int
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    if default is not None:
        converted = default(value)
        if converted is not NotImplemented:
            return to_jsonable(converted, None)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: to_jsonable(getattr(value, field.name), default)
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):  # Counter is a dict subclass: same path
        return {
            jsonable_key(key): to_jsonable(entry, default)
            for key, entry in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [to_jsonable(entry, default) for entry in value]
    if isinstance(value, (set, frozenset)):
        converted = [to_jsonable(entry, default) for entry in value]
        try:
            return sorted(converted)
        except TypeError:
            return sorted(converted, key=repr)
    return str(value)
