"""The adaptation manager: sampling, classification, and migration driver.

A hybrid index owns one :class:`AdaptationManager` and interacts with it
exactly as in the paper's Listing 1:

* on every access it asks :meth:`AdaptationManager.is_sample`, and if so,
  forwards the touched unit via :meth:`AdaptationManager.track`;
* the manager aggregates sampled accesses per unit (epoch-tagged, behind a
  Bloom filter), and when the phase's sample size is reached it runs the
  adaptation phase: top-k hot/cold classification, CSHF evaluation, and
  encoding migrations through the index's callback interface;
* between phases it adapts the skip length (workload stability) and the
  sample size (Equation 1 with the budget-derived k).

The index side of the contract is the :class:`AdaptiveIndex` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Hashable, Optional, Protocol, Sequence, Union

if TYPE_CHECKING:
    from repro.hashmap.hopscotch import HopscotchMap

#: The per-phase aggregate store (Section 3.1.3): a plain dict or the
#: paper's hopscotch map.
SampleMap = Union[Dict[Hashable, int], "HopscotchMap"]

from repro.core.access import AccessStats, AccessType, Classification
from repro.core.bloom import BloomFilter
from repro.core.budget import MemoryBudget, estimate_expandable_k
from repro.core.events import AdaptationEvent, EventLog
from repro.core.heuristics import (
    Heuristic,
    HeuristicAction,
    HeuristicInput,
    make_threshold_heuristic,
)
from repro.core.sampling import (
    DEFAULT_DELTA,
    DEFAULT_EPSILON,
    SKIP_MAX,
    SKIP_MIN,
    SkipSampler,
    adjust_skip_length,
    required_sample_size,
)
from repro.core.topk import TopKClassifier
from repro.obs.metrics import SIZE_BUCKETS, MetricsRegistry
from repro.obs.runtime import active_registry, active_tracer


def _encoding_name(encoding: object) -> str:
    """Lowercase span-safe name of one encoding (enum value or str)."""
    return str(getattr(encoding, "value", encoding)).lower()


def _migration_span_name(source: object, target: object) -> str:
    """The ``migration:<src>-><dst>`` span name of the trace taxonomy."""
    return f"migration:{_encoding_name(source)}->{_encoding_name(target)}"


class AdaptiveIndex(Protocol):
    """Callback interface a hybrid index implements for its manager."""

    def tracked_population(self) -> int:
        """Number of trackable basic units (n in Equation 1)."""

    def used_memory(self) -> int:
        """Modeled index size in bytes."""

    @property
    def num_keys(self) -> int:
        """Number of indexed keys (for relative budgets)."""

    def encoding_of(self, identifier: Hashable) -> object:
        """Current encoding of one unit (None if the unit vanished)."""

    def migrate(self, identifier: Hashable, target_encoding: object, context: object) -> bool:
        """Re-encode one unit; return True iff a migration happened."""

    def encoding_census(self) -> Dict[object, tuple]:
        """Mapping encoding -> (count, average_bytes) for the k estimate."""


@dataclass
class ManagerConfig:
    """Tunables of the adaptation manager.

    ``encoding_order`` lists encodings from most compact to fastest; it
    determines both the default CSHF (compact end vs fast end) and whether
    a migration counts as an expansion or a compaction.

    The ``max_migration_retries`` / ``retry_backoff_*`` /
    ``disable_after_failures`` knobs govern degradation when migrations
    *raise* (allocation failure, injected fault): a failed unit is
    retried with capped exponential backoff measured in adaptation
    phases, quarantined after repeated consecutive failures, and once
    the total failure count crosses ``disable_after_failures`` the
    manager disables adaptation entirely — the index keeps serving
    traffic on its current (static) layout.
    """

    encoding_order: Sequence[object] = ()
    budget: MemoryBudget = field(default_factory=MemoryBudget.unbounded)
    heuristic: Optional[Heuristic] = None
    epsilon: float = DEFAULT_EPSILON
    delta: float = DEFAULT_DELTA
    initial_skip_length: int = SKIP_MIN
    skip_min: int = SKIP_MIN
    skip_max: int = SKIP_MAX
    adaptive_skip: bool = True
    skip_jitter: float = 0.0  # randomize the stride (Section 3.1.4)
    use_bloom_filter: bool = True
    bloom_bits_per_item: int = 10
    read_weight: float = 1.0
    write_weight: float = 1.0
    fallback_hot_fraction: float = 0.01
    fallback_k_min: int = 64
    initial_sample_size: Optional[int] = None
    max_sample_size: int = 200_000
    sample_map: str = "dict"  # or "hopscotch": the paper's structure
    max_migration_retries: int = 3     # consecutive failures before quarantine
    retry_backoff_base: int = 1        # phases to wait after the first failure
    retry_backoff_cap: int = 8         # ceiling on the per-unit backoff
    disable_after_failures: int = 25   # total failures before adaptation stops

    def __post_init__(self) -> None:
        if len(self.encoding_order) < 2:
            raise ValueError("encoding_order needs at least a compact and a fast encoding")
        if self.skip_min > self.skip_max:
            raise ValueError(f"skip_min {self.skip_min} > skip_max {self.skip_max}")
        if self.skip_min < 0:
            raise ValueError(f"skip_min must be >= 0, got {self.skip_min}")
        if not self.skip_min <= self.initial_skip_length <= self.skip_max:
            raise ValueError(
                f"initial_skip_length {self.initial_skip_length} outside "
                f"[{self.skip_min}, {self.skip_max}]"
            )
        if not 0.0 < self.epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")
        if not 0.0 <= self.skip_jitter <= 1.0:
            raise ValueError(f"skip_jitter must be in [0, 1], got {self.skip_jitter}")
        if self.bloom_bits_per_item < 1:
            raise ValueError(
                f"bloom_bits_per_item must be >= 1, got {self.bloom_bits_per_item}"
            )
        if self.max_sample_size < 1:
            raise ValueError(f"max_sample_size must be >= 1, got {self.max_sample_size}")
        if self.max_migration_retries < 1:
            raise ValueError(
                f"max_migration_retries must be >= 1, got {self.max_migration_retries}"
            )
        if self.retry_backoff_base < 1:
            raise ValueError(
                f"retry_backoff_base must be >= 1, got {self.retry_backoff_base}"
            )
        if self.retry_backoff_cap < self.retry_backoff_base:
            raise ValueError(
                f"retry_backoff_cap {self.retry_backoff_cap} below "
                f"retry_backoff_base {self.retry_backoff_base}"
            )
        if self.disable_after_failures < 1:
            raise ValueError(
                f"disable_after_failures must be >= 1, got {self.disable_after_failures}"
            )

    @property
    def compact_encoding(self) -> object:
        """The most compact encoding in the order."""
        return self.encoding_order[0]

    @property
    def fast_encoding(self) -> object:
        """The fastest encoding in the order."""
        return self.encoding_order[-1]


@dataclass
class _PhaseOutcome:
    """What one adaptation phase's migration pass actually did."""

    expansions: int = 0
    compactions: int = 0
    evictions: int = 0
    failures: int = 0
    retries: int = 0
    quarantined: int = 0


@dataclass
class ManagerCounters:
    """Bookkeeping counters the cost model converts into modeled time."""

    accesses: int = 0
    sampled: int = 0
    bloom_rejections: int = 0
    map_updates: int = 0
    adaptation_phases: int = 0
    heap_operations: int = 0
    classified_items: int = 0
    expansions: int = 0
    compactions: int = 0
    evictions: int = 0
    migration_failures: int = 0
    migration_retries: int = 0
    quarantined_units: int = 0


class AdaptationManager:
    """Centralized workload tracking and encoding adaptation."""

    def __init__(self, index: AdaptiveIndex, config: ManagerConfig) -> None:
        self._index = index
        self.config = config
        self._heuristic = config.heuristic or make_threshold_heuristic(
            fast_encoding=config.fast_encoding,
            compact_encoding=config.compact_encoding,
        )
        self._sampler = SkipSampler(config.initial_skip_length, jitter=config.skip_jitter)
        self._samples = self._new_sample_map(config.sample_map)
        self._epoch = 1
        self._sampled_this_phase = 0
        self._enabled = True
        self._failure_streaks: Dict[Hashable, int] = {}  # consecutive failures
        self._retry_at: Dict[Hashable, int] = {}         # epoch gating the retry
        self._quarantined: set = set()
        self._total_migration_failures = 0
        self._degraded = False
        self.counters = ManagerCounters()
        self.events = EventLog()
        self._sample_size = self._initial_sample_size()
        self._filter = self._new_filter()
        self._encoding_rank = {
            encoding: rank for rank, encoding in enumerate(config.encoding_order)
        }

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------
    def is_sample(self) -> bool:
        """Per-access gate; True when the access should be tracked."""
        self.counters.accesses += 1
        if not self._enabled:
            return False
        return self._sampler.is_sample()

    def consume(self, count: int) -> list:
        """Batched sample gate: model ``count`` accesses in one call.

        Returns the 0-based batch offsets that are samples (empty when
        sampling is disabled).  The sampler advances exactly as ``count``
        individual :meth:`is_sample` calls would, so batched index
        operations keep the per-access sampling semantics of Listing 1
        while paying the gate cost once per batch.
        """
        self.counters.accesses += count
        if not self._enabled or count == 0:
            return []
        return self._sampler.consume(count)

    def track(
        self,
        identifier: Hashable,
        access_type: AccessType,
        context: object = None,
    ) -> None:
        """Register one sampled access to ``identifier``.

        With the Bloom filter enabled, the first sighting of a unit within
        a phase only sets filter bits; the unit enters the aggregate map on
        its second sighting.  Reaching the phase's sample size triggers the
        adaptation phase synchronously (its cost is thereby part of the
        workload, as in the paper's measurements).
        """
        self.counters.sampled += 1
        self._sampled_this_phase += 1
        stats = self._samples.get(identifier)
        if stats is None:
            if self.config.use_bloom_filter and not self._filter.add_and_check(identifier):
                self.counters.bloom_rejections += 1
                self._maybe_adapt()
                return
            stats = AccessStats()
            self._samples[identifier] = stats
        stats.record(access_type, self._epoch)
        if context is not None:
            stats.context = context
        self.counters.map_updates += 1
        self._maybe_adapt()

    def register(self, identifier: Hashable, context: object = None) -> None:
        """Ensure a unit is tracked without recording a sampled access.

        Used for units the index mutated out-of-band (e.g. leaves eagerly
        expanded on insert): they enter the map with zero counters, so the
        next classifications see them cold and compact them again.
        """
        stats = self._samples.get(identifier)
        if stats is None:
            stats = AccessStats()
            self._samples[identifier] = stats
        if context is not None:
            stats.context = context

    def update_context(self, identifier: Hashable, context: object) -> None:
        """Propagate changed context (e.g. a leaf's new parent after a split)."""
        stats = self._samples.get(identifier)
        if stats is not None:
            stats.context = context

    def forget(self, identifier: Hashable) -> None:
        """Drop a unit that no longer exists (deleted / split away)."""
        self._samples.pop(identifier, None)
        self._failure_streaks.pop(identifier, None)
        self._retry_at.pop(identifier, None)
        self._quarantined.discard(identifier)

    # ------------------------------------------------------------------
    # Adaptation phase
    # ------------------------------------------------------------------
    def run_adaptation(self) -> AdaptationEvent:
        """Classify, migrate, adapt parameters, and advance the epoch.

        Normally invoked automatically when the sample size is reached, but
        public so trained/offline flows and tests can force a phase.
        """
        tracer = active_tracer()
        phase_span = (
            tracer.start("adaptation_phase", epoch=self._epoch)
            if tracer is not None
            else None
        )
        k = self._choose_k()
        if tracer is not None:
            with tracer.span("classify", k=k, candidates=len(self._samples)) as span:
                hot_items = self._classify(k)
                span.set(hot=len(hot_items))
        else:
            hot_items = self._classify(k)
        outcome = self._apply_heuristic(hot_items)

        if (
            not self._degraded
            and self._total_migration_failures >= self.config.disable_after_failures
        ):
            # Too many failed migrations overall: stop adapting and keep
            # serving the workload on the current (now static) layout.
            self._degraded = True
            self.disable()

        skip_before = self._sampler.skip_length
        if self.config.adaptive_skip:
            new_skip = adjust_skip_length(
                current=skip_before,
                migrated=outcome.expansions + outcome.compactions,
                sampled=max(1, self._sampled_this_phase),
                skip_min=self.config.skip_min,
                skip_max=self.config.skip_max,
            )
            self._sampler.set_skip_length(new_skip)
        self._sample_size = self._next_sample_size(k)

        event = AdaptationEvent(
            epoch=self._epoch,
            accesses_seen=self.counters.accesses,
            sampled=self._sampled_this_phase,
            unique_tracked=len(self._samples),
            hot=len(hot_items),
            expansions=outcome.expansions,
            compactions=outcome.compactions,
            evictions=outcome.evictions,
            skip_length_before=skip_before,
            skip_length_after=self._sampler.skip_length,
            sample_size_after=self._sample_size,
            index_bytes=self._index.used_memory(),
            migration_failures=outcome.failures,
            retries=outcome.retries,
            quarantined=outcome.quarantined,
            adaptation_disabled=self._degraded,
        )
        self.events.append(event)

        self.counters.adaptation_phases += 1
        self.counters.expansions += outcome.expansions
        self.counters.compactions += outcome.compactions
        self.counters.evictions += outcome.evictions
        self._epoch += 1
        self._sampled_this_phase = 0
        self._filter.reset()
        if phase_span is not None:
            # The span carries the event's canonical serialization — the
            # same as_dict() path the timeline exports use.
            tracer.end(phase_span, **event.as_dict())
        registry = active_registry()
        if registry is not None:
            self._publish_phase_metrics(registry, event)
        return event

    def _publish_phase_metrics(
        self, registry: MetricsRegistry, event: AdaptationEvent
    ) -> None:
        """Push one phase's outcome into the installed metrics registry."""
        registry.counter("manager.phases").inc()
        registry.counter("manager.expansions").inc(event.expansions)
        registry.counter("manager.compactions").inc(event.compactions)
        registry.counter("manager.evictions").inc(event.evictions)
        registry.counter("manager.migration_failures").inc(event.migration_failures)
        registry.counter("manager.migration_retries").inc(event.retries)
        registry.counter("manager.quarantined").inc(event.quarantined)
        registry.histogram("manager.sampled_per_phase", SIZE_BUCKETS).record(event.sampled)
        registry.histogram("manager.hot_per_phase", SIZE_BUCKETS).record(event.hot)
        registry.histogram("manager.migrations_per_phase", SIZE_BUCKETS).record(
            event.expansions + event.compactions
        )
        registry.gauge("manager.skip_length").set(event.skip_length_after)
        registry.gauge("manager.sample_size").set(event.sample_size_after)
        registry.gauge("manager.tracked_units").set(event.unique_tracked)
        registry.gauge("index.bytes").set(event.index_bytes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The current sampling epoch."""
        return self._epoch

    @property
    def skip_length(self) -> int:
        """The current skip length."""
        return self._sampler.skip_length

    @property
    def sample_size(self) -> int:
        """The current phase's target sample size."""
        return self._sample_size

    @property
    def tracked_units(self) -> int:
        """Number of units currently in the sample map."""
        return len(self._samples)

    def stats_of(self, identifier: Hashable) -> Optional[AccessStats]:
        """The AccessStats of one tracked unit, or None."""
        return self._samples.get(identifier)

    @property
    def quarantined_units(self) -> int:
        """Units permanently excluded from migration after repeated failures."""
        return len(self._quarantined)

    def is_quarantined(self, identifier: Hashable) -> bool:
        """True when ``identifier`` will never be migrated again."""
        return identifier in self._quarantined

    @property
    def adaptation_degraded(self) -> bool:
        """True once repeated failures disabled adaptation entirely."""
        return self._degraded

    @property
    def total_migration_failures(self) -> int:
        """Raising migrations seen over the manager's lifetime."""
        return self._total_migration_failures

    def enable(self) -> None:
        """Resume sampling."""
        self._enabled = True

    def disable(self) -> None:
        """Stop sampling entirely (used by trained/offline indexes)."""
        self._enabled = False

    def size_bytes(self) -> int:
        """Modeled footprint of the sampling framework itself.

        Hash map entries (aggregate + 8-byte key + bucket overhead) plus
        the Bloom filter bit array.
        """
        per_entry = 8 + 8 + AccessStats().size_bytes()
        return len(self._samples) * per_entry + self._filter.size_bytes()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _maybe_adapt(self) -> None:
        if self._sampled_this_phase >= self._sample_size:
            self.run_adaptation()

    def _classify(self, k: int) -> set:
        classifier = TopKClassifier(k)
        self.counters.classified_items += len(self._samples)
        for identifier, stats in self._samples.items():
            if stats.last_epoch != self._epoch:
                continue  # not seen this phase: cold without a heap visit
            classifier.offer(
                identifier,
                stats.frequency(self.config.read_weight, self.config.write_weight),
            )
        self.counters.heap_operations += classifier.heap_operations
        return classifier.hot_items()

    def _apply_heuristic(self, hot_items: set) -> _PhaseOutcome:
        tracer = active_tracer()  # once per phase; spans per migration below
        budget = self.config.budget
        utilization = budget.utilization(self._index.used_memory(), self._index.num_keys)
        outcome = _PhaseOutcome()
        to_evict = []
        # Iterate over a snapshot: migrations may mutate index internals.
        for identifier, stats in list(self._samples.items()):
            classification = (
                Classification.HOT if identifier in hot_items else Classification.COLD
            )
            stats.push_classification(classification)
            current_encoding = self._index.encoding_of(identifier)
            if current_encoding is None:
                to_evict.append(identifier)  # unit vanished from the index
                continue
            decision = self._heuristic(
                HeuristicInput(
                    identifier=identifier,
                    stats=stats,
                    classification=classification,
                    current_encoding=current_encoding,
                    budget_utilization=utilization,
                    epoch=self._epoch,
                )
            )
            if decision.action is HeuristicAction.STOP_TRACKING:
                to_evict.append(identifier)
            elif decision.action is HeuristicAction.MIGRATE:
                if identifier in self._quarantined:
                    continue  # failed too often; never migrated again
                if self._retry_at.get(identifier, 0) >= self._epoch:
                    continue  # still backing off from an earlier failure
                if identifier in self._failure_streaks:
                    outcome.retries += 1
                    self.counters.migration_retries += 1
                try:
                    migrated = self._index.migrate(
                        identifier, decision.target_encoding, stats.context
                    )
                except Exception:
                    self._record_migration_failure(identifier, outcome)
                    if tracer is not None:
                        tracer.event(
                            _migration_span_name(current_encoding, decision.target_encoding),
                            unit=type(identifier).__name__,
                            outcome="failed",
                            epoch=self._epoch,
                        )
                    continue
                if tracer is not None:
                    tracer.event(
                        _migration_span_name(current_encoding, decision.target_encoding),
                        unit=type(identifier).__name__,
                        outcome="migrated" if migrated else "skipped",
                        epoch=self._epoch,
                    )
                self._failure_streaks.pop(identifier, None)
                self._retry_at.pop(identifier, None)
                if not migrated:
                    continue
                if self._is_expansion(current_encoding, decision.target_encoding):
                    outcome.expansions += 1
                else:
                    outcome.compactions += 1
                utilization = budget.utilization(
                    self._index.used_memory(), self._index.num_keys
                )
        for identifier in to_evict:
            self._samples.pop(identifier, None)
        outcome.evictions = len(to_evict)
        return outcome

    def _record_migration_failure(
        self, identifier: Hashable, outcome: _PhaseOutcome
    ) -> None:
        """Book one raising migration: backoff, quarantine, disable."""
        outcome.failures += 1
        self.counters.migration_failures += 1
        self._total_migration_failures += 1
        streak = self._failure_streaks.get(identifier, 0) + 1
        self._failure_streaks[identifier] = streak
        if streak >= self.config.max_migration_retries:
            self._quarantined.add(identifier)
            self._retry_at.pop(identifier, None)
            outcome.quarantined += 1
            self.counters.quarantined_units += 1
            return
        backoff = min(
            self.config.retry_backoff_cap,
            self.config.retry_backoff_base * (2 ** (streak - 1)),
        )
        self._retry_at[identifier] = self._epoch + backoff

    def _is_expansion(self, source: object, target: object) -> bool:
        source_rank = self._encoding_rank.get(source, 0)
        target_rank = self._encoding_rank.get(target, 0)
        return target_rank > source_rank

    def _choose_k(self) -> int:
        population = max(1, self._index.tracked_population())
        budget = self.config.budget
        if budget.bounded:
            census = self._index.encoding_census()
            fast = self.config.fast_encoding
            expanded_count, expanded_avg = census.get(fast, (0, 0.0))
            compressed_count = 0
            compressed_total = 0.0
            for encoding, (count, avg_bytes) in census.items():
                if encoding == fast:
                    continue
                compressed_count += count
                compressed_total += count * avg_bytes
            compressed_avg = compressed_total / compressed_count if compressed_count else 0.0
            if expanded_count == 0 or expanded_avg == 0.0:
                # No expanded node yet: estimate its size pessimistically as
                # twice the compact average so k stays conservative.
                expanded_avg = max(1.0, 2.0 * compressed_avg)
            k = estimate_expandable_k(
                budget_bytes=int(budget.limit_bytes(self._index.num_keys)),
                compressed_count=compressed_count,
                compressed_avg_bytes=compressed_avg,
                expanded_count=expanded_count,
                expanded_avg_bytes=expanded_avg,
            )
            return max(1, k)
        fallback = int(population * self.config.fallback_hot_fraction)
        return max(self.config.fallback_k_min, min(population, fallback))

    def _initial_sample_size(self) -> int:
        if self.config.initial_sample_size is not None:
            return max(1, self.config.initial_sample_size)
        return self._next_sample_size(self._choose_k())

    def _next_sample_size(self, k: int) -> int:
        population = max(1, self._index.tracked_population())
        size = required_sample_size(
            population=population,
            k=max(1, k),
            epsilon=self.config.epsilon,
            delta=self.config.delta,
        )
        return min(self.config.max_sample_size, size)

    @staticmethod
    def _new_sample_map(kind: str) -> SampleMap:
        """The aggregate store: a dict (fastest in CPython) or the
        paper's hopscotch map (Section 3.1.3)."""
        if kind == "dict":
            return {}
        if kind == "hopscotch":
            from repro.hashmap.hopscotch import HopscotchMap

            return HopscotchMap()
        raise ValueError(f"unknown sample_map {kind!r}; expected 'dict' or 'hopscotch'")

    def _new_filter(self) -> BloomFilter:
        capacity = max(8, self._sample_size // 2)
        return BloomFilter(capacity, self.config.bloom_bits_per_item)
