"""Memory budgets and the budget-derived choice of k.

The framework accepts either an absolute budget (bytes) or a relative one
(bits per key), the latter being the natural choice for workloads with
inserts and deletes (Section 3.1.6).  The budget also determines ``k`` for
the top-k classification: the number of nodes that could be expanded to
the performance-optimized encoding without exceeding the budget,

    k = (mb - (n_c * m_c + n_u * m_u)) / (m_u - m_c)

with ``n_c``/``n_u`` compressed/uncompressed node counts and ``m_c``/
``m_u`` their average sizes.
"""

from __future__ import annotations

from dataclasses import dataclass


def estimate_expandable_k(
    budget_bytes: int,
    compressed_count: int,
    compressed_avg_bytes: float,
    expanded_count: int,
    expanded_avg_bytes: float,
) -> int:
    """The paper's k estimate: expandable nodes under ``budget_bytes``.

    Returns 0 when the index already exceeds the budget and is clamped to
    the number of still-compressed nodes (expanding more is impossible).
    """
    if budget_bytes <= 0:
        return 0
    current = compressed_count * compressed_avg_bytes + expanded_count * expanded_avg_bytes
    headroom = budget_bytes - current
    if headroom <= 0:
        return 0
    per_node_growth = expanded_avg_bytes - compressed_avg_bytes
    if per_node_growth <= 0:
        # Expansion is free under this size model; every node qualifies.
        return compressed_count
    return min(compressed_count, int(headroom / per_node_growth))


@dataclass(frozen=True)
class MemoryBudget:
    """An optional absolute or relative memory budget.

    Exactly one of ``absolute_bytes`` / ``bits_per_key`` may be set; with
    neither set the budget is unbounded (the adaptation manager then uses
    its fallback k).
    """

    absolute_bytes: int | None = None
    bits_per_key: float | None = None

    def __post_init__(self) -> None:
        if self.absolute_bytes is not None and self.bits_per_key is not None:
            raise ValueError("set either absolute_bytes or bits_per_key, not both")
        if self.absolute_bytes is not None and self.absolute_bytes <= 0:
            raise ValueError(f"absolute budget must be positive, got {self.absolute_bytes}")
        if self.bits_per_key is not None and self.bits_per_key <= 0:
            raise ValueError(f"relative budget must be positive, got {self.bits_per_key}")

    @classmethod
    def unbounded(cls) -> "MemoryBudget":
        """A budget with no limit at all."""
        return cls()

    @classmethod
    def absolute(cls, num_bytes: int) -> "MemoryBudget":
        """A fixed byte limit (read-mostly workloads)."""
        return cls(absolute_bytes=num_bytes)

    @classmethod
    def relative(cls, bits_per_key: float) -> "MemoryBudget":
        """A bits-per-key limit that scales with inserts (Section 3.1.6)."""
        return cls(bits_per_key=bits_per_key)

    @property
    def bounded(self) -> bool:
        """True when a limit is configured."""
        return self.absolute_bytes is not None or self.bits_per_key is not None

    def limit_bytes(self, num_keys: int) -> float:
        """The byte limit for an index currently holding ``num_keys`` keys."""
        if self.absolute_bytes is not None:
            return float(self.absolute_bytes)
        if self.bits_per_key is not None:
            return self.bits_per_key * num_keys / 8.0
        return float("inf")

    def exceeded(self, used_bytes: int, num_keys: int) -> bool:
        """True when ``used_bytes`` violates the budget."""
        return used_bytes > self.limit_bytes(num_keys)

    def utilization(self, used_bytes: int, num_keys: int) -> float:
        """``used / limit``; 0.0 for an unbounded budget."""
        limit = self.limit_bytes(num_keys)
        if limit == float("inf"):
            return 0.0
        return used_bytes / limit
