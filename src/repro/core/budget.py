"""Memory budgets and the budget-derived choice of k.

The framework accepts either an absolute budget (bytes) or a relative one
(bits per key), the latter being the natural choice for workloads with
inserts and deletes (Section 3.1.6).  The budget also determines ``k`` for
the top-k classification: the number of nodes that could be expanded to
the performance-optimized encoding without exceeding the budget,

    k = (mb - (n_c * m_c + n_u * m_u)) / (m_u - m_c)

with ``n_c``/``n_u`` compressed/uncompressed node counts and ``m_c``/
``m_u`` their average sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional


def estimate_expandable_k(
    budget_bytes: int,
    compressed_count: int,
    compressed_avg_bytes: float,
    expanded_count: int,
    expanded_avg_bytes: float,
) -> int:
    """The paper's k estimate: expandable nodes under ``budget_bytes``.

    Returns 0 when the index already exceeds the budget and is clamped to
    the number of still-compressed nodes (expanding more is impossible).
    """
    if budget_bytes <= 0:
        return 0
    current = compressed_count * compressed_avg_bytes + expanded_count * expanded_avg_bytes
    headroom = budget_bytes - current
    if headroom <= 0:
        return 0
    per_node_growth = expanded_avg_bytes - compressed_avg_bytes
    if per_node_growth <= 0:
        # Expansion is free under this size model; every node qualifies.
        return compressed_count
    return min(compressed_count, int(headroom / per_node_growth))


@dataclass(frozen=True)
class MemoryBudget:
    """An optional absolute or relative memory budget.

    Exactly one of ``absolute_bytes`` / ``bits_per_key`` may be set; with
    neither set the budget is unbounded (the adaptation manager then uses
    its fallback k).
    """

    absolute_bytes: int | None = None
    bits_per_key: float | None = None

    def __post_init__(self) -> None:
        if self.absolute_bytes is not None and self.bits_per_key is not None:
            raise ValueError("set either absolute_bytes or bits_per_key, not both")
        if self.absolute_bytes is not None and self.absolute_bytes <= 0:
            raise ValueError(f"absolute budget must be positive, got {self.absolute_bytes}")
        if self.bits_per_key is not None and self.bits_per_key <= 0:
            raise ValueError(f"relative budget must be positive, got {self.bits_per_key}")

    @classmethod
    def unbounded(cls) -> "MemoryBudget":
        """A budget with no limit at all."""
        return cls()

    @classmethod
    def absolute(cls, num_bytes: int) -> "MemoryBudget":
        """A fixed byte limit (read-mostly workloads)."""
        return cls(absolute_bytes=num_bytes)

    @classmethod
    def relative(cls, bits_per_key: float) -> "MemoryBudget":
        """A bits-per-key limit that scales with inserts (Section 3.1.6)."""
        return cls(bits_per_key=bits_per_key)

    @property
    def bounded(self) -> bool:
        """True when a limit is configured."""
        return self.absolute_bytes is not None or self.bits_per_key is not None

    def limit_bytes(self, num_keys: int) -> float:
        """The byte limit for an index currently holding ``num_keys`` keys."""
        if self.absolute_bytes is not None:
            return float(self.absolute_bytes)
        if self.bits_per_key is not None:
            return self.bits_per_key * num_keys / 8.0
        return float("inf")

    def exceeded(self, used_bytes: int, num_keys: int) -> bool:
        """True when ``used_bytes`` violates the budget."""
        return used_bytes > self.limit_bytes(num_keys)

    def utilization(self, used_bytes: int, num_keys: int) -> float:
        """``used / limit``; 0.0 for an unbounded budget."""
        limit = self.limit_bytes(num_keys)
        if limit == float("inf"):
            return 0.0
        return used_bytes / limit


class TokenBucket:
    """A rate limiter over a caller-supplied clock.

    The bucket holds up to ``burst`` tokens and refills at ``rate``
    tokens per second of *caller time*: every call passes ``now`` (any
    monotonically non-decreasing float — ``loop.time()`` in the asyncio
    front end, a virtual clock in tests), so the core stays free of
    wall-clock reads and the refill arithmetic is exactly testable.
    """

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = 0.0

    def _refill(self, now: float) -> None:
        if now > self.updated:
            self.tokens = min(self.burst, self.tokens + (now - self.updated) * self.rate)
            self.updated = now

    def try_take(self, amount: float, now: float) -> bool:
        """Consume ``amount`` tokens at time ``now``; False when broke."""
        if amount < 0:
            raise ValueError(f"amount must be >= 0, got {amount}")
        self._refill(now)
        if self.tokens >= amount:
            self.tokens -= amount
            return True
        return False

    def available(self, now: float) -> float:
        """Tokens that would be available at time ``now``."""
        self._refill(now)
        return self.tokens


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits (None fields are unlimited).

    ``ops_per_sec`` caps the sustained operation rate through a
    :class:`TokenBucket` whose burst is ``burst_ops`` (default: one
    second's worth of tokens); ``max_inflight`` bounds the number of
    concurrently admitted requests — the *bounded queue* that replaces
    unbounded buffering: when it is full the front end answers with a
    backpressure response instead of parking the request.
    """

    ops_per_sec: Optional[float] = None
    burst_ops: Optional[float] = None
    max_inflight: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ops_per_sec is not None and self.ops_per_sec <= 0:
            raise ValueError(f"ops_per_sec must be positive, got {self.ops_per_sec}")
        if self.burst_ops is not None and self.burst_ops <= 0:
            raise ValueError(f"burst_ops must be positive, got {self.burst_ops}")
        if self.burst_ops is not None and self.ops_per_sec is None:
            raise ValueError("burst_ops requires ops_per_sec")
        if self.max_inflight is not None and self.max_inflight <= 0:
            raise ValueError(f"max_inflight must be positive, got {self.max_inflight}")

    @classmethod
    def unlimited(cls) -> "TenantQuota":
        """A quota that admits everything."""
        return cls()

    def bucket(self) -> Optional[TokenBucket]:
        """A fresh token bucket for this quota (None when unlimited)."""
        if self.ops_per_sec is None:
            return None
        burst = self.burst_ops if self.burst_ops is not None else self.ops_per_sec
        return TokenBucket(self.ops_per_sec, burst)


#: Admission decisions, in the shape backpressure responses want.
ADMIT_OK = "ok"
SHED_THROTTLED = "throttled"      # ops/sec token bucket is empty
SHED_OVERLOADED = "overloaded"    # bounded inflight queue is full


class _TenantState:
    __slots__ = ("quota", "bucket", "inflight", "admitted", "throttled", "overloaded")

    def __init__(self, quota: TenantQuota) -> None:
        self.quota = quota
        self.bucket = quota.bucket()
        self.inflight = 0
        self.admitted = 0
        self.throttled = 0
        self.overloaded = 0


class ResourceArbiter:
    """The :class:`BudgetArbiter` generalized across tenants.

    One arbiter per served process, arbitrating two resources:

    * **memory** — the inherited behaviour: every registered index
      structure is a member of an internal :class:`BudgetArbiter`, and
      :meth:`rebalance` carves the global :class:`MemoryBudget` into
      per-member budgets installed into the adaptation managers.
      Members are named ``<tenant>/<shard>``, so one tenant's shard
      group grows and shrinks together.
    * **admission** — per-tenant ops/sec token buckets plus a bounded
      inflight count (:class:`TenantQuota`).  :meth:`admit` is the
      single entry point the network front end calls per request; a
      non-``ok`` decision becomes a backpressure *response*, never an
      unbounded queue entry.

    Thread/task safety: admission state is touched from one asyncio
    event loop in practice; counters are plain ints, and memory
    rebalance is as idempotent as the PR-4 arbiter it wraps.
    """

    def __init__(
        self,
        budget: Optional[MemoryBudget] = None,
        default_quota: Optional[TenantQuota] = None,
        floor_bytes: int = 64 * 1024,
    ) -> None:
        self.memory = BudgetArbiter(budget or MemoryBudget.unbounded(), floor_bytes)
        self.default_quota = default_quota or TenantQuota.unlimited()
        self._tenants: Dict[str, _TenantState] = {}

    # ------------------------------------------------------------------
    # Tenant membership
    # ------------------------------------------------------------------
    def register_tenant(self, name: str, quota: Optional[TenantQuota] = None) -> None:
        """Add (or re-quota) one tenant."""
        self._tenants[name] = _TenantState(quota or self.default_quota)

    def unregister_tenant(self, name: str) -> None:
        """Drop one tenant and its memory members."""
        self._tenants.pop(name, None)
        prefix = f"{name}/"
        for member in [m for m in self.memory._members if m.startswith(prefix)]:
            self.memory.unregister(member)

    def tenants(self) -> List[str]:
        """Registered tenant names, sorted."""
        return sorted(self._tenants)

    def register_memory_member(self, tenant: str, shard: str, index: Any) -> None:
        """Attach one index structure to ``tenant``'s memory share."""
        if tenant not in self._tenants:
            raise KeyError(f"unknown tenant {tenant!r}")
        self.memory.register(f"{tenant}/{shard}", index)

    def rebalance(self) -> Dict[str, MemoryBudget]:
        """Re-carve the global memory budget across every member."""
        return self.memory.rebalance()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, tenant: str, ops: float = 1.0, now: float = 0.0) -> str:
        """Admit or shed one request costing ``ops`` operations.

        Returns :data:`ADMIT_OK`, :data:`SHED_THROTTLED` (rate), or
        :data:`SHED_OVERLOADED` (inflight bound).  An admitted request
        holds one inflight slot until :meth:`release`.  Unknown tenants
        raise ``KeyError`` — the front end maps that to its own
        unknown-tenant response.
        """
        state = self._tenants[tenant]
        quota = state.quota
        if quota.max_inflight is not None and state.inflight >= quota.max_inflight:
            state.overloaded += 1
            return SHED_OVERLOADED
        if state.bucket is not None and not state.bucket.try_take(ops, now):
            state.throttled += 1
            return SHED_THROTTLED
        state.inflight += 1
        state.admitted += 1
        return ADMIT_OK

    def release(self, tenant: str) -> None:
        """Return the inflight slot held by one admitted request."""
        state = self._tenants.get(tenant)
        if state is not None and state.inflight > 0:
            state.inflight -= 1

    def inflight(self, tenant: str) -> int:
        """Currently admitted, unreleased requests for ``tenant``."""
        return self._tenants[tenant].inflight

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """One JSON-safe summary of quotas, sheds, and the memory carve."""
        return {
            "memory": self.memory.describe(),
            "tenants": {
                name: {
                    "ops_per_sec": state.quota.ops_per_sec,
                    "max_inflight": state.quota.max_inflight,
                    "inflight": state.inflight,
                    "admitted": state.admitted,
                    "throttled": state.throttled,
                    "overloaded": state.overloaded,
                }
                for name, state in sorted(self._tenants.items())
            },
        }


def _member_keys(index: Any) -> int:
    """Key count of one arbiter member (``num_keys`` or ``len``)."""
    keys = getattr(index, "num_keys", None)
    if keys is not None:
        return int(keys)
    return len(index)


def _member_bytes(index: Any) -> int:
    """Modeled bytes of one member (``used_memory`` or ``size_bytes``)."""
    used = getattr(index, "used_memory", None)
    if used is not None:
        return int(used())
    return int(index.size_bytes())


class BudgetArbiter:
    """Divides one global memory budget across many index structures.

    The paper's adaptation manager runs *per structure* with a local
    budget; a sharded service therefore needs an arbiter that carves one
    service-wide :class:`MemoryBudget` into per-shard budgets and
    installs them into each shard's manager:

    * **unbounded** — every member stays unbounded;
    * **relative** (bits per key) — the same bits-per-key bound is
      handed to every member: the global bound is the key-weighted sum
      of the members', so it composes exactly;
    * **absolute** (bytes) — each member receives a floor allocation
      plus a share of the remainder proportional to its key count, so
      hot large shards get headroom to expand and empty shards cannot
      starve the rest.

    :meth:`rebalance` is cheap and idempotent; the service re-runs it
    after every shard split/merge.
    """

    def __init__(self, budget: MemoryBudget, floor_bytes: int = 64 * 1024) -> None:
        if floor_bytes < 0:
            raise ValueError(f"floor_bytes must be >= 0, got {floor_bytes}")
        self.budget = budget
        self.floor_bytes = floor_bytes
        self._members: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, name: str, index: Any) -> None:
        """Add (or replace) one member structure under ``name``."""
        self._members[name] = index

    def unregister(self, name: str) -> None:
        """Drop one member; unknown names are ignored."""
        self._members.pop(name, None)

    def clear(self) -> None:
        """Drop every member."""
        self._members.clear()

    @property
    def num_members(self) -> int:
        """Number of registered member structures."""
        return len(self._members)

    # ------------------------------------------------------------------
    # Arbitration
    # ------------------------------------------------------------------
    def rebalance(self) -> Dict[str, MemoryBudget]:
        """Compute per-member budgets and install them into managers.

        Members exposing a ``manager`` with a ``config.budget`` slot
        (the adaptive families) receive their allocation in place; the
        full allocation map is returned either way.
        """
        allocations = self._allocate()
        for name, allocation in allocations.items():
            manager = getattr(self._members[name], "manager", None)
            if manager is not None:
                manager.config.budget = allocation
        return allocations

    def _allocate(self) -> Dict[str, MemoryBudget]:
        if not self._members:
            return {}
        if self.budget.absolute_bytes is None:
            # Unbounded and relative budgets compose without arithmetic.
            return {name: self.budget for name in self._members}
        total_bytes = self.budget.absolute_bytes
        floor = min(self.floor_bytes, total_bytes // len(self._members))
        distributable = total_bytes - floor * len(self._members)
        keys_by_name = {
            name: _member_keys(index) for name, index in self._members.items()
        }
        total_keys = sum(keys_by_name.values())
        allocations: Dict[str, MemoryBudget] = {}
        for name in self._members:
            if total_keys > 0:
                share = distributable * keys_by_name[name] // total_keys
            else:
                share = distributable // len(self._members)
            allocations[name] = MemoryBudget.absolute(max(1, floor + share))
        return allocations

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def used_bytes(self) -> int:
        """Total modeled bytes across every member."""
        return sum(_member_bytes(index) for index in self._members.values())

    def num_keys(self) -> int:
        """Total keys across every member."""
        return sum(_member_keys(index) for index in self._members.values())

    def utilization(self) -> float:
        """Global ``used / limit``; 0.0 when unbounded."""
        return self.budget.utilization(self.used_bytes(), self.num_keys())

    def exceeded(self) -> bool:
        """True when the members jointly violate the global budget."""
        return self.budget.exceeded(self.used_bytes(), self.num_keys())

    def describe(self) -> Dict[str, Any]:
        """One JSON-safe summary of the arbitration state."""
        return {
            "bounded": self.budget.bounded,
            "absolute_bytes": self.budget.absolute_bytes,
            "bits_per_key": self.budget.bits_per_key,
            "members": self.num_members,
            "used_bytes": self.used_bytes(),
            "utilization": round(self.utilization(), 4),
        }
