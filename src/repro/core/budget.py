"""Memory budgets and the budget-derived choice of k.

The framework accepts either an absolute budget (bytes) or a relative one
(bits per key), the latter being the natural choice for workloads with
inserts and deletes (Section 3.1.6).  The budget also determines ``k`` for
the top-k classification: the number of nodes that could be expanded to
the performance-optimized encoding without exceeding the budget,

    k = (mb - (n_c * m_c + n_u * m_u)) / (m_u - m_c)

with ``n_c``/``n_u`` compressed/uncompressed node counts and ``m_c``/
``m_u`` their average sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


def estimate_expandable_k(
    budget_bytes: int,
    compressed_count: int,
    compressed_avg_bytes: float,
    expanded_count: int,
    expanded_avg_bytes: float,
) -> int:
    """The paper's k estimate: expandable nodes under ``budget_bytes``.

    Returns 0 when the index already exceeds the budget and is clamped to
    the number of still-compressed nodes (expanding more is impossible).
    """
    if budget_bytes <= 0:
        return 0
    current = compressed_count * compressed_avg_bytes + expanded_count * expanded_avg_bytes
    headroom = budget_bytes - current
    if headroom <= 0:
        return 0
    per_node_growth = expanded_avg_bytes - compressed_avg_bytes
    if per_node_growth <= 0:
        # Expansion is free under this size model; every node qualifies.
        return compressed_count
    return min(compressed_count, int(headroom / per_node_growth))


@dataclass(frozen=True)
class MemoryBudget:
    """An optional absolute or relative memory budget.

    Exactly one of ``absolute_bytes`` / ``bits_per_key`` may be set; with
    neither set the budget is unbounded (the adaptation manager then uses
    its fallback k).
    """

    absolute_bytes: int | None = None
    bits_per_key: float | None = None

    def __post_init__(self) -> None:
        if self.absolute_bytes is not None and self.bits_per_key is not None:
            raise ValueError("set either absolute_bytes or bits_per_key, not both")
        if self.absolute_bytes is not None and self.absolute_bytes <= 0:
            raise ValueError(f"absolute budget must be positive, got {self.absolute_bytes}")
        if self.bits_per_key is not None and self.bits_per_key <= 0:
            raise ValueError(f"relative budget must be positive, got {self.bits_per_key}")

    @classmethod
    def unbounded(cls) -> "MemoryBudget":
        """A budget with no limit at all."""
        return cls()

    @classmethod
    def absolute(cls, num_bytes: int) -> "MemoryBudget":
        """A fixed byte limit (read-mostly workloads)."""
        return cls(absolute_bytes=num_bytes)

    @classmethod
    def relative(cls, bits_per_key: float) -> "MemoryBudget":
        """A bits-per-key limit that scales with inserts (Section 3.1.6)."""
        return cls(bits_per_key=bits_per_key)

    @property
    def bounded(self) -> bool:
        """True when a limit is configured."""
        return self.absolute_bytes is not None or self.bits_per_key is not None

    def limit_bytes(self, num_keys: int) -> float:
        """The byte limit for an index currently holding ``num_keys`` keys."""
        if self.absolute_bytes is not None:
            return float(self.absolute_bytes)
        if self.bits_per_key is not None:
            return self.bits_per_key * num_keys / 8.0
        return float("inf")

    def exceeded(self, used_bytes: int, num_keys: int) -> bool:
        """True when ``used_bytes`` violates the budget."""
        return used_bytes > self.limit_bytes(num_keys)

    def utilization(self, used_bytes: int, num_keys: int) -> float:
        """``used / limit``; 0.0 for an unbounded budget."""
        limit = self.limit_bytes(num_keys)
        if limit == float("inf"):
            return 0.0
        return used_bytes / limit


def _member_keys(index: Any) -> int:
    """Key count of one arbiter member (``num_keys`` or ``len``)."""
    keys = getattr(index, "num_keys", None)
    if keys is not None:
        return int(keys)
    return len(index)


def _member_bytes(index: Any) -> int:
    """Modeled bytes of one member (``used_memory`` or ``size_bytes``)."""
    used = getattr(index, "used_memory", None)
    if used is not None:
        return int(used())
    return int(index.size_bytes())


class BudgetArbiter:
    """Divides one global memory budget across many index structures.

    The paper's adaptation manager runs *per structure* with a local
    budget; a sharded service therefore needs an arbiter that carves one
    service-wide :class:`MemoryBudget` into per-shard budgets and
    installs them into each shard's manager:

    * **unbounded** — every member stays unbounded;
    * **relative** (bits per key) — the same bits-per-key bound is
      handed to every member: the global bound is the key-weighted sum
      of the members', so it composes exactly;
    * **absolute** (bytes) — each member receives a floor allocation
      plus a share of the remainder proportional to its key count, so
      hot large shards get headroom to expand and empty shards cannot
      starve the rest.

    :meth:`rebalance` is cheap and idempotent; the service re-runs it
    after every shard split/merge.
    """

    def __init__(self, budget: MemoryBudget, floor_bytes: int = 64 * 1024) -> None:
        if floor_bytes < 0:
            raise ValueError(f"floor_bytes must be >= 0, got {floor_bytes}")
        self.budget = budget
        self.floor_bytes = floor_bytes
        self._members: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, name: str, index: Any) -> None:
        """Add (or replace) one member structure under ``name``."""
        self._members[name] = index

    def unregister(self, name: str) -> None:
        """Drop one member; unknown names are ignored."""
        self._members.pop(name, None)

    def clear(self) -> None:
        """Drop every member."""
        self._members.clear()

    @property
    def num_members(self) -> int:
        """Number of registered member structures."""
        return len(self._members)

    # ------------------------------------------------------------------
    # Arbitration
    # ------------------------------------------------------------------
    def rebalance(self) -> Dict[str, MemoryBudget]:
        """Compute per-member budgets and install them into managers.

        Members exposing a ``manager`` with a ``config.budget`` slot
        (the adaptive families) receive their allocation in place; the
        full allocation map is returned either way.
        """
        allocations = self._allocate()
        for name, allocation in allocations.items():
            manager = getattr(self._members[name], "manager", None)
            if manager is not None:
                manager.config.budget = allocation
        return allocations

    def _allocate(self) -> Dict[str, MemoryBudget]:
        if not self._members:
            return {}
        if self.budget.absolute_bytes is None:
            # Unbounded and relative budgets compose without arithmetic.
            return {name: self.budget for name in self._members}
        total_bytes = self.budget.absolute_bytes
        floor = min(self.floor_bytes, total_bytes // len(self._members))
        distributable = total_bytes - floor * len(self._members)
        keys_by_name = {
            name: _member_keys(index) for name, index in self._members.items()
        }
        total_keys = sum(keys_by_name.values())
        allocations: Dict[str, MemoryBudget] = {}
        for name in self._members:
            if total_keys > 0:
                share = distributable * keys_by_name[name] // total_keys
            else:
                share = distributable // len(self._members)
            allocations[name] = MemoryBudget.absolute(max(1, floor + share))
        return allocations

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def used_bytes(self) -> int:
        """Total modeled bytes across every member."""
        return sum(_member_bytes(index) for index in self._members.values())

    def num_keys(self) -> int:
        """Total keys across every member."""
        return sum(_member_keys(index) for index in self._members.values())

    def utilization(self) -> float:
        """Global ``used / limit``; 0.0 when unbounded."""
        return self.budget.utilization(self.used_bytes(), self.num_keys())

    def exceeded(self) -> bool:
        """True when the members jointly violate the global budget."""
        return self.budget.exceeded(self.used_bytes(), self.num_keys())

    def describe(self) -> Dict[str, Any]:
        """One JSON-safe summary of the arbitration state."""
        return {
            "bounded": self.budget.bounded,
            "absolute_bytes": self.budget.absolute_bytes,
            "bits_per_key": self.budget.bits_per_key,
            "members": self.num_members,
            "used_bytes": self.used_bytes(),
            "utilization": round(self.utilization(), 4),
        }
