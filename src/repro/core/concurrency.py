"""Concurrent sampling strategies: global vs thread-local (Section 3.1.5).

The paper compares two ways of collecting samples from many worker
threads:

* **GS (global sampling)** — all workers write into one shared map that is
  optimized for concurrent access; the adaptation phase locks the whole
  map.
* **TLS (thread-local sampling)** — each worker aggregates into a private
  map; when the combined sample size is reached the maps are merged and
  one worker runs the adaptation while the rest keep sampling.

Python's GIL prevents true parallel speedups, but the *synchronization
structure* — where locks sit and who blocks whom — is implemented for
real with :mod:`threading` primitives, and the contention counters these
classes export are what the Figure 18 reproduction charges through the
cost model.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Hashable

from repro.core.access import AccessStats, AccessType


@dataclass
class ContentionCounters:
    """Synchronization events the cost model converts into stall time."""

    lock_acquisitions: int = 0
    blocked_acquisitions: int = 0  # lock was already held by someone else
    global_phase_locks: int = 0    # whole-map locks during adaptation
    merges: int = 0                # thread-local map merges


class SamplingStrategy:
    """Common interface of the two concurrent sample stores."""

    def record(self, identifier: Hashable, access_type: AccessType, epoch: int) -> None:
        """Register one sampled access."""
        raise NotImplementedError

    def drain(self) -> Dict[Hashable, AccessStats]:
        """Return (and clear) the aggregated samples for an adaptation phase."""
        raise NotImplementedError

    def sampled_count(self) -> int:
        """Sampled accesses recorded since the last drain."""
        raise NotImplementedError

    def memory_bytes(self) -> int:
        """Modeled bytes of the sampling store."""
        raise NotImplementedError


class GlobalSampling(SamplingStrategy):
    """GS: one shared map, one lock, whole-map locking during adaptation."""

    def __init__(self) -> None:
        self._map: Dict[Hashable, AccessStats] = {}
        self._lock = threading.Lock()
        self._count = 0
        self.counters = ContentionCounters()

    def record(self, identifier: Hashable, access_type: AccessType, epoch: int) -> None:
        """Register one sampled access."""
        acquired = self._lock.acquire(blocking=False)
        if not acquired:
            self.counters.blocked_acquisitions += 1
            self._lock.acquire()
        self.counters.lock_acquisitions += 1
        try:
            stats = self._map.get(identifier)
            if stats is None:
                stats = AccessStats()
                self._map[identifier] = stats
            stats.record(access_type, epoch)
            self._count += 1
        finally:
            self._lock.release()

    def drain(self) -> Dict[Hashable, AccessStats]:
        """Return and clear the aggregated samples."""
        with self._lock:  # the paper: map locked globally for the phase
            self.counters.global_phase_locks += 1
            snapshot = self._map
            self._map = {}
            self._count = 0
            return snapshot

    def sampled_count(self) -> int:
        """Sampled accesses recorded since the last drain."""
        return self._count

    def memory_bytes(self) -> int:
        """Modeled bytes of the sampling store."""
        per_entry = 8 + 8 + AccessStats().size_bytes()
        return len(self._map) * per_entry


class CuckooGlobalSampling(SamplingStrategy):
    """GS backed by the concurrent cuckoo map (the paper's actual GS).

    Recording needs no strategy-global lock: the cuckoo map's striped
    locks let disjoint buckets proceed concurrently.  Only the phase
    drain locks the whole structure, exactly the behaviour the paper
    describes ("the map gets locked globally to process each sample").
    """

    def __init__(self) -> None:
        from repro.hashmap.cuckoo import CuckooMap

        self._map = CuckooMap()
        self._drain_lock = threading.Lock()
        self._count = 0
        self.counters = ContentionCounters()

    def record(self, identifier: Hashable, access_type: AccessType, epoch: int) -> None:
        """Register one sampled access."""
        stats = self._map.get(identifier)
        if stats is None:
            stats = AccessStats()
            self._map[identifier] = stats
        stats.record(access_type, epoch)
        self._count += 1
        self.counters.lock_acquisitions = self._map.lock_acquisitions
        self.counters.blocked_acquisitions = self._map.blocked_acquisitions

    def drain(self) -> Dict[Hashable, AccessStats]:
        """Return and clear the aggregated samples."""
        with self._drain_lock:
            self.counters.global_phase_locks += 1
            snapshot = dict(self._map.items())
            self._map.clear()
            self._count = 0
            return snapshot

    def sampled_count(self) -> int:
        """Sampled accesses recorded since the last drain."""
        return self._count

    def memory_bytes(self) -> int:
        """Modeled bytes of the sampling store."""
        per_entry = 8 + 8 + AccessStats().size_bytes()
        return len(self._map) * per_entry


class _ThreadStore:
    """One worker thread's private sample map."""

    __slots__ = ("map", "count")

    def __init__(self) -> None:
        self.map: Dict[Hashable, AccessStats] = {}
        self.count = 0


class ThreadLocalSampling(SamplingStrategy):
    """TLS: per-thread maps merged at phase end.

    Recording is lock-free on the hot path (each thread writes only its
    own store); the strategy lock is taken once per thread to register the
    store and once per phase to merge.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stores: Dict[int, _ThreadStore] = {}
        self.counters = ContentionCounters()

    def _store(self) -> _ThreadStore:
        thread_id = threading.get_ident()
        store = self._stores.get(thread_id)
        if store is None:
            store = _ThreadStore()
            with self._lock:
                self.counters.lock_acquisitions += 1
                self._stores[thread_id] = store
        return store

    def record(self, identifier: Hashable, access_type: AccessType, epoch: int) -> None:
        """Register one sampled access."""
        store = self._store()
        stats = store.map.get(identifier)
        if stats is None:
            stats = AccessStats()
            store.map[identifier] = stats
        stats.record(access_type, epoch)
        store.count += 1

    def drain(self) -> Dict[Hashable, AccessStats]:
        """Return and clear the aggregated samples."""
        with self._lock:
            self.counters.merges += 1
            merged: Dict[Hashable, AccessStats] = {}
            for store in self._stores.values():
                for identifier, stats in store.map.items():
                    existing = merged.get(identifier)
                    if existing is None:
                        merged[identifier] = stats
                    else:
                        existing.reads += stats.reads
                        existing.writes += stats.writes
                        existing.last_epoch = max(existing.last_epoch, stats.last_epoch)
                store.map = {}
                store.count = 0
            return merged

    def sampled_count(self) -> int:
        """Sampled accesses recorded since the last drain."""
        return sum(store.count for store in self._stores.values())

    def memory_bytes(self) -> int:
        """Modeled bytes of the sampling store."""
        per_entry = 8 + 8 + AccessStats().size_bytes()
        total_entries = sum(len(store.map) for store in self._stores.values())
        # Each thread-local map carries its own bucket array, which is why
        # the paper reports up to 10x more sampling memory for TLS.
        overhead_per_map = 64 * 8
        return total_entries * per_entry + len(self._stores) * overhead_per_map


class ConcurrentSampler:
    """Skip-length sampling shared by worker threads.

    Each thread keeps a private countdown (no synchronization on the hot
    path) and reloads it from the shared skip length when the countdown
    expires — the scheme of Listing 1, lines 8-13.
    """

    def __init__(self, skip_length: int = 50) -> None:
        if skip_length < 0:
            raise ValueError(f"skip length must be >= 0, got {skip_length}")
        self.skip_length = skip_length
        self._local = threading.local()

    def is_sample(self) -> bool:
        """True when the current access should be sampled."""
        countdown = getattr(self._local, "countdown", None)
        if countdown is None:
            countdown = self.skip_length  # thread's first access
        if countdown == 0:
            self._local.countdown = self.skip_length
            return True
        self._local.countdown = countdown - 1
        return False

    def set_skip_length(self, skip_length: int) -> None:
        """Install a new skip length."""
        if skip_length < 0:
            raise ValueError(f"skip length must be >= 0, got {skip_length}")
        self.skip_length = skip_length
