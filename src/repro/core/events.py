"""Adaptation telemetry.

The timeline figures of the paper (12, 16, 20) plot encoding migrations,
skip lengths, and index sizes over time.  Every adaptation phase appends
one :class:`AdaptationEvent` to the manager's :class:`EventLog`; the
benchmark harness reads the log to regenerate those series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class AdaptationEvent:
    """Summary of one adaptation phase."""

    epoch: int
    accesses_seen: int       # total index accesses when the phase ran
    sampled: int             # sampled accesses aggregated this phase
    unique_tracked: int      # distinct units in the sample map
    hot: int                 # units classified hot
    expansions: int          # migrations toward the fast encoding
    compactions: int         # migrations toward the compact encoding
    evictions: int           # units dropped from tracking
    skip_length_before: int
    skip_length_after: int
    sample_size_after: int
    index_bytes: int         # modeled index size after the phase
    migration_failures: int = 0   # migrations that raised this phase
    retries: int = 0              # failed units re-attempted this phase
    quarantined: int = 0          # units newly quarantined this phase
    adaptation_disabled: bool = False  # True once degradation kicked in


@dataclass
class EventLog:
    """Append-only record of adaptation phases."""

    events: List[AdaptationEvent] = field(default_factory=list)

    def append(self, event: AdaptationEvent) -> None:
        """Append one entry."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __getitem__(self, index: int) -> AdaptationEvent:
        return self.events[index]

    @property
    def total_expansions(self) -> int:
        """Expansions across all logged phases."""
        return sum(event.expansions for event in self.events)

    @property
    def total_compactions(self) -> int:
        """Compactions across all logged phases."""
        return sum(event.compactions for event in self.events)

    @property
    def total_migrations(self) -> int:
        """Expansions plus compactions across all phases."""
        return self.total_expansions + self.total_compactions

    @property
    def total_migration_failures(self) -> int:
        """Failed (raising) migrations across all logged phases."""
        return sum(event.migration_failures for event in self.events)

    @property
    def total_quarantined(self) -> int:
        """Units quarantined across all logged phases."""
        return sum(event.quarantined for event in self.events)

    def clear(self) -> None:
        """Remove every entry."""
        self.events.clear()
