"""Adaptation telemetry.

The timeline figures of the paper (12, 16, 20) plot encoding migrations,
skip lengths, and index sizes over time.  Every adaptation phase appends
one :class:`AdaptationEvent` to the manager's :class:`EventLog`; the
benchmark harness reads the log to regenerate those series.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass(frozen=True)
class AdaptationEvent:
    """Summary of one adaptation phase."""

    epoch: int
    accesses_seen: int       # total index accesses when the phase ran
    sampled: int             # sampled accesses aggregated this phase
    unique_tracked: int      # distinct units in the sample map
    hot: int                 # units classified hot
    expansions: int          # migrations toward the fast encoding
    compactions: int         # migrations toward the compact encoding
    evictions: int           # units dropped from tracking
    skip_length_before: int
    skip_length_after: int
    sample_size_after: int
    index_bytes: int         # modeled index size after the phase
    migration_failures: int = 0   # migrations that raised this phase
    retries: int = 0              # failed units re-attempted this phase
    quarantined: int = 0          # units newly quarantined this phase
    adaptation_disabled: bool = False  # True once degradation kicked in

    def as_dict(self) -> Dict:
        """This event as a JSON-safe dict.

        The *single* serialization path for adaptation events: the
        timeline benchmarks (Figures 12, 16, 20), the JSONL trace sink's
        ``adaptation_phase`` span attributes, and :meth:`EventLog.to_jsonl`
        all route through it instead of plucking fields ad hoc.
        """
        from repro.obs.jsonable import to_jsonable

        return to_jsonable(self)

    @property
    def migrations(self) -> int:
        """Expansions plus compactions in this phase."""
        return self.expansions + self.compactions


@dataclass
class EventLog:
    """Append-only record of adaptation phases."""

    events: List[AdaptationEvent] = field(default_factory=list)

    def append(self, event: AdaptationEvent) -> None:
        """Append one entry."""
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[AdaptationEvent]:
        return iter(self.events)

    def __getitem__(self, index: int) -> AdaptationEvent:
        return self.events[index]

    @property
    def total_expansions(self) -> int:
        """Expansions across all logged phases."""
        return sum(event.expansions for event in self.events)

    @property
    def total_compactions(self) -> int:
        """Compactions across all logged phases."""
        return sum(event.compactions for event in self.events)

    @property
    def total_migrations(self) -> int:
        """Expansions plus compactions across all phases."""
        return self.total_expansions + self.total_compactions

    @property
    def total_migration_failures(self) -> int:
        """Failed (raising) migrations across all logged phases."""
        return sum(event.migration_failures for event in self.events)

    @property
    def total_quarantined(self) -> int:
        """Units quarantined across all logged phases."""
        return sum(event.quarantined for event in self.events)

    def as_dicts(self) -> List[Dict]:
        """Every event through :meth:`AdaptationEvent.as_dict`, in order."""
        return [event.as_dict() for event in self.events]

    def to_jsonl(self) -> str:
        """The log as JSON Lines (one event document per line)."""
        return "\n".join(
            json.dumps(event, sort_keys=True) for event in self.as_dicts()
        )

    def clear(self) -> None:
        """Remove every entry."""
        self.events.clear()
