"""The paper's contribution: the workload-adaptation framework.

The central class is :class:`~repro.core.manager.AdaptationManager`.  A
hybrid index owns one manager, asks it :meth:`is_sample` on every access,
and forwards sampled accesses through :meth:`track`.  The manager
aggregates samples per basic unit (epoch-tagged, Bloom-filtered), runs an
error-bounded top-k hot/cold classification, consults a context-sensitive
heuristic function (CSHF), and drives encoding migrations through the
index's callback interface.
"""

from repro.core.access import AccessStats, AccessType, Classification
from repro.core.bloom import BloomFilter
from repro.core.budget import MemoryBudget, estimate_expandable_k
from repro.core.events import AdaptationEvent, EventLog
from repro.core.invariants import InvariantViolation, validate, violations_of
from repro.core.heuristics import (
    HeuristicDecision,
    HeuristicInput,
    make_threshold_heuristic,
)
from repro.core.manager import AdaptationManager, AdaptiveIndex, ManagerConfig
from repro.core.sampling import SkipSampler, required_sample_size
from repro.core.topk import TopKClassifier
from repro.core.trained import train_offline

__all__ = [
    "AccessStats",
    "AccessType",
    "Classification",
    "BloomFilter",
    "MemoryBudget",
    "estimate_expandable_k",
    "AdaptationEvent",
    "EventLog",
    "InvariantViolation",
    "validate",
    "violations_of",
    "HeuristicDecision",
    "HeuristicInput",
    "make_threshold_heuristic",
    "AdaptationManager",
    "AdaptiveIndex",
    "ManagerConfig",
    "SkipSampler",
    "required_sample_size",
    "TopKClassifier",
    "train_offline",
]
