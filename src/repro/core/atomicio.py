"""Atomic, durable file publication — build-aside+swap for the disk.

Every durable artifact in this codebase (FST blobs, WAL segments,
snapshots, manifests) is published with the on-disk analogue of the
PR-1 build-aside+swap discipline:

1. the full content is written to a *temporary* file in the destination
   directory (same filesystem, so the rename below is atomic),
2. the temporary file is flushed and ``fsync``\\ ed,
3. one ``os.replace`` publishes it under the final name, and
4. the parent directory is ``fsync``\\ ed so the *name* is durable too.

A crash anywhere in the sequence leaves either the old file or the
complete new file — never a torn one.  Callers thread a
:func:`~repro.faults.injector.fault_point` between steps 2 and 3 (the
swap point), which is why the write and the publish are separate
helpers here::

    tmp = write_aside(final, blob)
    try:
        fault_point("durability.snapshot.swap")
        publish_aside(tmp, final)
    except BaseException:
        discard_aside(tmp)
        raise

:func:`write_aside` guarantees the temporary file is removed on every
error path, so a failed write can never leak a partial file.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path

__all__ = ["discard_aside", "fsync_dir", "publish_aside", "write_aside"]


def fsync_dir(directory: Path) -> None:
    """``fsync`` a directory so a just-published name survives a crash."""
    fd = os.open(str(directory), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_aside(final_path: Path, data: bytes, durable: bool = True) -> Path:
    """Write ``data`` to a temp file next to ``final_path``; return its path.

    The temporary file lives in ``final_path``'s directory (same
    filesystem, so :func:`publish_aside` is one atomic rename) and is
    unlinked on *every* error path — a failed write never leaks a
    partial file.  With ``durable`` the content is ``fsync``\\ ed before
    returning.
    """
    directory = final_path.parent
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=final_path.name + ".", suffix=".tmp"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if durable:
                os.fsync(handle.fileno())
    except BaseException:
        discard_aside(tmp)
        raise
    return tmp


def publish_aside(tmp: Path, final_path: Path, durable: bool = True) -> None:
    """Atomically publish ``tmp`` under ``final_path`` (replace + dir fsync).

    On failure the temporary file is removed, so an aborted publish
    leaves only the old state behind.
    """
    try:
        os.replace(tmp, final_path)
    except BaseException:
        discard_aside(tmp)
        raise
    if durable:
        fsync_dir(final_path.parent)


def discard_aside(tmp: Path) -> None:
    """Best-effort removal of an unpublished temporary file."""
    with contextlib.suppress(OSError):
        tmp.unlink()
