"""Offline ("trained") hybrid indexes (Section 3.2).

When the workload is known beforehand — historic traces or a self-driving
DBMS's prediction — the adaptation manager can skip run-time sampling:
rank the units by their access frequency in the trace and expand the most
frequent ones until the memory budget (or the supply of units) is
exhausted.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Iterable, Tuple

from repro.core.access import AccessType
from repro.core.budget import MemoryBudget
from repro.core.manager import AdaptiveIndex


def rank_units(
    trace: Iterable[Tuple[Hashable, AccessType]],
    read_weight: float = 1.0,
    write_weight: float = 1.0,
) -> list:
    """Rank unit identifiers by weighted access frequency, hottest first."""
    frequencies: Counter = Counter()
    for identifier, access_type in trace:
        weight = write_weight if access_type.is_write else read_weight
        frequencies[identifier] += weight
    return [identifier for identifier, _ in frequencies.most_common()]


def train_offline(
    index: AdaptiveIndex,
    trace: Iterable[Tuple[Hashable, AccessType]],
    fast_encoding: object,
    budget: MemoryBudget | None = None,
    read_weight: float = 1.0,
    write_weight: float = 1.0,
) -> int:
    """Expand the hottest trace units until the budget is reached.

    Returns the number of migrations performed.  The index is expected to
    already be fully compacted (its cold-default state); units already in
    ``fast_encoding`` are skipped.
    """
    budget = budget or MemoryBudget.unbounded()
    migrated = 0
    for identifier in rank_units(trace, read_weight, write_weight):
        if budget.exceeded(index.used_memory(), index.num_keys):
            break
        current = index.encoding_of(identifier)
        if current is None or current == fast_encoding:
            continue
        if index.migrate(identifier, fast_encoding, None):
            migrated += 1
    return migrated
