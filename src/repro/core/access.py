"""Access types, per-unit access statistics, and classification history.

This mirrors the ``AccessStats`` structure of the paper's Listing 1: read
and write counters grouped by access type, the epoch of the last access,
and a small bitset remembering the most recent hot/cold classifications
(the paper keeps the last eight in one byte).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class AccessType(enum.Enum):
    """The access kinds the adaptation manager distinguishes."""

    READ = "read"
    SCAN = "scan"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"

    @property
    def is_write(self) -> bool:
        """True for insert/update/delete accesses."""
        return self in (AccessType.INSERT, AccessType.UPDATE, AccessType.DELETE)


class Classification(enum.Enum):
    """Outcome of a top-k classification for one tracked unit."""

    HOT = "hot"
    COLD = "cold"


HISTORY_BITS = 8


@dataclass
class AccessStats:
    """Aggregated sampled accesses for one basic unit (e.g. a leaf node).

    ``history`` is a bitset of the last :data:`HISTORY_BITS`
    classifications, newest in the least-significant bit (1 = hot).
    ``context`` carries index-specific information needed for migrations
    (for B+-tree leaves: the parent inner node).
    """

    reads: int = 0
    writes: int = 0
    last_epoch: int = 0
    history: int = 0
    epochs_tracked: int = 0
    context: object = None
    extras: dict = field(default_factory=dict)

    def record(self, access_type: AccessType, epoch: int) -> None:
        """Register one sampled access during ``epoch``.

        If the stored epoch is stale the counters are reset first, so the
        aggregate always describes the *current* sampling phase only.
        """
        if self.last_epoch != epoch:
            self.reads = 0
            self.writes = 0
            self.last_epoch = epoch
        if access_type.is_write:
            self.writes += 1
        else:
            self.reads += 1

    def frequency(self, read_weight: float = 1.0, write_weight: float = 1.0) -> float:
        """Classification priority: weighted sum of reads and writes."""
        return read_weight * self.reads + write_weight * self.writes

    def push_classification(self, classification: Classification) -> None:
        """Shift ``classification`` into the history bitset."""
        bit = 1 if classification is Classification.HOT else 0
        mask = (1 << HISTORY_BITS) - 1
        self.history = ((self.history << 1) | bit) & mask
        self.epochs_tracked = min(self.epochs_tracked + 1, HISTORY_BITS)

    def hot_streak(self) -> int:
        """Consecutive most-recent phases classified hot."""
        streak = 0
        history = self.history
        for _ in range(min(self.epochs_tracked, HISTORY_BITS)):
            if history & 1:
                streak += 1
                history >>= 1
            else:
                break
        return streak

    def cold_streak(self) -> int:
        """Consecutive most-recent phases classified cold."""
        streak = 0
        history = self.history
        for _ in range(min(self.epochs_tracked, HISTORY_BITS)):
            if history & 1:
                break
            streak += 1
            history >>= 1
        return streak

    def hot_count(self) -> int:
        """Number of hot classifications within the remembered window."""
        window = self.history & ((1 << min(self.epochs_tracked, HISTORY_BITS)) - 1)
        return window.bit_count()

    def size_bytes(self) -> int:
        """Modeled footprint of one aggregate in the C++ layout.

        Two 4-byte counters, a 4-byte epoch, one history byte, and an
        8-byte context pointer.
        """
        return 4 + 4 + 4 + 1 + 8
