"""Structural invariant validation for every index family.

Migrations are the one place an adaptive index can corrupt itself: they
rewrite a unit's physical representation while the logical contents must
stay byte-for-byte identical.  This module is the referee — for each
index family it re-derives the structure's claimed bookkeeping from the
structure itself and reports every disagreement:

* **B+-tree** — separator bounds, per-leaf key order, the leaf chain
  versus the tree walk, occupancy, incremental byte accounting, and the
  encoding census versus a fresh recount;
* **Hybrid Trie** — live-branch accounting, no reachable detached
  wrappers, the census versus a walk, and a full key-set diff against
  the underlying (static, complete) FST;
* **FST** — LOUDS consistency: bitmap lengths versus node counts,
  has-child ⊆ labels, one incoming child edge per non-root node,
  terminal counts versus the value array, rank-directory integrity,
  and per-node label order;
* **Dual-Stage** — static-run order, block directory, tombstone
  discipline, and the dynamic stage's B+-tree invariants.

Checkers return a list of human-readable violation strings (empty means
healthy); :func:`validate` raises :class:`InvariantViolation` instead.
The indexes expose this as ``.verify()`` — a structure that can prove
its own integrity after any failed migration.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

if TYPE_CHECKING:
    from repro.dualstage.index import DualStageIndex
    from repro.fst.trie import FST


class InvariantViolation(AssertionError):
    """One or more structural invariants do not hold."""

    def __init__(self, violations: List[str]) -> None:
        self.violations = list(violations)
        summary = "; ".join(self.violations[:5])
        extra = len(self.violations) - 5
        if extra > 0:
            summary += f" (+{extra} more)"
        super().__init__(f"{len(self.violations)} invariant violation(s): {summary}")


def validate(index: object) -> None:
    """Raise :class:`InvariantViolation` unless ``index`` is healthy."""
    violations = violations_of(index)
    if violations:
        raise InvariantViolation(violations)


def violations_of(index: object) -> List[str]:
    """Dispatch to the family-specific checker by index type."""
    from repro.bptree.tree import BPlusTree
    from repro.dualstage.index import DualStageIndex
    from repro.fst.trie import FST
    from repro.hybridtrie.tree import HybridTrie

    if isinstance(index, BPlusTree):
        return check_bptree(index)
    if isinstance(index, HybridTrie):
        return check_trie(index)
    if isinstance(index, FST):
        return check_fst(index)
    if isinstance(index, DualStageIndex):
        return check_dualstage(index)
    raise TypeError(f"no invariant checker for {type(index).__name__}")


# ----------------------------------------------------------------------
# B+-tree
# ----------------------------------------------------------------------
def check_bptree(tree: Any) -> List[str]:
    """All violations of a (plain or adaptive) B+-tree's invariants."""
    from repro.bptree.inner import InnerNode

    violations: List[str] = []
    leaves_in_order = []

    def visit(node: Any, lo: Any, hi: Any) -> None:
        if isinstance(node, InnerNode):
            if node.keys != sorted(node.keys):
                violations.append(f"inner node keys out of order: {node.keys[:8]}")
            if len(node.children) != len(node.keys) + 1:
                violations.append(
                    f"inner node has {len(node.children)} children for "
                    f"{len(node.keys)} keys"
                )
            bounds = [lo, *node.keys, hi]
            for index, child in enumerate(node.children):
                visit(child, bounds[index], bounds[index + 1])
            return
        leaves_in_order.append(node)
        if node.num_entries() > node.capacity:
            violations.append(
                f"leaf {node.leaf_id} holds {node.num_entries()} entries "
                f"over capacity {node.capacity}"
            )
        keys = [key for key, _ in node.to_pairs()]
        if keys != sorted(set(keys)):
            violations.append(f"leaf {node.leaf_id} keys out of order")
        for key in keys:
            if lo is not None and key < lo:
                violations.append(
                    f"leaf {node.leaf_id} key {key} below separator {lo}"
                )
                break
            if hi is not None and key >= hi:
                violations.append(
                    f"leaf {node.leaf_id} key {key} not below separator {hi}"
                )
                break

    visit(tree.root, None, None)

    chain = list(tree.leaves())
    if chain != leaves_in_order:
        violations.append(
            f"leaf chain ({len(chain)} leaves) disagrees with tree walk "
            f"({len(leaves_in_order)} leaves)"
        )
    previous_max = None
    for leaf in chain:
        min_key, max_key = leaf.min_key(), leaf.max_key()
        if previous_max is not None and min_key is not None and min_key <= previous_max:
            violations.append(
                f"leaf {leaf.leaf_id} min key {min_key} overlaps previous "
                f"leaf's max {previous_max}"
            )
        if max_key is not None:
            previous_max = max_key

    total_entries = sum(leaf.num_entries() for leaf in leaves_in_order)
    if total_entries != tree.num_keys:
        violations.append(
            f"leaves hold {total_entries} entries but num_keys is {tree.num_keys}"
        )
    if len(leaves_in_order) != tree.num_leaves:
        violations.append(
            f"tree walk found {len(leaves_in_order)} leaves but num_leaves "
            f"is {tree.num_leaves}"
        )
    actual_leaf_bytes = sum(leaf.size_bytes() for leaf in leaves_in_order)
    if actual_leaf_bytes != tree._leaf_bytes:
        violations.append(
            f"incremental leaf bytes {tree._leaf_bytes} != recomputed "
            f"{actual_leaf_bytes}"
        )

    # Census versus reality: the reported census must match a recount.
    recount = {}
    for leaf in leaves_in_order:
        count, total = recount.get(leaf.encoding, (0, 0))
        recount[leaf.encoding] = (count + 1, total + leaf.size_bytes())
    census = tree.leaf_encoding_census()
    if set(census) != set(recount):
        violations.append(
            f"census encodings {sorted(map(str, census))} != walk "
            f"{sorted(map(str, recount))}"
        )
    else:
        for encoding, (count, _) in census.items():
            if count != recount[encoding][0]:
                violations.append(
                    f"census counts {count} {encoding} leaves, walk found "
                    f"{recount[encoding][0]}"
                )
    return violations


# ----------------------------------------------------------------------
# Hybrid Trie
# ----------------------------------------------------------------------
def check_trie(trie: Any) -> List[str]:
    """All violations of a Hybrid Trie's invariants (FST included)."""
    from repro.hybridtrie.tagged import TrieBranch, TrieEncoding

    violations: List[str] = []
    compact_count = 0
    expanded_count = 0

    def walk(current: Any) -> None:
        nonlocal compact_count, expanded_count
        if isinstance(current, TrieBranch):
            if current.detached:
                violations.append(
                    f"detached branch {current.branch_id} (fst node "
                    f"{current.fst_node}) still reachable"
                )
                return
            if current.expanded:
                expanded_count += 1
                walk(current.art_node)
            else:
                compact_count += 1
            return
        for _, child in current.children_items():
            if not isinstance(child, int):
                walk(child)

    if trie._root is not None:
        walk(trie._root)

    live = compact_count + expanded_count
    if live != trie.num_branches:
        violations.append(
            f"branch counter says {trie.num_branches} live branches, walk "
            f"found {live}"
        )

    census = trie.encoding_census()
    fst_count, _ = census.get(TrieEncoding.FST, (0, 0.0))
    art_count, _ = census.get(TrieEncoding.ART, (0, 0.0))
    if fst_count != compact_count or art_count != expanded_count:
        violations.append(
            f"census (fst={fst_count}, art={art_count}) != walk "
            f"(fst={compact_count}, art={expanded_count})"
        )

    if trie.num_keys != trie.fst.num_keys:
        violations.append(
            f"trie num_keys {trie.num_keys} != fst num_keys {trie.fst.num_keys}"
        )

    # Key-set diff against the static, complete FST: the hybrid view must
    # surface exactly the same pairs in exactly the same order.
    hybrid_items = trie.items()
    fst_items = list(trie.fst.items())
    if hybrid_items != fst_items:
        missing = len(set(fst_items) - set(hybrid_items))
        extra = len(set(hybrid_items) - set(fst_items))
        violations.append(
            f"hybrid view lost {missing} and invented {extra} pairs versus "
            f"the FST ({len(hybrid_items)} vs {len(fst_items)} total)"
        )

    violations.extend(check_fst(trie.fst))
    return violations


# ----------------------------------------------------------------------
# FST (LOUDS consistency)
# ----------------------------------------------------------------------
def _check_rank_directory(name: str, vector: Any, violations: List[str]) -> None:
    if not vector.sealed:
        violations.append(f"{name} bitvector is not sealed")
        return
    running = 0
    blocks = [0]
    for word in vector._words:
        running += word.bit_count()
        blocks.append(running)
    if blocks != vector._rank_blocks:
        violations.append(f"{name} rank directory disagrees with payload")
    from repro.succinct.bitvector import SELECT_SAMPLE_RATE

    select1 = []
    select0 = []
    running = 0
    next_one = 1
    next_zero = 1
    for word_index, word in enumerate(vector._words):
        running += word.bit_count()
        while next_one <= running:
            select1.append(word_index)
            next_one += SELECT_SAMPLE_RATE
        zeros = min((word_index + 1) * 64, len(vector)) - running
        while next_zero <= zeros:
            select0.append(word_index)
            next_zero += SELECT_SAMPLE_RATE
    if select1 != vector._select1_samples:
        violations.append(f"{name} select1 sample directory disagrees with payload")
    if select0 != vector._select0_samples:
        violations.append(f"{name} select0 sample directory disagrees with payload")
    if running != vector.ones:
        violations.append(
            f"{name} cached popcount {vector.ones} != actual {running}"
        )
    spare_bits = len(vector._words) * 64 - len(vector)
    if spare_bits < 0:
        violations.append(
            f"{name} declares {len(vector)} bits but stores only "
            f"{len(vector._words)} words"
        )
    elif vector._words and len(vector) % 64:
        last = vector._words[-1]
        if last >> (len(vector) % 64):
            violations.append(f"{name} has bits set beyond its declared length")


def check_fst(fst: FST) -> List[str]:
    """All violations of an FST's LOUDS and value-array invariants."""
    violations: List[str] = []

    for name, vector in (
        ("dense_labels", fst._dense_labels),
        ("dense_haschild", fst._dense_haschild),
        ("sparse_haschild", fst._sparse_haschild),
        ("sparse_louds", fst._sparse_louds),
    ):
        _check_rank_directory(name, vector, violations)
    if violations:
        return violations  # rank/select is unusable; later checks would lie

    if len(fst._dense_labels) != 256 * fst.num_dense_nodes:
        violations.append(
            f"dense label bitmap has {len(fst._dense_labels)} bits for "
            f"{fst.num_dense_nodes} dense nodes"
        )
    if len(fst._dense_haschild) != len(fst._dense_labels):
        violations.append("dense has-child bitmap length != label bitmap length")
    for index, (label_word, haschild_word) in enumerate(
        zip(fst._dense_labels._words, fst._dense_haschild._words)
    ):
        if haschild_word & ~label_word:
            violations.append(f"dense has-child bit without label bit (word {index})")
            break

    sparse_count = len(fst._sparse_labels)
    if len(fst._sparse_haschild) != sparse_count or len(fst._sparse_louds) != sparse_count:
        violations.append(
            f"sparse arrays disagree: {sparse_count} labels, "
            f"{len(fst._sparse_haschild)} has-child bits, "
            f"{len(fst._sparse_louds)} LOUDS bits"
        )
        return violations

    sparse_nodes = fst.num_nodes - fst.num_dense_nodes
    louds_ones = fst._sparse_louds.ones if sparse_count else 0
    if louds_ones != sparse_nodes:
        violations.append(
            f"LOUDS marks {louds_ones} sparse nodes, numbering implies "
            f"{sparse_nodes}"
        )
    if sparse_count and not fst._sparse_louds[0]:
        violations.append("first sparse label is not a node start")

    # Per-node sparse labels must be strictly increasing.
    node_start = 0
    for position in range(1, sparse_count):
        if fst._sparse_louds[position]:
            node_start = position
        elif fst._sparse_labels[position - 1] >= fst._sparse_labels[position]:
            violations.append(
                f"sparse node starting at {node_start} has unsorted labels"
            )
            break

    if fst.num_nodes:
        dense_children = fst._dense_haschild.ones if len(fst._dense_haschild) else 0
        sparse_children = fst._sparse_haschild.ones if sparse_count else 0
        if dense_children + sparse_children != fst.num_nodes - 1:
            violations.append(
                f"{dense_children + sparse_children} child edges for "
                f"{fst.num_nodes} nodes (expected {fst.num_nodes - 1})"
            )

    dense_ones = fst._dense_labels.ones if len(fst._dense_labels) else 0
    dense_children = fst._dense_haschild.ones if len(fst._dense_haschild) else 0
    dense_terminals = dense_ones - dense_children
    sparse_terminals = sparse_count - (fst._sparse_haschild.ones if sparse_count else 0)
    if fst._dense_hc_total != dense_children:
        violations.append(
            f"cached dense child total {fst._dense_hc_total} != {dense_children}"
        )
    if fst._dense_terminal_total != dense_terminals:
        violations.append(
            f"cached dense terminal total {fst._dense_terminal_total} != "
            f"{dense_terminals}"
        )
    terminals = dense_terminals + sparse_terminals
    if len(fst._values) != terminals:
        violations.append(
            f"value array holds {len(fst._values)} values for {terminals} "
            f"terminal labels"
        )
    if terminals != fst.num_keys:
        violations.append(
            f"{terminals} terminal labels for {fst.num_keys} keys"
        )

    levels = fst._level_first_node
    if len(levels) != fst.height:
        violations.append(
            f"level directory has {len(levels)} entries for height {fst.height}"
        )
    if levels and levels[0] != 0:
        violations.append(f"level directory starts at node {levels[0]}, not 0")
    if any(a >= b for a, b in zip(levels, levels[1:])):
        violations.append("level directory is not strictly increasing")
    if levels and levels[-1] >= fst.num_nodes:
        violations.append(
            f"last level starts at node {levels[-1]} >= num_nodes {fst.num_nodes}"
        )

    if not violations:
        # Census versus reality: every key must be reachable by traversal.
        reachable = sum(1 for _ in fst.items())
        if reachable != fst.num_keys:
            violations.append(
                f"traversal reaches {reachable} keys, header claims {fst.num_keys}"
            )
    return violations


# ----------------------------------------------------------------------
# Dual-Stage
# ----------------------------------------------------------------------
def check_dualstage(index: DualStageIndex) -> List[str]:
    """All violations of a Dual-Stage index's invariants."""
    violations: List[str] = []

    static_items = list(index._static.items())
    keys = [key for key, _ in static_items]
    if any(a >= b for a, b in zip(keys, keys[1:])):
        violations.append("static stage keys are not strictly sorted")
    if len(static_items) != len(index._static):
        violations.append(
            f"static stage iterates {len(static_items)} entries but claims "
            f"{len(index._static)}"
        )
    if index._static._block_mins:
        for block_index, block in enumerate(index._static._blocks):
            if len(block) and block[0] != index._static._block_mins[block_index]:
                violations.append(
                    f"static block {block_index} directory min "
                    f"{index._static._block_mins[block_index]} != first key "
                    f"{block[0]}"
                )
                break

    for key in index._tombstones:
        if index._dynamic.lookup(key) is not None:
            violations.append(f"tombstoned key {key} still lives in the dynamic stage")
            break

    violations.extend(
        f"dynamic stage: {violation}" for violation in check_bptree(index._dynamic)
    )
    return violations
