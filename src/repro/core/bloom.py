"""Bloom filter guarding the sample hash map.

The paper installs a Bloom filter in front of the aggregate map so that a
unit enters the (more expensive) hash map only on its *second* sampled
access within a phase: the first access merely sets the filter bits.  This
keeps one-off cold-node accesses out of the map.  The configuration the
paper uses — 10 bits per item, capacity = half the sample size — yields
roughly a 1% false-positive rate; we default to the same.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Iterator, List

from repro.obs.metrics import RATIO_BUCKETS, SIZE_BUCKETS
from repro.obs.runtime import active_registry

BITS_PER_ITEM = 10


def _mix(value: int, seed: int) -> int:
    """A cheap 64-bit multiply-xor hash with a per-function seed."""
    value ^= seed
    value = (value * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
    value ^= value >> 33
    return value


class BloomFilter:
    """A standard Bloom filter over hashable identifiers.

    ``capacity`` is the expected number of distinct insertions; the number
    of bits is ``capacity * bits_per_item`` and the number of hash
    functions is the optimum ``ln 2 * bits_per_item`` (rounded).
    """

    def __init__(self, capacity: int, bits_per_item: int = BITS_PER_ITEM) -> None:
        if capacity < 1:
            capacity = 1
        if bits_per_item < 1:
            raise ValueError(f"bits_per_item must be >= 1, got {bits_per_item}")
        self._num_bits = max(8, capacity * bits_per_item)
        self._num_hashes = max(1, round(math.log(2) * bits_per_item))
        self._bits = 0
        self._count = 0

    @property
    def num_bits(self) -> int:
        """Size of the bit array."""
        return self._num_bits

    @property
    def num_hashes(self) -> int:
        """Number of hash functions."""
        return self._num_hashes

    @property
    def approximate_count(self) -> int:
        """Number of insertions since the last reset (not distinct-exact)."""
        return self._count

    def _hash_pair(self, item: Hashable) -> "tuple[int, int]":
        """The two base hashes all probe positions derive from.

        Computed once per key; probe ``i`` is ``(h1 + i*h2) mod bits``
        (classic double hashing), so membership tests never rehash per
        probe.  ``h2`` is forced odd so the probe sequence cannot
        degenerate.
        """
        base = hash(item) & 0xFFFFFFFFFFFFFFFF
        h1 = _mix(base, 0x9E3779B97F4A7C15)
        h2 = _mix(base, 0xD1B54A32D192ED03) | 1
        return h1, h2

    def _positions(self, item: Hashable) -> Iterator[int]:
        h1, h2 = self._hash_pair(item)
        for i in range(self._num_hashes):
            yield (h1 + i * h2) % self._num_bits

    def add(self, item: Hashable) -> None:
        """Insert ``item`` into the filter."""
        h1, h2 = self._hash_pair(item)
        num_bits = self._num_bits
        bits = self._bits
        for _ in range(self._num_hashes):
            bits |= 1 << (h1 % num_bits)
            h1 += h2
        self._bits = bits
        self._count += 1

    def add_many(self, items: Iterable[Hashable]) -> None:
        """Insert every item of ``items`` (one bit-buffer write-back)."""
        num_bits = self._num_bits
        num_hashes = self._num_hashes
        bits = self._bits
        count = 0
        for item in items:
            h1, h2 = self._hash_pair(item)
            for _ in range(num_hashes):
                bits |= 1 << (h1 % num_bits)
                h1 += h2
            count += 1
        self._bits = bits
        self._count += count

    def __contains__(self, item: Hashable) -> bool:
        h1, h2 = self._hash_pair(item)
        num_bits = self._num_bits
        bits = self._bits
        for _ in range(self._num_hashes):
            if not (bits >> (h1 % num_bits)) & 1:
                return False
            h1 += h2
        return True

    def contains_many(self, items: Iterable[Hashable]) -> List[bool]:
        """Batched membership: one bool per item, in order."""
        num_bits = self._num_bits
        num_hashes = self._num_hashes
        bits = self._bits
        results = []
        for item in items:
            h1, h2 = self._hash_pair(item)
            hit = True
            for _ in range(num_hashes):
                if not (bits >> (h1 % num_bits)) & 1:
                    hit = False
                    break
                h1 += h2
            results.append(hit)
        return results

    def add_and_check(self, item: Hashable) -> bool:
        """Insert ``item``; return True iff it was (probably) seen before.

        This is the exact operation the sampling hot path needs: first
        sighting returns False (only the filter is touched), repeat
        sightings return True (the caller promotes the item into the
        sample map).
        """
        seen = True
        h1, h2 = self._hash_pair(item)
        num_bits = self._num_bits
        bits = self._bits
        for _ in range(self._num_hashes):
            position = h1 % num_bits
            if not (bits >> position) & 1:
                seen = False
                bits |= 1 << position
            h1 += h2
        self._bits = bits
        self._count += 1
        return seen

    def saturation(self) -> float:
        """Share of bits currently set (false-positive-rate proxy)."""
        return self._bits.bit_count() / self._num_bits

    def reset(self) -> None:
        """Clear the filter (done after every sampling phase).

        A phase boundary, so this is where the filter publishes into the
        installed metrics registry (if any): insertions seen this phase
        and how saturated the bit array got before clearing.
        """
        registry = active_registry()
        if registry is not None and self._count:
            registry.histogram(
                "bloom.insertions_per_phase", SIZE_BUCKETS
            ).record(self._count)
            registry.histogram("bloom.saturation", RATIO_BUCKETS).record(
                self.saturation()
            )
        self._bits = 0
        self._count = 0

    def size_bytes(self) -> int:
        """Modeled footprint: the bit array."""
        return (self._num_bits + 7) // 8
