"""Sample-size math (Equation 1) and the skip-length sampler.

Equation (1) of the paper gives the sample size needed for an
e-approximation of the top-k frequent items over ``n`` items with
reliability ``1 - delta``:

    |S| = (2 / eps^2) * ln((2n + k(n - k)) / delta)

Sampling itself follows Vitter's skip-counting idea: instead of flipping a
coin per access, a counter skips a fixed number of accesses between two
samples, so the per-access cost is a single decrement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import List

from repro.obs.runtime import active_registry

DEFAULT_EPSILON = 0.05
DEFAULT_DELTA = 0.05
SKIP_MIN = 50
SKIP_MAX = 500


@lru_cache(maxsize=4096)
def _required_sample_size_cached(
    population: int, k: int, epsilon: float, delta: float
) -> int:
    numerator = 2 * population + k * (population - k)
    size = (2.0 / (epsilon * epsilon)) * math.log(numerator / delta)
    return max(1, math.ceil(size))


def required_sample_size(
    population: int,
    k: int,
    epsilon: float = DEFAULT_EPSILON,
    delta: float = DEFAULT_DELTA,
) -> int:
    """Equation (1): sample size for an error-bounded top-k approximation.

    ``population`` is ``n`` (for indexes: the number of trackable units,
    e.g. leaf nodes), ``k`` the number of items to identify, ``epsilon``
    the tolerated frequency error, and ``delta`` the failure probability.

    Epoch rollovers recompute this for an unchanged ``(population, k,
    epsilon, delta)`` tuple almost every time, so the log/ceil math is
    memoized behind an LRU cache.
    """
    if population <= 0:
        return 0
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    k = max(1, min(k, population))
    return _required_sample_size_cached(population, k, epsilon, delta)


@dataclass
class SkipSampler:
    """Skip-length access sampler.

    Every call to :meth:`is_sample` models one index access; every
    ``skip_length + 1``-th access is a sample.  ``skip_length = 0`` samples
    every access (the worst case of Figure 5).  The adaptation manager
    adjusts :attr:`skip_length` between phases; the new value takes effect
    when the current countdown expires, matching the thread-local reload
    from the global skip in Listing 1.

    With ``jitter > 0`` each reload draws the countdown uniformly from
    ``skip_length * [1 - jitter, 1 + jitter]`` — the randomization the
    paper suggests (Section 3.1.4) so periodic query patterns cannot
    alias with the sampling stride.  The expected sampling rate is
    unchanged.
    """

    skip_length: int = SKIP_MIN
    jitter: float = 0.0
    seed: int = 0x5EED

    def __post_init__(self) -> None:
        if self.skip_length < 0:
            raise ValueError(f"skip length must be >= 0, got {self.skip_length}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        self._state = self.seed & 0xFFFFFFFFFFFFFFFF or 1
        self._countdown = self._next_skip()

    def _next_skip(self) -> int:
        if self.jitter == 0.0 or self.skip_length == 0:
            return self.skip_length
        # xorshift64: a tiny deterministic PRNG keeps the hot path cheap
        # and runs reproducible.
        state = self._state
        state ^= (state << 13) & 0xFFFFFFFFFFFFFFFF
        state ^= state >> 7
        state ^= (state << 17) & 0xFFFFFFFFFFFFFFFF
        self._state = state
        low = int(self.skip_length * (1.0 - self.jitter))
        high = int(self.skip_length * (1.0 + self.jitter))
        return low + state % (high - low + 1)

    def is_sample(self) -> bool:
        """Return True when the current access should be sampled."""
        if self._countdown == 0:
            self._countdown = self._next_skip()
            return True
        self._countdown -= 1
        return False

    def consume(self, count: int) -> List[int]:
        """Model ``count`` consecutive accesses in one call.

        Returns the 0-based offsets within the batch that would have been
        sampled by ``count`` individual :meth:`is_sample` calls — the
        sampler state afterwards is bit-identical to the per-access loop,
        but the cost is O(samples) instead of O(accesses): whole skip
        intervals are subtracted from the countdown at once.
        """
        if count < 0:
            raise ValueError(f"access count must be >= 0, got {count}")
        offsets: List[int] = []
        position = 0
        while position < count:
            if self._countdown == 0:
                offsets.append(position)
                self._countdown = self._next_skip()
                position += 1
                continue
            step = self._countdown
            remaining = count - position
            if step >= remaining:
                self._countdown -= remaining
                break
            self._countdown = 0
            position += step
        return offsets

    def set_skip_length(self, skip_length: int) -> None:
        """Install a new skip length (takes effect at the next reload).

        Called between phases (never per access), so it is also where the
        sampler publishes its current stride into an installed metrics
        registry.
        """
        if skip_length < 0:
            raise ValueError(f"skip length must be >= 0, got {skip_length}")
        self.skip_length = skip_length
        registry = active_registry()
        if registry is not None:
            registry.gauge("sampler.skip_length").set(skip_length)
            registry.counter("sampler.skip_updates").inc()


def adjust_skip_length(
    current: int,
    migrated: int,
    sampled: int,
    lower_share: float = 0.10,
    upper_share: float = 0.30,
    factor: float = 2.0,
    skip_min: int = SKIP_MIN,
    skip_max: int = SKIP_MAX,
) -> int:
    """Adapt the skip length from observed workload stability.

    The paper uses the share of encoding migrations among sampled accesses
    as a stability proxy: below ``lower_share`` the workload is stable and
    the skip grows (less overhead); above ``upper_share`` the workload is
    shifting and the skip shrinks (faster adaptation).  The result is
    clamped to ``[skip_min, skip_max]``.
    """
    if sampled <= 0:
        return min(skip_max, max(skip_min, current))
    share = migrated / sampled
    if share < lower_share:
        proposed = int(current * factor)
    elif share > upper_share:
        proposed = int(current / factor)
    else:
        proposed = current
    return min(skip_max, max(skip_min, proposed))
