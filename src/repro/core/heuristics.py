"""Context-sensitive heuristic functions (CSHF).

After classification, the adaptation manager asks a CSHF for every tracked
unit which encoding it should use next.  Figure 7 of the paper sketches the
default decision tree: the budget gates expansion, the current and historic
classifications decide between the performance-optimized and compressed
encodings, and long-cold units drop out of tracking entirely.

A CSHF here is any callable ``HeuristicInput -> HeuristicDecision``.
Hybrid indexes ship their own tailored CSHF;
:func:`make_threshold_heuristic` builds the generic two-encoding tree that
both example indexes use as a default.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Hashable

from repro.core.access import AccessStats, Classification


class HeuristicAction(enum.Enum):
    """What to do with a tracked unit after classification."""

    KEEP = "keep"                    # leave the encoding as-is
    MIGRATE = "migrate"              # change to ``target_encoding``
    STOP_TRACKING = "stop_tracking"  # evict the unit from the sample map


@dataclass(frozen=True)
class HeuristicInput:
    """Everything a CSHF may consult for one unit."""

    identifier: Hashable
    stats: AccessStats
    classification: Classification
    current_encoding: object
    budget_utilization: float  # used / limit; 0.0 when unbounded
    epoch: int


@dataclass(frozen=True)
class HeuristicDecision:
    """A CSHF verdict: keep, migrate to a target encoding, or evict."""

    action: HeuristicAction
    target_encoding: object = None

    @classmethod
    def keep(cls) -> "HeuristicDecision":
        """A KEEP decision."""
        return cls(HeuristicAction.KEEP)

    @classmethod
    def migrate(cls, target_encoding: object) -> "HeuristicDecision":
        """A MIGRATE decision toward ``target_encoding``."""
        return cls(HeuristicAction.MIGRATE, target_encoding)

    @classmethod
    def stop_tracking(cls) -> "HeuristicDecision":
        """A STOP_TRACKING decision."""
        return cls(HeuristicAction.STOP_TRACKING)


Heuristic = Callable[[HeuristicInput], HeuristicDecision]

# Defaults mirroring the prose around Figure 7: expansion requires budget
# headroom (utilization below 95%), compaction waits for two consecutive
# cold phases (one sampling miss may be noise), and a unit cold for the
# whole remembered history stops being tracked.
BUDGET_EXPAND_CEILING = 0.95
COLD_PHASES_TO_COMPACT = 2
COLD_PHASES_TO_FORGET = 8


def make_threshold_heuristic(
    fast_encoding: object,
    compact_encoding: object,
    budget_ceiling: float = BUDGET_EXPAND_CEILING,
    cold_phases_to_compact: int = COLD_PHASES_TO_COMPACT,
    cold_phases_to_forget: int = COLD_PHASES_TO_FORGET,
) -> Heuristic:
    """Build the default two-encoding CSHF of Figure 7.

    * hot + budget headroom -> ``fast_encoding``
    * hot but budget nearly exhausted -> keep (expansion would overshoot)
    * cold for ``cold_phases_to_compact`` consecutive phases ->
      ``compact_encoding``
    * cold for ``cold_phases_to_forget`` consecutive phases -> stop
      tracking (frees the aggregate slot)
    * anything else -> keep
    """

    def heuristic(info: HeuristicInput) -> HeuristicDecision:
        if info.classification is Classification.HOT:
            if info.current_encoding == fast_encoding:
                return HeuristicDecision.keep()
            if info.budget_utilization >= budget_ceiling:
                return HeuristicDecision.keep()
            return HeuristicDecision.migrate(fast_encoding)
        # Cold path: the freshest classification is already in history.
        cold_streak = info.stats.cold_streak()
        if cold_streak >= cold_phases_to_forget:
            return HeuristicDecision.stop_tracking()
        if info.current_encoding != compact_encoding:
            if info.budget_utilization > 1.0:
                # Over budget: compact cold units immediately (Figure 7's
                # budget branch) instead of waiting out the cold streak.
                return HeuristicDecision.migrate(compact_encoding)
            if cold_streak >= cold_phases_to_compact:
                return HeuristicDecision.migrate(compact_encoding)
        return HeuristicDecision.keep()

    return heuristic
