"""Single-pass bounded-heap top-k classification.

The adaptation phase labels the k most frequently sampled units hot and
everything else cold.  As in the paper, a binary min-heap of capacity k is
fed one pass over the sample map: units displaced from the heap are cold,
units surviving in the heap are hot.  Runtime is O(u (1 + log k)) for u
unique samples and space is O(k).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Hashable, Iterable, List, Set, Tuple


class TopKClassifier:
    """Maintain the k highest-frequency items seen in one pass.

    Ties are broken by insertion order (earlier offers win), which keeps
    the classification deterministic for reproducible experiments.
    """

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self._k = k
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._counter = itertools.count()
        self.heap_operations = 0

    @property
    def k(self) -> int:
        """The classifier's capacity (number of hot slots)."""
        return self._k

    def offer(self, item: Hashable, frequency: float) -> None:
        """Consider ``item`` with ``frequency`` for the top-k set."""
        if self._k == 0:
            return
        entry = (frequency, -next(self._counter), item)
        if len(self._heap) < self._k:
            heapq.heappush(self._heap, entry)
            self.heap_operations += 1
        elif entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            self.heap_operations += 2
        # else: below the current k-th frequency; item stays cold.

    def hot_items(self) -> Set[Hashable]:
        """The items currently classified hot."""
        return {item for _, _, item in self._heap}

    def threshold(self) -> float:
        """The smallest frequency inside the top-k set (inf when empty)."""
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)


def classify_top_k(
    frequencies: Dict[Hashable, float] | Iterable[Tuple[Hashable, float]],
    k: int,
) -> Set[Hashable]:
    """Convenience wrapper: the set of (up to) k most frequent items."""
    classifier = TopKClassifier(k)
    items = frequencies.items() if isinstance(frequencies, dict) else frequencies
    for item, frequency in items:
        classifier.offer(item, frequency)
    return classifier.hot_items()
