"""ART node types: Node4, Node16, Node48, and Node256.

The four layouts trade lookup method for space, exactly as in the ART
paper: Node4/Node16 store sorted label arrays (linear/binary search),
Node48 indirects through a 256-byte index, Node256 is a direct pointer
array.  Nodes grow to the next type when full and shrink when sparse.
``size_bytes`` models the C++ layouts (16-byte header with the
compressed path, labels, and 8-byte child pointers).
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

_HEADER_BYTES = 16  # type tag, child count, prefix length, inline prefix
_POINTER_BYTES = 8


class ARTNode:
    """Base class: a compressed path plus label-indexed children."""

    __slots__ = ("prefix",)

    capacity: int = 0

    def __init__(self, prefix: bytes = b"") -> None:
        self.prefix = prefix

    # Subclasses implement: find_child, set_child, delete_child,
    # children_items, num_children, size_bytes.

    def find_child(self, label: int) -> Optional[object]:
        """Return the child stored under ``label``, or None."""
        raise NotImplementedError

    def set_child(self, label: int, child: object) -> bool:
        """Insert or replace; False when full (caller grows the node)."""
        raise NotImplementedError

    def delete_child(self, label: int) -> bool:
        """Remove the child under ``label``; True if it existed."""
        raise NotImplementedError

    def children_items(self) -> Iterator[Tuple[int, object]]:
        """(label, child) pairs in ascending label order."""
        raise NotImplementedError

    def num_children(self) -> int:
        """Return the number of stored children."""
        raise NotImplementedError

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        raise NotImplementedError

    def is_full(self) -> bool:
        """Return True when the node is at capacity."""
        return self.num_children() >= self.capacity

    def grow(self) -> "ARTNode":
        """Copy into the next larger node type."""
        order = [Node4, Node16, Node48, Node256]
        index = order.index(type(self))
        if index == len(order) - 1:
            raise ValueError("Node256 cannot grow")
        bigger = order[index + 1](self.prefix)
        for label, child in self.children_items():
            bigger.set_child(label, child)
        return bigger

    def shrink_if_sparse(self) -> "ARTNode":
        """Copy into the smallest type that fits (after deletions)."""
        count = self.num_children()
        for node_class in (Node4, Node16, Node48, Node256):
            if count <= node_class.capacity:
                if node_class is type(self):
                    return self
                smaller = node_class(self.prefix)
                for label, child in self.children_items():
                    smaller.set_child(label, child)
                return smaller
        return self  # pragma: no cover


class _SortedArrayNode(ARTNode):
    """Shared layout of Node4 and Node16: parallel sorted arrays."""

    __slots__ = ("labels", "children")

    def __init__(self, prefix: bytes = b"") -> None:
        super().__init__(prefix)
        self.labels: List[int] = []
        self.children: List[object] = []

    def find_child(self, label: int) -> Optional[object]:
        """Return the child stored under ``label``, or None."""
        index = bisect.bisect_left(self.labels, label)
        if index < len(self.labels) and self.labels[index] == label:
            return self.children[index]
        return None

    def set_child(self, label: int, child: object) -> bool:
        """Insert or replace the child under ``label``; False when full."""
        index = bisect.bisect_left(self.labels, label)
        if index < len(self.labels) and self.labels[index] == label:
            self.children[index] = child
            return True
        if len(self.labels) >= self.capacity:
            return False
        self.labels.insert(index, label)
        self.children.insert(index, child)
        return True

    def delete_child(self, label: int) -> bool:
        """Remove the child under ``label``; True if it existed."""
        index = bisect.bisect_left(self.labels, label)
        if index < len(self.labels) and self.labels[index] == label:
            del self.labels[index]
            del self.children[index]
            return True
        return False

    def children_items(self) -> Iterator[Tuple[int, object]]:
        """Yield ``(label, child)`` pairs in ascending label order."""
        return iter(zip(self.labels, self.children))

    def num_children(self) -> int:
        """Return the number of stored children."""
        return len(self.labels)


class Node4(_SortedArrayNode):
    """4-slot node: linear search over a sorted label array."""

    capacity = 4

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        return _HEADER_BYTES + 4 + 4 * _POINTER_BYTES


class Node16(_SortedArrayNode):
    """16-slot node: binary search over a sorted label array."""

    capacity = 16

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        return _HEADER_BYTES + 16 + 16 * _POINTER_BYTES


class Node48(ARTNode):
    """256-byte label index into a 48-slot child array."""

    __slots__ = ("index", "children")

    capacity = 48

    def __init__(self, prefix: bytes = b"") -> None:
        super().__init__(prefix)
        self.index: List[int] = [-1] * 256
        self.children: List[object] = []

    def find_child(self, label: int) -> Optional[object]:
        """Return the child stored under ``label``, or None."""
        slot = self.index[label]
        return self.children[slot] if slot >= 0 else None

    def set_child(self, label: int, child: object) -> bool:
        """Insert or replace the child under ``label``; False when full."""
        slot = self.index[label]
        if slot >= 0:
            self.children[slot] = child
            return True
        if len(self.children) >= self.capacity:
            return False
        self.index[label] = len(self.children)
        self.children.append(child)
        return True

    def delete_child(self, label: int) -> bool:
        """Remove the child under ``label``; True if it existed."""
        slot = self.index[label]
        if slot < 0:
            return False
        last = len(self.children) - 1
        if slot != last:
            # Move the last child into the vacated slot to stay dense.
            self.children[slot] = self.children[last]
            for other_label in range(256):
                if self.index[other_label] == last:
                    self.index[other_label] = slot
                    break
        self.children.pop()
        self.index[label] = -1
        return True

    def children_items(self) -> Iterator[Tuple[int, object]]:
        """Yield ``(label, child)`` pairs in ascending label order."""
        for label in range(256):
            slot = self.index[label]
            if slot >= 0:
                yield label, self.children[slot]

    def num_children(self) -> int:
        """Return the number of stored children."""
        return len(self.children)

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        return _HEADER_BYTES + 256 + 48 * _POINTER_BYTES


class Node256(ARTNode):
    """Direct 256-slot child array."""

    __slots__ = ("children", "_count")

    capacity = 256

    def __init__(self, prefix: bytes = b"") -> None:
        super().__init__(prefix)
        self.children: List[Optional[object]] = [None] * 256
        self._count = 0

    def find_child(self, label: int) -> Optional[object]:
        """Return the child stored under ``label``, or None."""
        return self.children[label]

    def set_child(self, label: int, child: object) -> bool:
        """Insert or replace the child under ``label``; False when full."""
        if self.children[label] is None:
            self._count += 1
        self.children[label] = child
        return True

    def delete_child(self, label: int) -> bool:
        """Remove the child under ``label``; True if it existed."""
        if self.children[label] is None:
            return False
        self.children[label] = None
        self._count -= 1
        return True

    def children_items(self) -> Iterator[Tuple[int, object]]:
        """Yield ``(label, child)`` pairs in ascending label order."""
        for label in range(256):
            child = self.children[label]
            if child is not None:
                yield label, child

    def num_children(self) -> int:
        """Return the number of stored children."""
        return self._count

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        return _HEADER_BYTES + 256 * _POINTER_BYTES


def art_node_for_fanout(fanout: int, prefix: bytes = b"") -> ARTNode:
    """The smallest node type that holds ``fanout`` children — the rule
    ART applies at build time and the Hybrid Trie applies on expansion."""
    for node_class in (Node4, Node16, Node48, Node256):
        if fanout <= node_class.capacity:
            return node_class(prefix)
    raise ValueError(f"fanout {fanout} exceeds 256")
