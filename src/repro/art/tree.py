"""The Adaptive Radix Tree over byte-string keys.

Implements the full ART design: adaptive node types (via
:mod:`repro.art.nodes`), path compression (each inner node carries a
compressed prefix), and lazy expansion (single-key subtrees collapse to a
leaf holding the complete key).  Keys are arbitrary ``bytes``; callers
must ensure no key is a strict prefix of another (append a terminator
byte for variable-length keys — :func:`terminated` does exactly that).

Traversal work is counted as ``art_visit`` events in :attr:`ART.counters`
for the cost model.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.art.nodes import Node4, Node16, Node48, Node256
from repro.obs.runtime import active_tracer
from repro.sim.counters import OpCounters

_LEAF_HEADER_BYTES = 16


def terminated(key: bytes) -> bytes:
    """Append the 0x00 terminator used for variable-length key sets."""
    return key + b"\x00"


class ARTLeaf:
    """Lazy-expansion leaf: the complete key plus its value."""

    __slots__ = ("key", "value")

    def __init__(self, key: bytes, value: int) -> None:
        self.key = key
        self.value = value

    def size_bytes(self) -> int:
        """Return the modeled C++ footprint in bytes."""
        return _LEAF_HEADER_BYTES + len(self.key)


#: Precomputed ``leaf_probe:<node kind>`` span names by terminal node
#: type (RA004: telemetry names are literal tables, never formatted on
#: the hot path).  ``type(None)`` falls through to the miss name.
_PROBE_EVENT_MISS = "leaf_probe:none"
_PROBE_EVENTS = {
    cls: f"leaf_probe:{cls.__name__.lower()}"
    for cls in (ARTLeaf, Node4, Node16, Node48, Node256)
}


def _common_prefix_length(a: bytes, b: bytes) -> int:
    limit = min(len(a), len(b))
    for index in range(limit):
        if a[index] != b[index]:
            return index
    return limit


class ART:
    """Adaptive Radix Tree with inserts, deletes, lookups, and scans."""

    stats_family = "art"

    def __init__(self, counters: Optional[OpCounters] = None) -> None:
        self._root: Optional[object] = None
        self._num_keys = 0
        self.counters = counters if counters is not None else OpCounters()

    @classmethod
    def from_sorted(cls, pairs, counters: Optional[OpCounters] = None) -> "ART":
        """Build from sorted unique (key, value) pairs."""
        tree = cls(counters)
        for key, value in pairs:
            tree.insert(key, value)
        return tree

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, key: bytes) -> Optional[int]:
        """Return the value stored under ``key``, or None."""
        tracer = active_tracer()
        if tracer is not None:
            return self._traced_lookup(tracer, key)
        node = self._root
        depth = 0
        while node is not None:
            if isinstance(node, ARTLeaf):
                self.counters.add("art_visit")
                return node.value if node.key == key else None
            self.counters.add("art_visit")
            prefix = node.prefix
            if prefix:
                if key[depth : depth + len(prefix)] != prefix:
                    return None
                depth += len(prefix)
            if depth >= len(key):
                return None
            node = node.find_child(key[depth])
            depth += 1
        return None

    def _traced_lookup(self, tracer, key: bytes) -> Optional[int]:
        """:meth:`lookup` under an installed tracer (identical result)."""
        span = tracer.op_start("lookup", family=self.stats_family)
        node = self._root
        depth = 0
        visits = 0
        value: Optional[int] = None
        while node is not None:
            visits += 1
            self.counters.add("art_visit")
            if isinstance(node, ARTLeaf):
                value = node.value if node.key == key else None
                break
            prefix = node.prefix
            if prefix:
                if key[depth : depth + len(prefix)] != prefix:
                    break
                depth += len(prefix)
            if depth >= len(key):
                break
            node = node.find_child(key[depth])
            depth += 1
        if span is not None:
            tracer.event("descent", nodes_visited=visits, depth=depth)
            tracer.event(
                _PROBE_EVENTS.get(type(node), _PROBE_EVENT_MISS),
                hit=value is not None,
            )
            tracer.end(span)
        return value

    def __contains__(self, key: bytes) -> bool:
        return self.lookup(key) is not None

    def lookup_many(self, keys: List[bytes]) -> List[Optional[int]]:
        """Batched point lookups; one value (or None) per key.

        Sorted batches keep a stack of the inner nodes on the current
        root-to-leaf path; each key pops back to the node where its
        common prefix with the previous key ends and resumes the descent
        from there, so shared key prefixes are walked once per run
        instead of once per key.  ``art_visit`` counts the nodes actually
        stepped, flushed once per batch.  Unsorted batches fall back to
        per-key lookups; results always equal ``[self.lookup(k) for k in
        keys]``.
        """
        keys = list(keys)
        if not keys:
            return []
        if any(a > b for a, b in zip(keys, keys[1:])):
            return [self.lookup(key) for key in keys]
        if self._root is None:
            return [None] * len(keys)
        results: List[Optional[int]] = []
        visits = 0
        # (node, bytes of key consumed before reaching node)
        stack: List[Tuple[object, int]] = [(self._root, 0)]
        previous: Optional[bytes] = None
        for key in keys:
            if previous is not None:
                common = _common_prefix_length(previous, key)
                while len(stack) > 1 and stack[-1][1] > common:
                    stack.pop()
            previous = key
            node, depth = stack[-1]
            value: Optional[int] = None
            while True:
                if isinstance(node, ARTLeaf):
                    visits += 1
                    value = node.value if node.key == key else None
                    break
                visits += 1
                prefix = node.prefix
                if prefix:
                    if key[depth : depth + len(prefix)] != prefix:
                        break
                    depth += len(prefix)
                if depth >= len(key):
                    break
                child = node.find_child(key[depth])
                if child is None:
                    break
                depth += 1
                if not isinstance(child, ARTLeaf):
                    stack.append((child, depth))
                node = child
            results.append(value)
        if visits:
            self.counters.add("art_visit", visits)
        return results

    def insert_many(self, pairs) -> List[bool]:
        """Batched inserts; one bool per pair (True = key was new).

        Inserts restructure nodes (grow/split/path-compression changes),
        which invalidates any cached descent path, so this is a plain
        loop — the batch API exists for interface symmetry and so callers
        can hand whole workload chunks to every index family.
        """
        return [self.insert(key, value) for key, value in pairs]

    def scan_many(self, requests) -> List[List[Tuple[bytes, int]]]:
        """Batched range scans; one result list per (start_key, count)."""
        return [self.scan(start, count) for start, count in requests]

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: bytes, value: int) -> bool:
        """Insert; returns False (with overwrite) when the key existed."""
        existed_before = self._num_keys
        self._root = self._insert(self._root, key, value, 0)
        return self._num_keys > existed_before

    def _insert(self, node: Optional[object], key: bytes, value: int, depth: int):
        if node is None:
            self._num_keys += 1
            return ARTLeaf(key, value)
        if isinstance(node, ARTLeaf):
            if node.key == key:
                node.value = value
                return node
            # Split: new Node4 with the common prefix of both suffixes.
            common = _common_prefix_length(node.key[depth:], key[depth:])
            branch = Node4(key[depth : depth + common])
            split_depth = depth + common
            if split_depth >= len(node.key) or split_depth >= len(key):
                raise ValueError(
                    f"key {key!r} is a prefix of {node.key!r}; "
                    "terminate variable-length keys first"
                )
            branch.set_child(node.key[split_depth], node)
            branch.set_child(key[split_depth], ARTLeaf(key, value))
            self._num_keys += 1
            return branch
        prefix = node.prefix
        if prefix:
            common = _common_prefix_length(prefix, key[depth:])
            if common < len(prefix):
                # Prefix mismatch: split the compressed path.
                parent = Node4(prefix[:common])
                node.prefix = prefix[common + 1 :]
                parent.set_child(prefix[common], node)
                if depth + common >= len(key):
                    raise ValueError(
                        f"key {key!r} is a prefix of an existing path; "
                        "terminate variable-length keys first"
                    )
                parent.set_child(key[depth + common], ARTLeaf(key, value))
                self._num_keys += 1
                return parent
            depth += len(prefix)
        if depth >= len(key):
            raise ValueError(
                f"key {key!r} is a prefix of an existing path; "
                "terminate variable-length keys first"
            )
        label = key[depth]
        child = node.find_child(label)
        if child is not None:
            replacement = self._insert(child, key, value, depth + 1)
            if replacement is not child:
                node.set_child(label, replacement)
            return node
        new_leaf = ARTLeaf(key, value)
        self._num_keys += 1
        if not node.set_child(label, new_leaf):
            node = node.grow()
            node.set_child(label, new_leaf)
        return node

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------
    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns False when it was absent."""
        removed, self._root = self._delete(self._root, key, 0)
        if removed:
            self._num_keys -= 1
        return removed

    def _delete(self, node: Optional[object], key: bytes, depth: int):
        if node is None:
            return False, None
        if isinstance(node, ARTLeaf):
            if node.key == key:
                return True, None
            return False, node
        prefix = node.prefix
        if prefix:
            if key[depth : depth + len(prefix)] != prefix:
                return False, node
            depth += len(prefix)
        if depth >= len(key):
            return False, node
        label = key[depth]
        child = node.find_child(label)
        if child is None:
            return False, node
        removed, replacement = self._delete(child, key, depth + 1)
        if not removed:
            return False, node
        if replacement is None:
            node.delete_child(label)
        elif replacement is not child:
            node.set_child(label, replacement)
        # Path-compression restore: a one-child inner node merges into
        # its surviving child.
        if node.num_children() == 1:
            only_label, only_child = next(iter(node.children_items()))
            if isinstance(only_child, ARTLeaf):
                return True, only_child
            only_child.prefix = node.prefix + bytes([only_label]) + only_child.prefix
            return True, only_child
        if node.num_children() == 0:
            return True, None
        return True, node.shrink_if_sparse()

    # ------------------------------------------------------------------
    # Ordered iteration and scans
    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[bytes, int]]:
        """Yield all ``(key, value)`` pairs in key order."""
        yield from self._iterate(self._root)

    def _iterate(self, node: Optional[object]) -> Iterator[Tuple[bytes, int]]:
        if node is None:
            return
        if isinstance(node, ARTLeaf):
            yield node.key, node.value
            return
        for _, child in node.children_items():
            yield from self._iterate(child)

    def successor(self, key: bytes) -> Optional[Tuple[bytes, int]]:
        """The smallest stored (key, value) with key >= ``key``."""
        result = self.scan(key, 1)
        return result[0] if result else None

    def range_contains(self, low: bytes, high: bytes) -> bool:
        """True iff any stored key lies in ``[low, high]`` (inclusive)."""
        if high < low:
            return False
        found = self.successor(low)
        return found is not None and found[0] <= high

    def prefix_items(self, prefix: bytes) -> Iterator[Tuple[bytes, int]]:
        """All (key, value) pairs whose key starts with ``prefix``,
        in key order."""
        node = self._root
        depth = 0
        while node is not None and not isinstance(node, ARTLeaf):
            node_prefix = node.prefix
            if node_prefix:
                remaining = prefix[depth : depth + len(node_prefix)]
                if node_prefix[: len(remaining)] != remaining:
                    return
                depth += len(node_prefix)
            if depth >= len(prefix):
                break
            node = node.find_child(prefix[depth])
            depth += 1
        if node is None:
            return
        for key, value in self._iterate(node):
            if key.startswith(prefix):
                yield key, value

    def scan(self, start_key: bytes, count: int) -> List[Tuple[bytes, int]]:
        """Up to ``count`` pairs with key >= ``start_key``, in key order."""
        if count <= 0:
            return []
        result: List[Tuple[bytes, int]] = []
        self._scan(self._root, b"", start_key, count, result)
        return result

    def _scan(
        self,
        node: Optional[object],
        path: bytes,
        start_key: bytes,
        count: int,
        result: List[Tuple[bytes, int]],
    ) -> None:
        if node is None or len(result) >= count:
            return
        if isinstance(node, ARTLeaf):
            self.counters.add("art_visit")
            if node.key >= start_key:
                result.append((node.key, node.value))
            return
        self.counters.add("art_visit")
        path = path + node.prefix
        # Prune subtrees that end before the start key: the largest key in
        # this subtree starts with ``path`` + 0xFF... ; a cheap safe bound
        # is to skip only when even path + b"\xff"*pad < start_key prefix.
        if path < start_key[: len(path)]:
            return
        for label, child in node.children_items():
            if len(result) >= count:
                return
            self._scan(child, path + bytes([label]), start_key, count, result)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_keys

    @property
    def num_keys(self) -> int:
        """Number of indexed keys."""
        return self._num_keys

    @property
    def root(self) -> Optional[object]:
        """The root node."""
        return self._root

    def size_bytes(self) -> int:
        """Modeled footprint of all nodes and leaves."""
        total = 0
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            total += node.size_bytes()
            if not isinstance(node, ARTLeaf):
                stack.extend(child for _, child in node.children_items())
        return total

    def node_census(self) -> dict:
        """Node counts by type name (for size breakdowns and tests)."""
        census: dict = {}
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            name = type(node).__name__
            census[name] = census.get(name, 0) + 1
            if not isinstance(node, ARTLeaf):
                stack.extend(child for _, child in node.children_items())
        return census

    def stats(self) -> dict:
        """Uniform JSON-safe stats dict (see :mod:`repro.obs.introspect`)."""
        from repro.obs.introspect import base_stats

        stats = base_stats(
            self.stats_family,
            num_keys=self._num_keys,
            size_bytes=self.size_bytes(),
            census=self.node_census(),
            counters_snapshot=self.counters.snapshot(),
        )
        stats["height"] = self.height()
        return stats

    def describe(self) -> str:
        """Human-readable rendering of :meth:`stats`."""
        from repro.obs.introspect import format_stats

        return format_stats(self.stats())

    def height(self) -> int:
        """Maximum node depth (leaves included)."""

        def depth_of(node: Optional[object]) -> int:
            if node is None:
                return 0
            if isinstance(node, ARTLeaf):
                return 1
            return 1 + max(
                (depth_of(child) for _, child in node.children_items()), default=0
            )

        return depth_of(self._root)
