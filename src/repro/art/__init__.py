"""The Adaptive Radix Tree (ART) substrate (Leis et al., ICDE 2013).

ART is the performance-optimized trie of the paper's Hybrid Trie: four
node types sized by fanout (Node4/16/48/256), path compression, and lazy
leaf expansion.  :class:`~repro.art.tree.ART` supports lookups, inserts,
deletes, and ordered range scans over byte-string keys.
"""

from repro.art.nodes import Node4, Node16, Node48, Node256, art_node_for_fanout
from repro.art.tree import ART

__all__ = ["ART", "Node4", "Node16", "Node48", "Node256", "art_node_for_fanout"]
